"""Cost accounting for elasticity runs.

Implements the arithmetic behind the paper's motivating claim (Sec. 1,
citing [15]): "the ability to scale down both web servers and cache
tier leads to 65% saving of the peak operational cost, compared to 45%
if we only consider resizing the web tier." — i.e. comparing the cost
of an elastic run against provisioning statically at peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import effective_span_hours, resource_unit_hours
from repro.cloud.pricing import PriceBook
from repro.core.errors import ConfigurationError
from repro.workload.traces import Trace


def capacity_trace_cost(trace: Trace, resource: str, book: PriceBook) -> float:
    """Dollars spent holding the capacities in ``trace`` (time-weighted)."""
    return book.price(resource).hourly * resource_unit_hours(trace)


def static_peak_cost(trace: Trace, resource: str, book: PriceBook) -> float:
    """Dollars if the *peak* capacity had been held for the whole span.

    Uses the same effective span as :func:`capacity_trace_cost`, so for
    a flat trace the two are equal (zero savings), and an elastic trace
    can never cost more than its own peak baseline.
    """
    if len(trace) < 2:
        raise ConfigurationError("need at least 2 samples to define a span")
    return book.price(resource).hourly * trace.maximum() * effective_span_hours(trace)


def savings_vs_peak(actual_cost: float, peak_cost: float) -> float:
    """Fractional saving of ``actual_cost`` relative to ``peak_cost``."""
    if peak_cost <= 0:
        raise ConfigurationError(f"peak cost must be positive, got {peak_cost}")
    return 1.0 - actual_cost / peak_cost


@dataclass(frozen=True)
class CostSummary:
    """Per-resource and total cost of one run, with peak comparison."""

    per_resource: dict[str, float]
    peak_per_resource: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.per_resource.values())

    @property
    def peak_total(self) -> float:
        return sum(self.peak_per_resource.values())

    @property
    def savings(self) -> float:
        """Fraction saved versus static peak provisioning."""
        return savings_vs_peak(self.total, self.peak_total)

    @classmethod
    def from_traces(
        cls, traces: dict[str, Trace], book: PriceBook
    ) -> "CostSummary":
        """Build a summary from ``resource -> capacity trace``."""
        if not traces:
            raise ConfigurationError("no capacity traces supplied")
        per_resource = {
            resource: capacity_trace_cost(trace, resource, book)
            for resource, trace in traces.items()
        }
        peak = {
            resource: static_peak_cost(trace, resource, book)
            for resource, trace in traces.items()
        }
        return cls(per_resource=per_resource, peak_per_resource=peak)

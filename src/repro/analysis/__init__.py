"""Evaluation metrics, cost accounting and report rendering.

These are the yardsticks of the benchmark suite: SLO violation rates,
settling time and overshoot for controller comparisons (E4, E7), and
capacity-cost integration for the cost-saving experiment (E5).
"""

from repro.analysis.cost import CostSummary, capacity_trace_cost, savings_vs_peak, static_peak_cost
from repro.analysis.metrics import (
    integral_absolute_error,
    overshoot,
    resource_unit_hours,
    settling_time,
    slo_violation_rate,
)
from repro.analysis.report import ComparisonReport
from repro.analysis.runner import (
    RunnerError,
    Scenario,
    derive_scenario_seed,
    run_scenarios,
    run_scenarios_dict,
)
from repro.analysis.scorecard import (
    SMOKE_SCENARIOS,
    FleetScorecard,
    RunScorecard,
    run_smoke_scenario,
)
from repro.analysis.store import load_run_summary, load_run_traces, save_run
from repro.analysis.summary import LayerSummary, RunSummary, summarize_run

__all__ = [
    "slo_violation_rate",
    "settling_time",
    "overshoot",
    "integral_absolute_error",
    "resource_unit_hours",
    "capacity_trace_cost",
    "static_peak_cost",
    "savings_vs_peak",
    "CostSummary",
    "ComparisonReport",
    "Scenario",
    "RunnerError",
    "run_scenarios",
    "run_scenarios_dict",
    "derive_scenario_seed",
    "RunSummary",
    "LayerSummary",
    "summarize_run",
    "save_run",
    "load_run_traces",
    "load_run_summary",
    "RunScorecard",
    "FleetScorecard",
    "SMOKE_SCENARIOS",
    "run_smoke_scenario",
]

"""Run persistence: save a finished run's artefacts to disk.

A run that only lives in memory cannot be compared against last week's.
``save_run`` writes the standard artefact set — per-layer capacity,
utilisation and throttle traces as CSV, the run summary as JSON, and
the rendered dashboard as text — into a directory; ``load_run_traces``
reads the traces back for offline analysis or trace replay
(:class:`~repro.workload.generators.ReplayRate`).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.summary import summarize_run
from repro.core.errors import ConfigurationError
from repro.core.flow import LayerKind
from repro.core.manager import FlowRunResult
from repro.workload.traces import Trace

#: Trace kinds written per layer.
_TRACE_KINDS = ("capacity", "utilization", "throttle")


def save_run(result: FlowRunResult, directory: str | Path, slo_utilization: float = 85.0) -> Path:
    """Persist a run's artefacts; returns the directory written.

    Layout::

        <dir>/summary.json                      # totals + per-layer numbers
        <dir>/dashboard.txt                     # the all-in-one-place view
        <dir>/<layer>_<kind>.csv                # nine traces (3 layers x 3 kinds)

    The CSV traces and the summary read the same series on the same
    period grid, so each series is aggregated once (the metric store
    memoizes reads per series version; nothing writes after a run).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    for kind in LayerKind:
        layer = kind.name.lower()
        result.capacity_trace(kind).to_csv(directory / f"{layer}_capacity.csv")
        result.utilization_trace(kind).to_csv(directory / f"{layer}_utilization.csv")
        result.throttle_trace(kind).to_csv(directory / f"{layer}_throttle.csv")

    summary = summarize_run(result, slo_utilization=slo_utilization)
    payload = {
        "flow": result.flow.name,
        "duration_seconds": result.duration_seconds,
        "total_cost": summary.total_cost,
        "dropped_records": summary.dropped_records,
        "dropped_writes": summary.dropped_writes,
        "slo_utilization": slo_utilization,
        "layers": {
            layer.kind.name.lower(): {
                "mean_utilization": layer.mean_utilization,
                "violation_rate": layer.violation_rate,
                "throttled_total": layer.throttled_total,
                "capacity_min": layer.capacity_min,
                "capacity_max": layer.capacity_max,
                "controller_actions": layer.controller_actions,
                "cost": layer.cost,
            }
            for layer in summary.layers
        },
    }
    with open(directory / "summary.json", "w") as f:
        json.dump(payload, f, indent=2)
    (directory / "dashboard.txt").write_text(result.dashboard() + "\n")
    return directory


def load_run_traces(directory: str | Path) -> dict[tuple[LayerKind, str], Trace]:
    """Read back the traces written by :func:`save_run`.

    Returns ``{(layer, kind): trace}`` for every trace file present.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(f"{directory} is not a directory")
    traces: dict[tuple[LayerKind, str], Trace] = {}
    for kind in LayerKind:
        for trace_kind in _TRACE_KINDS:
            path = directory / f"{kind.name.lower()}_{trace_kind}.csv"
            if path.exists():
                traces[(kind, trace_kind)] = Trace.from_csv(path)
    if not traces:
        raise ConfigurationError(f"no run traces found in {directory}")
    return traces


def load_run_summary(directory: str | Path) -> dict:
    """Read back the summary written by :func:`save_run`."""
    path = Path(directory) / "summary.json"
    if not path.exists():
        raise ConfigurationError(f"no summary.json in {directory}")
    with open(path) as f:
        return json.load(f)

"""Process-parallel scenario runner for experiment sweeps.

Controller shootouts (E4), parameter sweeps (E9) and per-window share
analyses are embarrassingly parallel: every scenario is a pure function
of its arguments and a seed. This module fans such scenarios across a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the
results **indistinguishable from a serial run**:

* scenarios execute as submitted and results return in submission
  order, never completion order;
* every scenario's seed is derived from the sweep's base seed and the
  scenario *name* (not its position or worker id), so adding, removing
  or reordering scenarios does not reshuffle the randomness of the
  others;
* ``jobs=1`` runs in-process with no executor, and the parallel path
  must produce byte-identical results (the test suite pickles both and
  compares);
* the worker start method is pinned (see :data:`START_METHOD`), so the
  same sweep launches the same kind of worker on every platform.

Scenario callables must be module-level functions (picklable by
reference); their keyword arguments must be picklable values.
"""

from __future__ import annotations

import multiprocessing
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.errors import FlowerError

#: Pinned worker start method for every sweep pool.
#:
#: ``fork`` is deliberately excluded even where it is the platform
#: default: a forked worker inherits the parent's full mutable state —
#: warmed caches, monkeypatched modules, open handles — so a sweep's
#: behaviour could depend on what the parent process happened to have
#: done first, and ``fork`` does not exist on Windows (or survive as
#: the macOS default). ``forkserver`` (POSIX) and ``spawn`` (everywhere)
#: both hand every scenario an import-fresh interpreter, which is what
#: makes jobs=1 and jobs=N byte-identical by construction rather than
#: by luck. ``forkserver`` is preferred where available because the
#: server process imports ``repro`` once (see :func:`pool_context`) and
#: each worker is then a cheap fork *of that clean server*, not of the
#: arbitrary parent.
START_METHOD = (
    "forkserver"
    if "forkserver" in multiprocessing.get_all_start_methods()
    else "spawn"
)


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every sweep pool must use.

    Warm-up: under ``forkserver`` the package is preloaded into the
    fork server, so the per-worker cost is one fork instead of a full
    interpreter boot + import of numpy and repro per process. (The
    preload call is a no-op once the server is running.)
    """
    context = multiprocessing.get_context(START_METHOD)
    if START_METHOD == "forkserver":
        context.set_forkserver_preload(["repro"])
    return context


class RunnerError(FlowerError):
    """The scenario runner was misused."""


def derive_scenario_seed(base_seed: int, name: str) -> int:
    """A deterministic per-scenario seed from the sweep seed and name.

    Uses the same CRC32 label-folding as
    :func:`repro.simulation.rng.derive_rng`, so two sweeps with the same
    base seed give a scenario the same stream regardless of where it
    sits in the list or which worker process runs it.
    """
    import numpy as np

    sequence = np.random.SeedSequence([int(base_seed), zlib.crc32(name.encode("utf-8"))])
    return int(sequence.generate_state(1)[0])


@dataclass(frozen=True)
class Scenario:
    """One unit of sweep work: a named call to a module-level function."""

    name: str
    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)


def _call(scenario: Scenario) -> Any:
    return scenario.fn(**scenario.kwargs)


def run_scenarios(scenarios: Sequence[Scenario], jobs: int = 1) -> list[Any]:
    """Run every scenario; return results in scenario order.

    ``jobs=1`` (the default) runs serially in-process. ``jobs > 1``
    distributes scenarios over that many worker processes. Either way
    the returned list lines up index-for-index with ``scenarios`` and —
    because scenarios are deterministic in their arguments — holds
    byte-identical values.

    A scenario that raises propagates its exception to the caller (the
    remaining futures are cancelled by executor shutdown).
    """
    if jobs < 1:
        raise RunnerError(f"jobs must be >= 1, got {jobs}")
    names = [scenario.name for scenario in scenarios]
    if len(set(names)) != len(names):
        raise RunnerError(f"scenario names must be unique, got {names}")
    scenarios = list(scenarios)
    if jobs == 1 or len(scenarios) <= 1:
        return [_call(scenario) for scenario in scenarios]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(scenarios)), mp_context=pool_context()
    ) as pool:
        futures = [pool.submit(_call, scenario) for scenario in scenarios]
        try:
            return [future.result() for future in futures]
        except BaseException:
            # Fail fast: without cancel_futures the context manager's
            # shutdown(wait=True) would still run every queued scenario.
            pool.shutdown(wait=False, cancel_futures=True)
            raise


def run_scenarios_dict(scenarios: Sequence[Scenario], jobs: int = 1) -> dict[str, Any]:
    """Like :func:`run_scenarios` but keyed by scenario name."""
    results = run_scenarios(scenarios, jobs=jobs)
    return {scenario.name: result for scenario, result in zip(scenarios, results)}

"""Run scorecards: a finished run's health digest and regression gate.

A :class:`RunScorecard` condenses one managed run into the numbers a
maintainer (or CI) needs to decide "did this change make the manager
worse?": per-layer SLO violation rates, cost, per-fault recovery time
(MTTR), actuation / clamp / retry / breaker counts, causal-chain
closure, and throughput. Everything except the wall-clock fields is
deterministic for a given seed, so scorecards can be committed as
baselines and diffed — tight tolerances, both directions — by the
``repro scorecard --check`` CI gate.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.metrics import slo_violation_rate
from repro.chaos.mttr import recovery_times
from repro.chaos.schedule import ChaosSchedule, FaultKind, FaultSpec
from repro.control.actuators import RetryingActuator
from repro.control.bounded import BoundedActuator
from repro.core.errors import ConfigurationError
from repro.core.flow import LayerKind

#: Fields whose values depend on the machine, not the simulation; they
#: are reported for information but never gated on.
WALL_CLOCK_FIELDS = frozenset(
    {"wall_seconds", "ticks_per_second", "flow_wall_seconds"}
)


def _unwrap(actuator):
    """The :class:`RetryingActuator` inside a possibly-bounded stack."""
    if isinstance(actuator, BoundedActuator):
        actuator = actuator.inner
    return actuator if isinstance(actuator, RetryingActuator) else None


@dataclass(frozen=True)
class RunScorecard:
    """One run's gateable health numbers (see module docstring)."""

    name: str
    seed: int
    duration_seconds: int
    #: Per-layer % of samples with utilization above the SLO band.
    slo_violation_pct: dict[str, float] = field(default_factory=dict)
    cost_by_layer: dict[str, float] = field(default_factory=dict)
    total_cost: float = 0.0
    #: Per injected fault (``kind@time``): recovery seconds, or None if
    #: the layer never settled back inside the run.
    mttr_by_fault: dict[str, float | None] = field(default_factory=dict)
    #: Per control loop: invocations that changed capacity.
    actuations: dict[str, int] = field(default_factory=dict)
    #: Per control loop: invocations where bounds overrode the command.
    clamps: dict[str, int] = field(default_factory=dict)
    decisions: dict[str, int] = field(default_factory=dict)
    retry_attempts: int = 0
    breaker_openings: int = 0
    causal_chains: int = 0
    causal_chains_closed: int = 0
    dropped_records: int = 0
    dropped_writes: int = 0
    invariants_ok: bool = True
    #: Whether the run used the bit-exact workload path. Approximate
    #: (``exact=False``) cards refuse to compare against exact ones.
    exact: bool = True
    #: Wall-clock fields — informational, excluded from the gate.
    wall_seconds: float = 0.0
    ticks_per_second: float = 0.0

    @classmethod
    def from_result(
        cls, name: str, result, *, slo_band: float = 85.0, seed: int = 0
    ) -> "RunScorecard":
        """Condense a :class:`FlowRunResult` into a scorecard."""
        slo: dict[str, float] = {}
        for kind in LayerKind:
            trace = result.utilization_trace(kind)
            if len(trace):
                slo[kind.name.lower()] = round(
                    100.0 * slo_violation_rate(trace, "<=", slo_band), 6
                )
        mttr: dict[str, float | None] = {}
        if result.chaos_events:
            for sample in recovery_times(result):
                key = f"{sample.fault}@{sample.injected_at}"
                mttr[key] = (
                    float(sample.recovery_seconds) if sample.recovered else None
                )
        loops = dict(result.loops)
        all_loops = list(loops.values())
        if result.read_loop is not None:
            all_loops.append(result.read_loop)
        actuations = {loop.name: loop.actions_taken for loop in all_loops}
        clamps = {
            loop.name: sum(
                1
                for r in loop.records
                if r.capacity_applied != r.capacity_requested
            )
            for loop in all_loops
        }
        decisions = {loop.name: len(loop.records) for loop in all_loops}
        retry_attempts = 0
        breaker_openings = 0
        for loop in all_loops:
            retrying = _unwrap(loop.actuator)
            if retrying is not None:
                retry_attempts += retrying.failed_attempts
                breaker_openings += retrying.total_openings
        chains = chains_closed = 0
        if result.recorder is not None:
            from repro.observability.causal import decision_chains, fault_chains

            all_chains = decision_chains(result.recorder) + fault_chains(result)
            chains = len(all_chains)
            # The run's end is the closure horizon: a capacity
            # transition scheduled to complete after it is in flight at
            # shutdown, not a broken chain.
            chains_closed = sum(
                1 for c in all_chains if c.closed(horizon=result.duration_seconds)
            )
        wall = float(result.wall_seconds)
        return cls(
            name=name,
            seed=seed,
            duration_seconds=result.duration_seconds,
            slo_violation_pct=slo,
            cost_by_layer={
                layer: round(cost, 9)
                for layer, cost in result.cost_by_layer.items()
            },
            total_cost=round(result.total_cost, 9),
            mttr_by_fault=mttr,
            actuations=actuations,
            clamps=clamps,
            decisions=decisions,
            retry_attempts=retry_attempts,
            breaker_openings=breaker_openings,
            causal_chains=chains,
            causal_chains_closed=chains_closed,
            dropped_records=result.dropped_records,
            dropped_writes=result.dropped_writes,
            invariants_ok=(result.invariants.ok if result.invariants else True),
            exact=bool(getattr(result, "exact", True)),
            wall_seconds=round(wall, 4),
            ticks_per_second=(
                round(result.duration_seconds / wall, 1) if wall > 0 else 0.0
            ),
        )

    def without_wall_clock(self) -> "RunScorecard":
        """A copy with the machine-dependent fields zeroed.

        The catalog matrix commits cards byte-for-byte, so everything
        in the file must be deterministic; zeroing (rather than
        omitting) keeps the schema identical to live cards.
        """
        import dataclasses

        return dataclasses.replace(self, wall_seconds=0.0, ticks_per_second=0.0)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "duration_seconds": self.duration_seconds,
            "slo_violation_pct": dict(sorted(self.slo_violation_pct.items())),
            "cost_by_layer": dict(sorted(self.cost_by_layer.items())),
            "total_cost": self.total_cost,
            "mttr_by_fault": dict(sorted(self.mttr_by_fault.items())),
            "actuations": dict(sorted(self.actuations.items())),
            "clamps": dict(sorted(self.clamps.items())),
            "decisions": dict(sorted(self.decisions.items())),
            "retry_attempts": self.retry_attempts,
            "breaker_openings": self.breaker_openings,
            "causal_chains": self.causal_chains,
            "causal_chains_closed": self.causal_chains_closed,
            "dropped_records": self.dropped_records,
            "dropped_writes": self.dropped_writes,
            "invariants_ok": self.invariants_ok,
            "exact": self.exact,
            "wall_seconds": self.wall_seconds,
            "ticks_per_second": self.ticks_per_second,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "RunScorecard":
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            duration_seconds=int(data["duration_seconds"]),
            slo_violation_pct={
                str(k): float(v) for k, v in data.get("slo_violation_pct", {}).items()
            },
            cost_by_layer={
                str(k): float(v) for k, v in data.get("cost_by_layer", {}).items()
            },
            total_cost=float(data.get("total_cost", 0.0)),
            mttr_by_fault={
                str(k): (None if v is None else float(v))
                for k, v in data.get("mttr_by_fault", {}).items()
            },
            actuations={str(k): int(v) for k, v in data.get("actuations", {}).items()},
            clamps={str(k): int(v) for k, v in data.get("clamps", {}).items()},
            decisions={str(k): int(v) for k, v in data.get("decisions", {}).items()},
            retry_attempts=int(data.get("retry_attempts", 0)),
            breaker_openings=int(data.get("breaker_openings", 0)),
            causal_chains=int(data.get("causal_chains", 0)),
            causal_chains_closed=int(data.get("causal_chains_closed", 0)),
            dropped_records=int(data.get("dropped_records", 0)),
            dropped_writes=int(data.get("dropped_writes", 0)),
            invariants_ok=bool(data.get("invariants_ok", True)),
            exact=bool(data.get("exact", True)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            ticks_per_second=float(data.get("ticks_per_second", 0.0)),
        )

    @classmethod
    def from_json_file(cls, path: str | Path) -> "RunScorecard":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------
    # The regression gate
    # ------------------------------------------------------------------
    def compare(self, baseline: "RunScorecard", rel_tol: float = 1e-9) -> list[str]:
        """Drift messages vs a committed baseline; empty means green.

        Every deterministic field is compared with a tight relative
        tolerance, and drift in *either* direction fails — a run that
        got cheaper or faster-settling without the baseline being
        regenerated is just as suspicious as one that regressed.
        The union of both cards' keys is walked, so a field present on
        only one side (schema additions, hand-edited baselines) is
        drift, not silence. Wall-clock fields
        (:data:`WALL_CLOCK_FIELDS`) are skipped.

        Raises :class:`ConfigurationError` when the cards' workload
        exactness differs: the approximate fast path is statistically
        equivalent but not bit-comparable to the exact reference, so a
        fast card gating (or being gated by) an exact baseline is
        always a configuration mistake, never a tolerable drift.
        """
        _require_same_exactness(self, baseline)
        drifts: list[str] = []
        mine, theirs = self.to_dict(), baseline.to_dict()
        for key in sorted(set(theirs) | set(mine)):
            if key in WALL_CLOCK_FIELDS:
                continue
            expected = theirs.get(key)
            actual = mine.get(key)
            if isinstance(expected, dict) or isinstance(actual, dict):
                expected = expected if isinstance(expected, dict) else {}
                actual = actual if isinstance(actual, dict) else {}
                for sub in sorted(set(expected) | set(actual)):
                    want, got = expected.get(sub), actual.get(sub)
                    if not _close(want, got, rel_tol):
                        drifts.append(f"{key}.{sub}: baseline {want!r}, got {got!r}")
            elif not _close(expected, actual, rel_tol):
                drifts.append(f"{key}: baseline {expected!r}, got {actual!r}")
        return drifts

    def summary(self) -> str:
        """One-screen text rendering (the CLI's default output)."""
        exactness = "" if self.exact else ", APPROXIMATE fast workload path"
        lines = [
            f"scorecard {self.name} (seed {self.seed}, "
            f"{self.duration_seconds}s simulated{exactness})",
            f"  cost            ${self.total_cost:.4f}  "
            + " ".join(f"{k}=${v:.4f}" for k, v in sorted(self.cost_by_layer.items())),
        ]
        if self.slo_violation_pct:
            lines.append(
                "  slo violations  "
                + "  ".join(
                    f"{k}={v:.2f}%" for k, v in sorted(self.slo_violation_pct.items())
                )
            )
        if self.mttr_by_fault:
            lines.append("  mttr per fault:")
            for fault, seconds in sorted(self.mttr_by_fault.items()):
                status = f"{seconds:.0f}s" if seconds is not None else "NOT RECOVERED"
                lines.append(f"    {fault:<28} {status}")
        lines.append(
            "  control         "
            + "  ".join(
                f"{k}={self.actuations[k]}/{self.decisions.get(k, 0)}"
                for k in sorted(self.actuations)
            )
            + "  (acted/decisions)"
        )
        lines.append(
            f"  faults absorbed retries={self.retry_attempts} "
            f"breaker_openings={self.breaker_openings} "
            f"clamps={sum(self.clamps.values())}"
        )
        if self.causal_chains:
            lines.append(
                f"  causal chains   {self.causal_chains_closed}/{self.causal_chains} closed"
            )
        lines.append(
            f"  dropped         records={self.dropped_records} writes={self.dropped_writes}"
            f"  invariants={'ok' if self.invariants_ok else 'VIOLATED'}"
        )
        lines.append(
            f"  throughput      {self.ticks_per_second:.0f} ticks/s "
            f"({self.wall_seconds:.2f}s wall; informational)"
        )
        return "\n".join(lines)


def _require_same_exactness(mine, baseline) -> None:
    """Refuse to compare cards from different workload paths."""
    if bool(mine.exact) != bool(baseline.exact):
        raise ConfigurationError(
            f"cannot compare scorecard {mine.name!r} (exact={mine.exact}) "
            f"against baseline {baseline.name!r} (exact={baseline.exact}): "
            "the approximate fast path is not bit-comparable to the exact "
            "reference — regenerate the baseline on the same workload path"
        )


def _close(expected, actual, rel_tol: float) -> bool:
    if isinstance(expected, float) or isinstance(actual, float):
        if expected is None or actual is None:
            return expected is actual
        return math.isclose(float(expected), float(actual), rel_tol=rel_tol, abs_tol=1e-9)
    return expected == actual


@dataclass(frozen=True)
class FleetScorecard:
    """A multi-flow region run's gateable digest.

    One :class:`RunScorecard` per flow plus the fleet-level numbers a
    single flow cannot see: region admission denials, coordinator
    activity, and the summed cost. Duck-types the single-run card's
    gate surface (``summary`` / ``compare`` / ``to_json`` /
    ``from_json_file``) so the CLI gate treats both uniformly.
    """

    name: str
    seed: int
    duration_seconds: int
    flows: dict[str, RunScorecard] = field(default_factory=dict)
    total_cost: float = 0.0
    #: ``{flow_id: {resource: denied_requests}}`` from the region.
    denials: dict[str, dict[str, int]] = field(default_factory=dict)
    coordinator_passes: int = 0
    cap_retargets: int = 0
    #: Whether the fleet ran on the bit-exact workload path.
    exact: bool = True
    #: Wall-clock — informational, excluded from the gate.
    wall_seconds: float = 0.0
    #: Per-flow wall-clock attribution from the fleet executor's
    #: profiler hook (empty when profiling was off) — informational,
    #: excluded from the gate like every ``WALL_CLOCK_FIELDS`` entry.
    flow_wall_seconds: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_fleet_result(cls, name: str, result, *, seed: int = 0) -> "FleetScorecard":
        """Condense a :class:`~repro.core.fleet.FleetRunResult`."""
        coordinator = result.coordinator
        return cls(
            name=name,
            seed=seed,
            duration_seconds=result.duration_seconds,
            flows={
                flow_id: RunScorecard.from_result(flow_id, flow_result, seed=seed)
                for flow_id, flow_result in result.flows.items()
            },
            total_cost=round(result.total_cost, 9),
            denials=result.denials_by_flow(),
            coordinator_passes=len(coordinator.records) if coordinator else 0,
            cap_retargets=coordinator.retargets if coordinator else 0,
            exact=bool(getattr(result, "exact", True)),
            wall_seconds=round(float(result.wall_seconds), 4),
            flow_wall_seconds={
                flow_id: round(float(seconds), 4)
                for flow_id, seconds in sorted(
                    getattr(result, "flow_wall_seconds", {}).items()
                )
            },
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "fleet",
            "name": self.name,
            "seed": self.seed,
            "duration_seconds": self.duration_seconds,
            "total_cost": self.total_cost,
            "denials": {
                flow_id: dict(sorted(counts.items()))
                for flow_id, counts in sorted(self.denials.items())
            },
            "coordinator_passes": self.coordinator_passes,
            "cap_retargets": self.cap_retargets,
            "exact": self.exact,
            "flows": {
                flow_id: card.to_dict() for flow_id, card in sorted(self.flows.items())
            },
            "wall_seconds": self.wall_seconds,
            "flow_wall_seconds": dict(sorted(self.flow_wall_seconds.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "FleetScorecard":
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            duration_seconds=int(data["duration_seconds"]),
            flows={
                str(flow_id): RunScorecard.from_dict(card)
                for flow_id, card in data.get("flows", {}).items()
            },
            total_cost=float(data.get("total_cost", 0.0)),
            denials={
                str(flow_id): {str(k): int(v) for k, v in counts.items()}
                for flow_id, counts in data.get("denials", {}).items()
            },
            coordinator_passes=int(data.get("coordinator_passes", 0)),
            cap_retargets=int(data.get("cap_retargets", 0)),
            exact=bool(data.get("exact", True)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            flow_wall_seconds={
                str(flow_id): float(seconds)
                for flow_id, seconds in data.get("flow_wall_seconds", {}).items()
            },
        )

    @classmethod
    def from_json_file(cls, path: str | Path) -> "FleetScorecard":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------
    # The regression gate
    # ------------------------------------------------------------------
    def compare(self, baseline: "FleetScorecard", rel_tol: float = 1e-9) -> list[str]:
        """Drift messages vs a committed baseline; empty means green.

        Fleet-level fields first, then each flow's card through the
        single-run comparison with the flow id prefixed. A flow present
        on only one side is drift, not silence. Mixed exact/approximate
        comparisons raise, as for :meth:`RunScorecard.compare`.
        """
        _require_same_exactness(self, baseline)
        drifts: list[str] = []
        for key in ("duration_seconds", "total_cost", "coordinator_passes", "cap_retargets"):
            want, got = getattr(baseline, key), getattr(self, key)
            if not _close(want, got, rel_tol):
                drifts.append(f"{key}: baseline {want!r}, got {got!r}")
        flow_ids = sorted(set(baseline.denials) | set(self.denials))
        for flow_id in flow_ids:
            want_d, got_d = baseline.denials.get(flow_id, {}), self.denials.get(flow_id, {})
            for resource in sorted(set(want_d) | set(got_d)):
                want, got = want_d.get(resource), got_d.get(resource)
                if want != got:
                    drifts.append(
                        f"denials.{flow_id}.{resource}: baseline {want!r}, got {got!r}"
                    )
        for flow_id in sorted(set(baseline.flows) | set(self.flows)):
            mine = self.flows.get(flow_id)
            theirs = baseline.flows.get(flow_id)
            if mine is None or theirs is None:
                drifts.append(
                    f"flows.{flow_id}: baseline "
                    f"{'present' if theirs else 'absent'}, got "
                    f"{'present' if mine else 'absent'}"
                )
                continue
            drifts.extend(f"{flow_id}.{d}" for d in mine.compare(theirs, rel_tol))
        return drifts

    def summary(self) -> str:
        """One-screen text rendering (the CLI's default output)."""
        denied = sum(sum(counts.values()) for counts in self.denials.values())
        exactness = "" if self.exact else ", APPROXIMATE fast workload path"
        lines = [
            f"fleet scorecard {self.name} (seed {self.seed}, "
            f"{len(self.flows)} flows, {self.duration_seconds}s simulated{exactness})",
            f"  total cost      ${self.total_cost:.4f}",
            f"  region          denials={denied} "
            f"coordinator_passes={self.coordinator_passes} "
            f"cap_retargets={self.cap_retargets}",
        ]
        for flow_id, card in sorted(self.flows.items()):
            wall = (
                f" wall={self.flow_wall_seconds[flow_id]:.3f}s"
                if flow_id in self.flow_wall_seconds
                else ""
            )
            lines.append(
                f"  {flow_id}: ${card.total_cost:.4f} "
                f"acted={sum(card.actuations.values())} "
                f"clamps={sum(card.clamps.values())} "
                f"retries={card.retry_attempts} "
                f"breakers={card.breaker_openings} "
                f"invariants={'ok' if card.invariants_ok else 'VIOLATED'}"
                f"{wall}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Smoke scenarios (the CI gate's workloads)
# ----------------------------------------------------------------------

#: Simulated duration of each smoke scenario (short enough for CI).
SMOKE_DURATION = 2 * 3600
SMOKE_SEED = 7

#: Scenario names -> builder; see :func:`run_smoke_scenario`.
SMOKE_SCENARIOS = ("steady", "chaos", "fleet")


def _smoke_chaos(duration: int, seed: int) -> ChaosSchedule:
    """One fault per elastic layer, scheduled into the workload's
    high-load phase so every fault produces an observable symptom (a
    throttle episode or a forced rebalance) and hence a closeable
    causal chain — the chain-closure count in the scorecard is a real
    gate, not vacuously open. Worker-crash closure needs a
    fixed-parallelism topology (only topology runs publish crash
    rebalances) and is exercised by the tracing test suite instead.
    """
    return ChaosSchedule(
        faults=(
            FaultSpec(FaultKind.SHARD_BROWNOUT, start=3 * duration // 8,
                      duration=duration // 12, intensity=0.7),
            FaultSpec(FaultKind.REBALANCE_FAIL, start=duration // 2,
                      duration=duration // 24),
            FaultSpec(FaultKind.THROTTLE_STORM, start=2 * duration // 3,
                      duration=duration // 12, intensity=0.9),
        ),
        seed=seed,
        name="scorecard-smoke",
    )


def run_fleet_smoke(
    *, seed: int = SMOKE_SEED, duration: int = SMOKE_DURATION
) -> FleetScorecard:
    """The fleet smoke scenario: 3 flows squeezed into one region.

    Three sinusoidal flows (staggered means) share an account sized so
    the pool is genuinely contended at peak: the flows start with
    overcommitted share bounds (each believes it may claim most of the
    account), so region admission denials surface early, and the
    coordinator then arbitrates the bounds down to a feasible split —
    the scorecard gates both mechanisms plus every flow's own health.
    """
    from repro.cloud.region import RegionLimits
    from repro.cloud.storm import StormConfig
    from repro.core.config import LayerControlConfig, default_adaptive_controller
    from repro.core.fleet import FleetFlowSpec, RegionFleetManager
    from repro.core.flow import LayerKind
    from repro.workload.generators import SinusoidalRate

    def controls() -> dict[LayerKind, LayerControlConfig]:
        return {
            kind: LayerControlConfig(
                controller=default_adaptive_controller(kind), period=60
            )
            for kind in LayerKind
        }

    flows = [
        FleetFlowSpec(
            name=f"flow{i}",
            workload=SinusoidalRate(
                mean=1800.0 + 400.0 * i,
                amplitude=1400.0,
                period=duration,
                phase=duration // 4,
            ),
            controls=controls(),
            # Overcommitted intent: each flow starts believing it may
            # take most of the account; admission denials surface until
            # the coordinator's first pass reins the bounds in.
            share_bounds={
                LayerKind.INGESTION: 8,
                LayerKind.ANALYTICS: 8,
                LayerKind.STORAGE: 1200,
            },
            storm=StormConfig(records_per_vm_per_second=800),
        )
        for i in range(3)
    ]
    limits = RegionLimits(
        max_instances=10,
        max_total_shards=12,
        max_total_write_units=2400,
        contention_threshold=0.7,
        contention_slope=0.3,
    )
    fleet = RegionFleetManager(flows, limits=limits, seed=seed, coordinate_period=300)
    result = fleet.run(duration)
    return FleetScorecard.from_fleet_result("fleet", result, seed=seed)


def run_smoke_scenario(
    name: str, *, seed: int = SMOKE_SEED, duration: int = SMOKE_DURATION
) -> "RunScorecard | FleetScorecard":
    """Run one named smoke scenario and score it.

    ``steady`` is a sinusoidal day on the fully-controlled flow;
    ``chaos`` is the same flow under one fault per layer (both run with
    the flight recorder attached so chain closure is part of the gate);
    ``fleet`` is a 3-flow region run under shared account limits, and
    returns a :class:`FleetScorecard`.
    """
    # Imported here, not at module top: repro.core.builder imports the
    # manager, which imports analysis consumers — a cycle at import
    # time but not at call time.
    from repro.cloud.dynamodb import DynamoDBConfig
    from repro.cloud.storm import StormConfig
    from repro.core.builder import FlowBuilder
    from repro.workload.generators import SinusoidalRate

    if name not in SMOKE_SCENARIOS:
        raise ConfigurationError(
            f"unknown scorecard scenario {name!r}; one of: {', '.join(SMOKE_SCENARIOS)}"
        )
    if name == "fleet":
        return run_fleet_smoke(seed=seed, duration=duration)
    # ``phase=duration // 4`` puts the sinusoid's trough at t=0 and its
    # peak mid-run (t=duration/2), so the flow ramps up gently and the
    # chaos faults land on the loaded system, not an idle one.
    workload = SinusoidalRate(
        mean=1500.0, amplitude=1200.0, period=duration, phase=duration // 4
    )
    # 1000 records/s per VM makes the analytics fleet genuinely
    # load-bound (2-5 VMs over the day) instead of idling at the floor;
    # a 10-second burst bucket (vs the 5-minute default) keeps the
    # table honest under the throttle storm — the default bucket
    # absorbs the whole deficit until the controller reacts, so the
    # fault would never surface a ``throttle`` alarm for its chain.
    analytics_config = StormConfig(records_per_vm_per_second=1000)
    storage_config = DynamoDBConfig(burst_seconds=10)
    builder = (
        FlowBuilder(f"scorecard-{name}", seed=seed)
        .ingestion(shards=2)
        .analytics(vms=2, storm=analytics_config)
        .storage(write_units=300, config=storage_config)
        .workload(workload)
        .control_all(style="adaptive", reference=60.0, period=60)
        .observe()
    )
    if name == "chaos":
        builder.chaos(_smoke_chaos(duration, seed))
    result = builder.build().run(duration)
    return RunScorecard.from_result(name, result, seed=seed)

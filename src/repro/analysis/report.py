"""Experiment report rendering.

Benchmarks print the same rows/series the paper reports; this module
provides the small amount of table plumbing they share, so every
experiment's output looks the same and EXPERIMENTS.md can quote them
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.monitoring.dashboard import render_table


@dataclass
class ComparisonReport:
    """A labelled-rows × named-columns table (e.g. controllers × metrics)."""

    title: str
    columns: list[str]
    rows: list[tuple[str, list[float | str | None]]] = field(default_factory=list)

    def add_row(self, label: str, values: list[float | str | None]) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row {label!r} has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append((label, values))

    def best_row(self, column: str, minimize: bool = True) -> str:
        """Label of the row with the best numeric value in ``column``."""
        index = self._column_index(column)
        numeric = [
            (label, values[index])
            for label, values in self.rows
            if isinstance(values[index], (int, float))
        ]
        if not numeric:
            raise ConfigurationError(f"no numeric values in column {column!r}")
        chooser = min if minimize else max
        return chooser(numeric, key=lambda pair: pair[1])[0]

    def value(self, row_label: str, column: str) -> float | str | None:
        index = self._column_index(column)
        for label, values in self.rows:
            if label == row_label:
                return values[index]
        raise ConfigurationError(f"no row labelled {row_label!r}")

    def render(self) -> str:
        def fmt(value: float | str | None) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:,.3f}"
            return str(value)

        body = [[label, *(fmt(v) for v in values)] for label, values in self.rows]
        table = render_table(["", *self.columns], body)
        return f"{self.title}\n{table}"

    def render_markdown(self) -> str:
        """The same table as GitHub-flavoured markdown, for EXPERIMENTS.md."""
        def fmt(value: float | str | None) -> str:
            if value is None:
                return "—"
            if isinstance(value, float):
                return f"{value:,.3f}"
            return str(value)

        lines = [
            f"### {self.title}",
            "",
            "| | " + " | ".join(self.columns) + " |",
            "|" + "---|" * (len(self.columns) + 1),
        ]
        for label, values in self.rows:
            lines.append("| " + " | ".join([label, *(fmt(v) for v in values)]) + " |")
        return "\n".join(lines)

    def _column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise ConfigurationError(
                f"unknown column {column!r}; have {self.columns}"
            ) from None

"""Control-quality metrics over traces.

All functions take :class:`~repro.workload.traces.Trace` objects, the
library's uniform time-series type, so the same metrics apply to a
utilisation trace from CloudWatch, a capacity trace from a control
loop, or a synthetic trace in a test.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import ConfigurationError
from repro.workload.traces import Trace

_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


def slo_violation_rate(trace: Trace, comparison: str, threshold: float) -> float:
    """Fraction of samples violating an SLO like ``"<= 80"``.

    ``comparison`` expresses the *SLO* (the condition that should hold);
    a sample violates when the condition is false.
    """
    if comparison not in _COMPARATORS:
        raise ConfigurationError(
            f"comparison must be one of {sorted(_COMPARATORS)}, got {comparison!r}"
        )
    if len(trace) == 0:
        raise ConfigurationError("cannot compute violation rate of an empty trace")
    holds = _COMPARATORS[comparison]
    violations = sum(1 for _t, v in trace if not holds(v, threshold))
    return violations / len(trace)


def settling_time(
    trace: Trace,
    band_low: float,
    band_high: float,
    start: int,
    hold_seconds: int = 0,
) -> int | None:
    """Seconds after ``start`` until the trace enters and *stays in* a band.

    Returns the delay from ``start`` to the first sample after which
    the trace remains inside ``[band_low, band_high]`` for at least
    ``hold_seconds`` (and through the end of any shorter remainder).
    Returns None if the trace never settles.
    """
    if band_low > band_high:
        raise ConfigurationError(f"band_low {band_low} exceeds band_high {band_high}")
    if hold_seconds < 0:
        raise ConfigurationError("hold_seconds must be non-negative")
    points = [(t, v) for t, v in trace if t >= start]
    if not points:
        raise ConfigurationError(f"trace has no samples at or after start={start}")
    candidate: int | None = None
    for t, v in points:
        inside = band_low <= v <= band_high
        if inside and candidate is None:
            candidate = t
        elif not inside:
            candidate = None
    if candidate is None:
        return None
    if hold_seconds and points[-1][0] - candidate < hold_seconds:
        return None
    return candidate - start


def overshoot(trace: Trace, reference: float, start: int = 0) -> float:
    """Maximum excursion above the reference after ``start``.

    Zero if the trace never exceeds the reference.
    """
    values = [v for t, v in trace if t >= start]
    if not values:
        raise ConfigurationError(f"trace has no samples at or after start={start}")
    return max(0.0, max(values) - reference)


def integral_absolute_error(trace: Trace, reference: float) -> float:
    """Sum of |value - reference| weighted by each sample's hold time."""
    if len(trace) == 0:
        raise ConfigurationError("cannot integrate an empty trace")
    times = trace.times
    values = trace.values
    if len(times) == 1:
        return abs(values[0] - reference)
    intervals = [t2 - t1 for t1, t2 in zip(times, times[1:])]
    intervals.append(sorted(intervals)[len(intervals) // 2])
    return sum(abs(v - reference) * dt for v, dt in zip(values, intervals))


def hold_intervals(trace: Trace) -> list[int]:
    """Hold time of each sample: until the next sample, and the median
    interval for the last one. Shared by every time-weighted metric so
    integrals and peak baselines use the same effective span."""
    times = trace.times
    if len(times) < 2:
        raise ConfigurationError("need at least 2 samples to define hold intervals")
    intervals = [t2 - t1 for t1, t2 in zip(times, times[1:])]
    intervals.append(sorted(intervals)[len(intervals) // 2])
    return intervals


def effective_span_hours(trace: Trace) -> float:
    """Total hold time of a trace's samples, in hours."""
    return sum(hold_intervals(trace)) / 3600.0


def resource_unit_hours(capacity_trace: Trace) -> float:
    """Time-weighted integral of a capacity trace, in unit-hours.

    Each sample holds until the next one; the final sample holds for
    the median interval (same convention as
    :meth:`Trace.time_weighted_mean`).
    """
    if len(capacity_trace) == 0:
        raise ConfigurationError("cannot integrate an empty trace")
    if len(capacity_trace) == 1:
        return 0.0
    intervals = hold_intervals(capacity_trace)
    unit_seconds = sum(v * dt for v, dt in zip(capacity_trace.values, intervals))
    return unit_seconds / 3600.0

"""One-stop run summaries.

Condenses a :class:`~repro.core.manager.FlowRunResult` into the numbers
an operator (or a benchmark) cares about per layer: SLO compliance,
overload, controller activity and cost — rendered the same way
everywhere so examples, tests and EXPERIMENTS.md agree on definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import slo_violation_rate
from repro.core.flow import LayerKind
from repro.core.manager import FlowRunResult
from repro.monitoring.dashboard import render_table


@dataclass(frozen=True)
class LayerSummary:
    """Per-layer outcome of a run."""

    kind: LayerKind
    mean_utilization: float
    violation_rate: float
    throttled_total: float
    capacity_min: float
    capacity_max: float
    controller_actions: int
    cost: float


@dataclass(frozen=True)
class RunSummary:
    """Whole-run outcome: one row per layer plus totals."""

    layers: tuple[LayerSummary, ...]
    total_cost: float
    dropped_records: int
    dropped_writes: int

    def layer(self, kind: LayerKind) -> LayerSummary:
        for layer in self.layers:
            if layer.kind == kind:
                return layer
        raise KeyError(kind)

    def render(self) -> str:
        rows = []
        for layer in self.layers:
            rows.append([
                layer.kind.name.lower(),
                f"{layer.mean_utilization:.1f}",
                f"{100 * layer.violation_rate:.1f}",
                f"{layer.throttled_total:,.0f}",
                f"{layer.capacity_min:.0f}..{layer.capacity_max:.0f}",
                str(layer.controller_actions),
                f"{layer.cost:.4f}",
            ])
        table = render_table(
            ["layer", "util%", "viol%", "throttled", "capacity", "actions", "cost$"],
            rows,
        )
        footer = (
            f"total cost ${self.total_cost:.4f}; dropped records "
            f"{self.dropped_records:,}, dropped writes {self.dropped_writes:,}"
        )
        return f"{table}\n{footer}"


def summarize_run(
    result: FlowRunResult, slo_utilization: float = 85.0, period: int | None = None
) -> RunSummary:
    """Build a :class:`RunSummary` from a finished run.

    ``slo_utilization`` is the compliance threshold applied to every
    layer's utilisation trace (the "SLO" column); ``period`` is the
    aggregation period of the traces read (default: the run's sample
    period). Reads on the same period grid as other reporting —
    benchmarks re-plotting the same traces, :func:`~repro.analysis.store.save_run`
    — are served from the metric store's read memo rather than
    re-aggregated, so summarising a finished run twice costs one pass.
    """
    layers = []
    cost_keys = {
        LayerKind.INGESTION: "ingestion",
        LayerKind.ANALYTICS: "analytics",
        LayerKind.STORAGE: "storage",
    }
    for kind in LayerKind:
        utilization = result.utilization_trace(kind, period)
        capacity = result.capacity_trace(kind, period)
        throttles = result.throttle_trace(kind, period)
        loop = result.loops.get(kind)
        layers.append(LayerSummary(
            kind=kind,
            mean_utilization=utilization.mean(),
            violation_rate=slo_violation_rate(utilization, "<=", slo_utilization),
            throttled_total=sum(throttles.values),
            capacity_min=capacity.minimum(),
            capacity_max=capacity.maximum(),
            controller_actions=loop.actions_taken if loop is not None else 0,
            cost=result.cost_by_layer[cost_keys[kind]],
        ))
    return RunSummary(
        layers=tuple(layers),
        total_cost=result.total_cost,
        dropped_records=result.dropped_records,
        dropped_writes=result.dropped_writes,
    )

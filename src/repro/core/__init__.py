"""Flower's core: flow model, builder, configuration and manager."""

from repro.core.builder import FlowBuilder
from repro.core.config import (
    DEFAULT_REFERENCE,
    LayerControlConfig,
    make_controller,
)
from repro.core.errors import (
    CapacityError,
    ConfigurationError,
    ControlError,
    FlowerError,
    MonitoringError,
    OptimizationError,
    RegionCapacityError,
    RegressionError,
    ServiceError,
    SimulationError,
    ThrottlingError,
)
from repro.core.fleet import (
    CoordinationRecord,
    FleetCoordinator,
    FleetFlowSpec,
    FleetRunResult,
    FleetScenarioSpec,
    RegionFleetManager,
    run_fleet_scenario,
    sweep_fleet_scenarios,
)
from repro.core.flow import FlowSpec, LayerKind, LayerSpec, clickstream_flow_spec
from repro.core.manager import (
    FlowElasticityManager,
    FlowRunResult,
    ServiceCapacities,
)

__all__ = [
    "FlowBuilder",
    "FlowElasticityManager",
    "FlowRunResult",
    "ServiceCapacities",
    "LayerControlConfig",
    "make_controller",
    "DEFAULT_REFERENCE",
    "FlowSpec",
    "LayerSpec",
    "LayerKind",
    "clickstream_flow_spec",
    "FlowerError",
    "ConfigurationError",
    "SimulationError",
    "ServiceError",
    "CapacityError",
    "RegionCapacityError",
    "ThrottlingError",
    "FleetFlowSpec",
    "FleetCoordinator",
    "CoordinationRecord",
    "RegionFleetManager",
    "FleetRunResult",
    "FleetScenarioSpec",
    "run_fleet_scenario",
    "sweep_fleet_scenarios",
    "OptimizationError",
    "RegressionError",
    "ControlError",
    "MonitoringError",
]

"""The flow builder: the demo's GUI, as a fluent API.

In the demonstration the attendee "will use Flower's Flow Builder to
drag and drop multiple platforms and create a data analytics flow",
then "follow a wizard to configure the controllers with information
such as resource name, desired reference value, and monitoring period"
(Sec. 4). This builder is the programmatic equivalent: declare the
three layers, attach a workload, configure controllers per layer (or
all at once), then :meth:`build` a ready-to-run
:class:`~repro.core.manager.FlowElasticityManager`.

Example::

    manager = (
        FlowBuilder("click-stream", seed=7)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(DiurnalRate(mean=800, amplitude=500))
        .control_all(style="adaptive", reference=60.0, period=60)
        .build()
    )
    result = manager.run(6 * 3600)
"""

from __future__ import annotations

from repro.cloud.dynamodb import DynamoDBConfig
from repro.cloud.ec2 import EC2Config
from repro.cloud.kinesis import KinesisConfig
from repro.cloud.pricing import PriceBook
from repro.cloud.storm import StormConfig, TopologyConfig
from repro.control.base import Controller
from repro.core.config import DEFAULT_REFERENCE, LayerControlConfig, make_controller
from repro.core.errors import ConfigurationError
from repro.core.flow import FlowSpec, LayerKind, clickstream_flow_spec
from repro.core.manager import FlowElasticityManager, ServiceCapacities
from repro.observability.recorder import FlightRecorder
from repro.workload.clickstream import ClickStreamConfig
from repro.workload.generators import RatePattern


class FlowBuilder:
    """Fluent construction of a managed data analytics flow."""

    def __init__(self, name: str = "click-stream-analytics", seed: int = 0) -> None:
        self._spec: FlowSpec = clickstream_flow_spec(name)
        self._seed = seed
        self._shards = 2
        self._vms = 2
        self._write_units = 300
        self._pattern: RatePattern | None = None
        self._controls: dict[LayerKind, LayerControlConfig] = {}
        self._share_bounds: dict[LayerKind, int] = {}
        self._share_schedule = None
        self._read_pattern: RatePattern | None = None
        self._read_units = 100
        self._read_control: LayerControlConfig | None = None
        self._topology: TopologyConfig | None = None
        self._price_book: PriceBook | None = None
        self._tick_seconds = 1
        self._clickstream: ClickStreamConfig | None = None
        self._kinesis: KinesisConfig | None = None
        self._storm: StormConfig | None = None
        self._ec2: EC2Config | None = None
        self._dynamodb: DynamoDBConfig | None = None
        self._recorder: FlightRecorder | None = None
        self._span_execution = True
        self._chaos = None
        self._invariants = True
        self._telemetry = True
        self._exact = True

    # ------------------------------------------------------------------
    # Layers (the drag-and-drop step)
    # ------------------------------------------------------------------
    def ingestion(self, shards: int = 2, config: KinesisConfig | None = None) -> "FlowBuilder":
        """Place the Kinesis ingestion layer."""
        self._shards = shards
        self._kinesis = config
        return self

    def analytics(
        self,
        vms: int = 2,
        storm: StormConfig | None = None,
        ec2: EC2Config | None = None,
        topology: "TopologyConfig | None" = None,
    ) -> "FlowBuilder":
        """Place the Storm-on-EC2 analytics layer.

        With ``topology`` set, the cluster uses the fixed-parallelism
        model: explicit bolts, executor slots, and a rebalance pause
        whenever the running VM count changes.
        """
        self._vms = vms
        self._storm = storm
        self._ec2 = ec2
        self._topology = topology
        return self

    def storage(self, write_units: int = 300, config: DynamoDBConfig | None = None) -> "FlowBuilder":
        """Place the DynamoDB storage layer."""
        self._write_units = write_units
        self._dynamodb = config
        return self

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def workload(
        self, pattern: RatePattern, clickstream: ClickStreamConfig | None = None
    ) -> "FlowBuilder":
        """Attach the click-stream source and its arrival-rate pattern."""
        self._pattern = pattern
        self._clickstream = clickstream
        return self

    def reads(
        self,
        pattern: RatePattern,
        read_units: int = 100,
        style: str | None = None,
        reference: float = DEFAULT_REFERENCE,
        period: int = 60,
    ) -> "FlowBuilder":
        """Attach a dashboard read workload against the storage layer.

        ``pattern`` gives read-capacity-units/second consumed by the
        demo's sliding-window dashboard. With ``style`` set, a fourth
        control loop manages the table's read capacity independently of
        its write capacity ("DynamoDB read/write units", Sec. 2).
        """
        self._read_pattern = pattern
        self._read_units = read_units
        if style is not None:
            # Read capacity behaves like the storage layer's write
            # dimension; reuse its calibration.
            controller = make_controller(style, LayerKind.STORAGE, reference)
            self._read_control = LayerControlConfig(
                controller=controller, period=period, window=period
            )
        return self

    # ------------------------------------------------------------------
    # Controllers (the configuration-wizard step)
    # ------------------------------------------------------------------
    def control(
        self,
        kind: LayerKind,
        controller: Controller | None = None,
        style: str = "adaptive",
        reference: float = DEFAULT_REFERENCE,
        period: int = 60,
        window: int | None = None,
        statistic: str = "Average",
    ) -> "FlowBuilder":
        """Attach a controller to one layer.

        Pass a ready :class:`Controller`, or let the wizard build one of
        the named styles (``adaptive``, ``fixed``, ``quasi``, ``rule``)
        with layer-calibrated defaults.
        """
        if controller is None:
            controller = make_controller(style, kind, reference)
        self._controls[kind] = LayerControlConfig(
            controller=controller,
            period=period,
            window=window if window is not None else period,
            statistic=statistic,
        )
        return self

    def control_all(
        self,
        style: str = "adaptive",
        reference: float = DEFAULT_REFERENCE,
        period: int = 60,
    ) -> "FlowBuilder":
        """Attach same-style controllers to all three layers."""
        for kind in LayerKind:
            self.control(kind, style=style, reference=reference, period=period)
        return self

    def uncontrolled(self, kind: LayerKind) -> "FlowBuilder":
        """Remove any controller from a layer (static provisioning)."""
        self._controls.pop(kind, None)
        return self

    def share_bounds(self, bounds) -> "FlowBuilder":
        """Cap each layer's controller at its resource share (Sec. 2).

        Accepts either a ``{LayerKind: max_units}`` mapping or a
        :class:`~repro.optimization.share_analyzer.ResourceShare` picked
        from the share analyzer's Pareto front, closing the loop between
        the Eq. 3–5 optimisation and the runtime controllers.
        """
        if hasattr(bounds, "as_dict"):
            bounds = bounds.as_dict()
        self._share_bounds = {kind: int(units) for kind, units in bounds.items()}
        return self

    def share_schedule(self, schedule) -> "FlowBuilder":
        """Follow a time-windowed :class:`ShareSchedule` at run time.

        The paper's arbitrary-time-window resource shares (Sec. 2): the
        bounds enforced on each controller switch as the simulation
        crosses window boundaries.
        """
        self._share_schedule = schedule
        return self

    # ------------------------------------------------------------------
    # Misc settings
    # ------------------------------------------------------------------
    def pricing(self, book: PriceBook) -> "FlowBuilder":
        self._price_book = book
        return self

    def tick(self, seconds: int) -> "FlowBuilder":
        """Simulation tick length (1 s default; coarser runs faster)."""
        self._tick_seconds = seconds
        return self

    def spans(self, enabled: bool = True) -> "FlowBuilder":
        """Enable or disable span-batched execution (on by default).

        With spans the engine fuses the quiet ticks between control
        boundaries into single batched calls — bit-identical to the
        per-tick reference loop, just faster. Disable to force the
        reference loop (e.g. for equivalence checks).
        """
        self._span_execution = enabled
        return self

    def exact(self, enabled: bool = True) -> "FlowBuilder":
        """Choose the workload path: bit-exact reference (default) or
        the block-vectorized approximate fast path.

        ``exact(False)`` swaps in the fast click-stream generator:
        statistically identical arrivals, payload bytes and distinct
        pages, drawn in numpy blocks instead of per-tick — several times
        faster, but *not* bit-comparable to exact runs. The flag is
        carried through the run result and scorecards, and mixed
        exact/fast scorecard comparisons raise. See the approximation
        contract in DESIGN.md.
        """
        self._exact = enabled
        return self

    def observe(
        self, profile: bool = False, recorder: FlightRecorder | None = None
    ) -> "FlowBuilder":
        """Attach a flight recorder to the flow.

        Every layer then publishes structured events to the recorder's
        bus, every control loop feeds its decision audit log, and — with
        ``profile`` — the engine times each component and task per tick.
        Pass an existing :class:`FlightRecorder` to share one across
        flows; otherwise a fresh one is created.
        """
        self._recorder = recorder if recorder is not None else FlightRecorder(profile=profile)
        return self

    def chaos(self, schedule) -> "FlowBuilder":
        """Inject a :class:`~repro.chaos.ChaosSchedule` into the run.

        The schedule's faults land deterministically (same schedule +
        seed, same run) across all three layers and the monitoring
        path; the run result then carries the applied
        :class:`~repro.chaos.injector.ChaosEvent` timeline.
        """
        self._chaos = schedule
        return self

    def telemetry(self, enabled: bool = True) -> "FlowBuilder":
        """Enable or disable the always-on telemetry registry (on by
        default). Counters, gauges and histograms are sampled only at
        control boundaries (<2% overhead); the run result's
        ``telemetry`` carries them, and scorecards and the dashboard's
        telemetry section read from it."""
        self._telemetry = enabled
        return self

    def invariants(self, enabled: bool = True) -> "FlowBuilder":
        """Enable or disable the always-on invariant checker (on by
        default). It audits conservation, capacity bounds and cost
        additivity at every tick or span boundary; the run result's
        ``invariants`` report summarises what it saw."""
        self._invariants = enabled
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> FlowElasticityManager:
        """Validate and assemble the elasticity manager."""
        if self._pattern is None:
            raise ConfigurationError(
                "no workload attached; call .workload(pattern) before .build()"
            )
        return FlowElasticityManager(
            workload=self._pattern,
            capacities=ServiceCapacities(
                shards=self._shards,
                vms=self._vms,
                write_units=self._write_units,
                read_units=self._read_units,
            ),
            controls=self._controls,
            flow=self._spec,
            price_book=self._price_book,
            seed=self._seed,
            tick_seconds=self._tick_seconds,
            share_bounds=self._share_bounds,
            share_schedule=self._share_schedule,
            read_workload=self._read_pattern,
            read_control=self._read_control,
            clickstream=self._clickstream,
            kinesis=self._kinesis,
            storm=self._storm,
            topology=self._topology,
            ec2=self._ec2,
            dynamodb=self._dynamodb,
            recorder=self._recorder,
            span_execution=self._span_execution,
            chaos=self._chaos,
            invariants=self._invariants,
            telemetry=self._telemetry,
            exact=self._exact,
        )

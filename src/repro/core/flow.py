"""The data analytics flow model.

A flow is the paper's three-layer pipeline: **ingestion** (e.g.
Kinesis), **analytics** (e.g. Storm on EC2), **storage** (e.g.
DynamoDB). Each layer names the cloud resource it scales (shards, VMs,
write-capacity units) so the share analyzer and the controllers can
talk about "the resource amount of layer L" exactly as Eq. 3–5 do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import ConfigurationError


class LayerKind(Enum):
    """The three layers of a data analytics flow (paper Sec. 1)."""

    INGESTION = "I"
    ANALYTICS = "A"
    STORAGE = "S"

    @property
    def code(self) -> str:
        """Single-letter code used in the paper's equations (I, A, S)."""
        return self.value


@dataclass(frozen=True)
class LayerSpec:
    """Description of one layer of a flow.

    Attributes
    ----------
    kind:
        Which of the three layers this is.
    platform:
        Human-readable platform name ("Amazon Kinesis", "Apache Storm").
    resource:
        Price-book key of the scalable resource ("kinesis.shard",
        "ec2.m4.large", "dynamodb.wcu").
    resource_label:
        Short label for dashboards/tables ("Shards", "VMs", "WCU").
    min_units / max_units:
        Hard service limits on the scalable resource.
    """

    kind: LayerKind
    platform: str
    resource: str
    resource_label: str
    min_units: int = 1
    max_units: int = 1000

    def __post_init__(self) -> None:
        if not self.platform:
            raise ConfigurationError("platform must be non-empty")
        if not self.resource:
            raise ConfigurationError("resource must be non-empty")
        if not 1 <= self.min_units <= self.max_units:
            raise ConfigurationError(
                f"layer {self.platform}: need 1 <= min_units <= max_units, "
                f"got {self.min_units}..{self.max_units}"
            )


@dataclass(frozen=True)
class FlowSpec:
    """An ordered ingestion → analytics → storage flow.

    The paper's model has exactly one layer of each kind; the spec
    enforces that, while the rest of the library only ever addresses
    layers through their :class:`LayerKind`.
    """

    name: str
    layers: tuple[LayerSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("flow name must be non-empty")
        kinds = [layer.kind for layer in self.layers]
        expected = [LayerKind.INGESTION, LayerKind.ANALYTICS, LayerKind.STORAGE]
        if kinds != expected:
            raise ConfigurationError(
                f"flow {self.name!r} must have exactly one ingestion, one "
                f"analytics and one storage layer in that order; got "
                f"{[k.name for k in kinds]}"
            )

    def layer(self, kind: LayerKind) -> LayerSpec:
        """The layer of the given kind (guaranteed to exist)."""
        for layer in self.layers:
            if layer.kind == kind:
                return layer
        raise ConfigurationError(f"flow {self.name!r} has no {kind.name} layer")

    @property
    def ingestion(self) -> LayerSpec:
        return self.layer(LayerKind.INGESTION)

    @property
    def analytics(self) -> LayerSpec:
        return self.layer(LayerKind.ANALYTICS)

    @property
    def storage(self) -> LayerSpec:
        return self.layer(LayerKind.STORAGE)


def clickstream_flow_spec(name: str = "click-stream-analytics") -> FlowSpec:
    """The paper's reference flow (Fig. 1): Kinesis → Storm → DynamoDB."""
    return FlowSpec(
        name=name,
        layers=(
            LayerSpec(LayerKind.INGESTION, "Amazon Kinesis", "kinesis.shard", "Shards",
                      min_units=1, max_units=512),
            LayerSpec(LayerKind.ANALYTICS, "Apache Storm", "ec2.m4.large", "VMs",
                      min_units=1, max_units=128),
            LayerSpec(LayerKind.STORAGE, "Amazon DynamoDB", "dynamodb.wcu", "WCU",
                      min_units=1, max_units=40000),
        ),
    )

"""Controller configuration: the programmatic "configuration wizard".

The demo's wizard asks for "resource name, desired reference value, and
monitoring period" per layer (Sec. 4, step 2); here that is a
:class:`LayerControlConfig` plus per-layer factory functions with
defaults calibrated to the simulated services' sensitivities.

Calibration reasoning (see DESIGN.md): for an integral loop on a
utilisation sensor the plant sensitivity near the operating point is
roughly ``-y/u`` (utilisation is inversely proportional to capacity),
so each layer's gain bounds are set to a safe fraction of the
``2/|b|`` stability limit at its typical operating point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.adaptive import AdaptiveGainConfig, AdaptiveGainController
from repro.control.base import Controller
from repro.control.fixed_gain import FixedGainConfig, FixedGainController
from repro.control.quasi_adaptive import QuasiAdaptiveConfig, QuasiAdaptiveController
from repro.control.rule_based import RuleBasedConfig, RuleBasedController
from repro.core.errors import ConfigurationError
from repro.core.flow import LayerKind

#: Default desired utilisation (the wizard's "desired reference value").
DEFAULT_REFERENCE = 60.0


@dataclass
class LayerControlConfig:
    """Binds a controller to one layer with its monitoring settings."""

    controller: Controller
    period: int = 60
    window: int = 60
    statistic: str = "Average"

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("period must be positive")
        if self.window <= 0:
            raise ConfigurationError("window must be positive")


#: Per-layer gain calibration: (gamma, l_min, l_max, memory bin width).
#: Derived from typical plant sensitivities: ~-30 %/shard (ingestion at
#: 2 shards), ~-20 %/VM (analytics at 3 VMs), ~-0.2 %/WCU (storage at
#: 300 WCU); l_max is ~half the 2/|b| stability limit.
_ADAPTIVE_CALIBRATION: dict[LayerKind, tuple[float, float, float, float]] = {
    LayerKind.INGESTION: (0.001, 0.002, 0.05, 10.0),
    LayerKind.ANALYTICS: (0.002, 0.005, 0.08, 10.0),
    LayerKind.STORAGE: (0.2, 0.5, 5.0, 10.0),
}


def default_adaptive_controller(
    kind: LayerKind,
    reference: float = DEFAULT_REFERENCE,
    use_memory: bool = True,
    deadband: float = 5.0,
) -> AdaptiveGainController:
    """Flower's Eq. 6–7 controller with layer-calibrated gain bounds."""
    gamma, l_min, l_max, bin_width = _ADAPTIVE_CALIBRATION[kind]
    return AdaptiveGainController(
        AdaptiveGainConfig(
            reference=reference,
            gamma=gamma,
            l_min=l_min,
            l_max=l_max,
            use_memory=use_memory,
            memory_bin_width=bin_width,
            deadband=deadband,
        )
    )


def default_fixed_gain_controller(
    kind: LayerKind, reference: float = DEFAULT_REFERENCE
) -> FixedGainController:
    """Baseline [12] with the gain fixed at the cautious end of the
    layer's stable range (the safe choice absent adaptation)."""
    _gamma, l_min, l_max, _bin = _ADAPTIVE_CALIBRATION[kind]
    gain = (l_min + l_max) / 8.0  # low fixed gain: stable everywhere
    return FixedGainController(
        FixedGainConfig(
            reference=reference,
            gain=gain,
            band_low=reference - 5.0,
            band_high=reference + 5.0,
        )
    )


def default_quasi_adaptive_controller(
    kind: LayerKind, reference: float = DEFAULT_REFERENCE
) -> QuasiAdaptiveController:
    """Baseline [14]: self-tuning gain from an online plant estimate."""
    _gamma, l_min, l_max, _bin = _ADAPTIVE_CALIBRATION[kind]
    initial_b = {
        LayerKind.INGESTION: 30.0,
        LayerKind.ANALYTICS: 20.0,
        LayerKind.STORAGE: 0.2,
    }[kind]
    return QuasiAdaptiveController(
        QuasiAdaptiveConfig(
            reference=reference,
            aggressiveness=0.6,
            initial_process_gain=initial_b,
            forgetting=0.3,
            l_min=l_min / 10.0,
            l_max=l_max,
        )
    )


def default_rule_based_controller(
    kind: LayerKind, reference: float = DEFAULT_REFERENCE
) -> RuleBasedController:
    """Baseline [1]: Amazon-style threshold rules with a cooldown."""
    step = {LayerKind.INGESTION: 1.0, LayerKind.ANALYTICS: 1.0, LayerKind.STORAGE: 50.0}[kind]
    return RuleBasedController(
        RuleBasedConfig(
            upper_threshold=reference + 15.0,
            lower_threshold=reference - 25.0,
            step_up=step,
            step_down=step,
            cooldown=300,
        )
    )


#: Factory registry keyed by the style names the builder exposes.
CONTROLLER_FACTORIES = {
    "adaptive": default_adaptive_controller,
    "fixed": default_fixed_gain_controller,
    "quasi": default_quasi_adaptive_controller,
    "rule": default_rule_based_controller,
}


def make_controller(style: str, kind: LayerKind, reference: float = DEFAULT_REFERENCE) -> Controller:
    """Instantiate a controller of the given style for one layer."""
    try:
        factory = CONTROLLER_FACTORIES[style]
    except KeyError:
        raise ConfigurationError(
            f"unknown controller style {style!r}; have {sorted(CONTROLLER_FACTORIES)}"
        ) from None
    return factory(kind, reference)

"""Multi-flow region fleets: shared limits, one engine, a coordinator.

One :class:`~repro.core.manager.FlowElasticityManager` runs one flow.
This module runs *N* of them against a single
:class:`~repro.cloud.region.RegionContext` — a shared EC2 pool and
account-level shard/throughput limits — on one shared simulation
engine, with a :class:`FleetCoordinator` arbitrating how much of the
account each flow's controllers may claim.

The arbitration model follows the paper's share architecture one level
up: the share analyzer grants each *layer* an upper bound inside one
flow's budget (Sec. 2); the coordinator grants each *flow* an upper
bound inside the region's account limits. The enforcement point is the
same :class:`~repro.control.bounded.BoundedActuator` — the coordinator
retargets each flow's per-layer caps at a slower cadence than the
per-flow control loops, so flows keep reacting at control speed while
the cross-flow contract moves slowly and predictably.

Determinism: the whole fleet shares one engine, so span-batched and
per-tick execution stay bit-identical per flow (every flow's capacity
events bound the shared spans); per-flow seeds are derived from the
fleet seed and the flow *name*, so adding or reordering flows does not
reshuffle the others' randomness; and a fleet run is a plain function
of its arguments, so ``analysis/runner.py`` parallelizes whole fleet
scenarios across processes with byte-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

from repro.analysis.runner import derive_scenario_seed
from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import InvariantChecker
from repro.chaos.schedule import ChaosSchedule
from repro.cloud.dynamodb import DynamoDBConfig
from repro.cloud.ec2 import EC2Config
from repro.cloud.kinesis import KinesisConfig
from repro.cloud.pricing import PriceBook
from repro.cloud.region import RegionContext, RegionLimits
from repro.cloud.storm import StormConfig
from repro.control.bounded import BoundedActuator
from repro.core.config import LayerControlConfig
from repro.core.errors import ConfigurationError
from repro.core.fleet_exec import FleetSpanExecutor
from repro.core.flow import LayerKind
from repro.core.manager import (
    FlowElasticityManager,
    FlowRunResult,
    ServiceCapacities,
    _FlowPipeline,
)
from repro.simulation.clock import SimClock
from repro.simulation.engine import SimulationEngine
from repro.workload.generators import RatePattern

#: Arbitrated layers, in decision order.
COORDINATED_LAYERS = (LayerKind.INGESTION, LayerKind.ANALYTICS, LayerKind.STORAGE)

#: Component phases for the shared engine's grouped ordering: every
#: flow's data pipeline must run before any flow's auditor, and every
#: auditor before any fault injector, so a fault injected at tick T
#: reaches all flows' data paths at T+1 in both execution modes.
_COMPONENT_PHASE = {_FlowPipeline: 0, InvariantChecker: 1, ChaosInjector: 2}


@dataclass(frozen=True)
class FleetFlowSpec:
    """One flow's definition inside a region fleet."""

    name: str
    workload: RatePattern
    capacities: ServiceCapacities | None = None
    controls: dict[LayerKind, LayerControlConfig] | None = None
    #: Initial per-layer caps (the coordinator retargets them at run
    #: time). Defaults to an equal split of the account limits.
    share_bounds: dict[LayerKind, int] | None = None
    chaos: ChaosSchedule | None = None
    kinesis: KinesisConfig | None = None
    storm: StormConfig | None = None
    ec2: EC2Config | None = None
    dynamodb: DynamoDBConfig | None = None
    #: Extra keyword arguments forwarded to FlowElasticityManager.
    manager_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fleet flow name must be non-empty")


@dataclass(frozen=True)
class CoordinationRecord:
    """One coordinator decision: the caps granted at ``time``."""

    time: int
    #: ``{flow_id: {layer: cap}}`` — the bounds in force after this pass.
    grants: dict[str, dict[LayerKind, int]]
    #: ``{flow_id: {layer: weight}}`` — the demand weights used.
    weights: dict[str, dict[LayerKind, float]]


class FleetCoordinator:
    """Arbitrates account headroom across flows at a slow cadence.

    Every ``period`` seconds the coordinator, for each arbitrated
    layer, splits the region's account limit across the flows in
    proportion to *demand weight* — the flow's committed usage plus the
    pressure its controllers showed since the last pass (share-bound
    clamps and failed actuation attempts, which is where region
    denials surface) — and retargets each flow's
    :class:`BoundedActuator` cap to its grant. Flows under pressure
    grow their grant; idle flows shrink toward their floor, returning
    headroom to the pool. Grants never drop below the layer's service
    minimum.

    The arithmetic is pure integer/float bookkeeping over committed
    state, so coordination is deterministic and identical between span
    and per-tick execution (it runs as an engine task, always at a
    span boundary).
    """

    def __init__(
        self,
        managers: dict[str, FlowElasticityManager],
        region: RegionContext,
        period: int = 300,
        pressure_gain: float = 2.0,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"coordinator period must be positive, got {period}")
        if pressure_gain < 0:
            raise ConfigurationError("pressure_gain must be non-negative")
        self.managers = managers
        self.region = region
        self.period = period
        self.pressure_gain = pressure_gain
        self.records: list[CoordinationRecord] = []
        #: Lifetime count of cap retargets that changed a bound.
        self.retargets = 0
        # Pressure counters are cumulative on the actuators; remember
        # the last reading to difference them per pass.
        self._last_pressure: dict[tuple[str, LayerKind], float] = {}

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def _bounded_actuator(self, manager: FlowElasticityManager, kind: LayerKind):
        loop = manager.loops.get(kind)
        if loop is None:
            return None
        actuator = loop.actuator
        return actuator if isinstance(actuator, BoundedActuator) else None

    def _usage(self, manager: FlowElasticityManager, kind: LayerKind, now: int) -> int:
        if kind is LayerKind.INGESTION:
            return manager.stream.committed_shards()
        if kind is LayerKind.ANALYTICS:
            return manager.fleet.provisioned_count(now)
        return manager.table.committed_write_units()

    def _floor(self, manager: FlowElasticityManager, kind: LayerKind) -> int:
        if kind is LayerKind.INGESTION:
            return manager.stream.config.min_shards
        if kind is LayerKind.ANALYTICS:
            return manager.fleet.config.min_instances
        return manager.table.config.min_write_units

    def _limit(self, kind: LayerKind) -> int:
        limits = self.region.limits
        if kind is LayerKind.INGESTION:
            return limits.max_total_shards
        if kind is LayerKind.ANALYTICS:
            return limits.max_instances
        return limits.max_total_write_units

    def _pressure(self, flow_id: str, manager: FlowElasticityManager, kind: LayerKind) -> float:
        """Pressure shown since the last pass: clamps + failed attempts."""
        actuator = self._bounded_actuator(manager, kind)
        if actuator is None:
            return 0.0
        cumulative = float(actuator.clamped_requests)
        inner = actuator.inner
        failed = getattr(inner, "failed_attempts", None)
        if failed is not None:
            cumulative += float(failed)
        key = (flow_id, kind)
        previous = self._last_pressure.get(key, 0.0)
        self._last_pressure[key] = cumulative
        return cumulative - previous

    # ------------------------------------------------------------------
    # The coordination pass (registered as a periodic engine task)
    # ------------------------------------------------------------------
    def coordinate(self, now: int) -> None:
        grants: dict[str, dict[LayerKind, int]] = {}
        weights: dict[str, dict[LayerKind, float]] = {}
        for kind in COORDINATED_LAYERS:
            flows = [
                (flow_id, manager, self._bounded_actuator(manager, kind))
                for flow_id, manager in self.managers.items()
            ]
            flows = [(fid, m, a) for fid, m, a in flows if a is not None]
            if not flows:
                continue
            limit = self._limit(kind)
            demand: list[float] = []
            floors: list[int] = []
            for flow_id, manager, _actuator in flows:
                usage = self._usage(manager, kind, now)
                pressure = self._pressure(flow_id, manager, kind)
                weight = float(usage) + self.pressure_gain * pressure + 1.0
                demand.append(weight)
                floors.append(self._floor(manager, kind))
                weights.setdefault(flow_id, {})[kind] = weight
            total = sum(demand)
            for (flow_id, manager, actuator), weight, floor in zip(flows, demand, floors):
                cap = max(floor, int(limit * weight / total))
                grants.setdefault(flow_id, {})[kind] = cap
                new_cap = float(cap)
                if actuator.cap != new_cap:
                    actuator.cap = new_cap
                    self.retargets += 1
                telemetry = manager.telemetry
                if telemetry is not None:
                    telemetry.set_gauge(f"fleet.bound.{kind.name.lower()}", new_cap)
        for manager in self.managers.values():
            if manager.telemetry is not None:
                manager.telemetry.inc("fleet.coordinations")
        self.records.append(CoordinationRecord(time=now, grants=grants, weights=weights))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def bound_trajectory(self, flow_id: str, kind: LayerKind) -> list[tuple[int, int]]:
        """``(time, cap)`` per pass for one flow and layer."""
        return [
            (record.time, record.grants[flow_id][kind])
            for record in self.records
            if flow_id in record.grants and kind in record.grants[flow_id]
        ]


@dataclass
class FleetRunResult:
    """Everything a finished region fleet run exposes."""

    duration_seconds: int
    flows: dict[str, FlowRunResult]
    region: RegionContext
    coordinator: FleetCoordinator | None
    wall_seconds: float = 0.0
    #: Whether every flow ran on the bit-exact workload path.
    exact: bool = True
    #: Per-flow wall-clock attribution from the engine's
    #: :class:`~repro.observability.profiler.TickProfiler` (batched
    #: executor only; empty when profiling is off). Informational —
    #: machine-dependent, never gated on.
    flow_wall_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return sum(result.total_cost for result in self.flows.values())

    @property
    def cost_by_flow(self) -> dict[str, float]:
        return {flow_id: result.total_cost for flow_id, result in self.flows.items()}

    def denials_by_flow(self) -> dict[str, dict[str, int]]:
        """Region admission denials per flow and resource."""
        return self.region.denials_by_flow()

    def scorecards(self) -> dict[str, "object"]:
        """Per-flow :class:`~repro.analysis.scorecard.RunScorecard`s."""
        from repro.analysis.scorecard import RunScorecard

        return {
            flow_id: RunScorecard.from_result(flow_id, result)
            for flow_id, result in self.flows.items()
        }

    def summary(self) -> str:
        """A compact per-flow digest of the fleet run."""
        lines = [
            f"region fleet: {len(self.flows)} flows, "
            f"{self.duration_seconds}s simulated, "
            f"${self.total_cost:.2f} total"
        ]
        denials = self.denials_by_flow()
        for flow_id, result in self.flows.items():
            violations = (
                result.invariants.total_violations if result.invariants is not None else 0
            )
            flow_denials = sum(denials.get(flow_id, {}).values())
            lines.append(
                f"  {flow_id}: ${result.total_cost:.2f}, "
                f"drops={result.dropped_records + result.dropped_writes}, "
                f"denials={flow_denials}, violations={violations}"
            )
        if self.coordinator is not None:
            lines.append(
                f"  coordinator: {len(self.coordinator.records)} passes, "
                f"{self.coordinator.retargets} cap retargets"
            )
        return "\n".join(lines)


class RegionFleetManager:
    """Builds and runs N managed flows against one shared region."""

    def __init__(
        self,
        flows: list[FleetFlowSpec],
        limits: RegionLimits | None = None,
        seed: int = 0,
        tick_seconds: int = 1,
        snapshot_period: int = 60,
        span_execution: bool = True,
        batch_execution: bool = True,
        coordinate_period: int | None = 300,
        pressure_gain: float = 2.0,
        price_book: PriceBook | None = None,
        telemetry: bool = True,
        invariants: bool = True,
        exact: bool = True,
    ) -> None:
        if not flows:
            raise ConfigurationError("a region fleet needs at least one flow")
        names = [spec.name for spec in flows]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"fleet flow names must be unique, got {names}")
        # Controllers are stateful (adaptive gain memory, cooldowns); a
        # controller instance shared between two flows would couple them
        # silently. Require per-flow instances.
        seen_controllers: dict[int, str] = {}
        for spec in flows:
            for kind, config in (spec.controls or {}).items():
                owner = seen_controllers.setdefault(id(config.controller), spec.name)
                if owner != spec.name:
                    raise ConfigurationError(
                        f"flows {owner!r} and {spec.name!r} share a controller "
                        f"instance for {kind.name}; controllers are stateful — "
                        "build one per flow"
                    )
        self.seed = seed
        #: Workload-path exactness, applied to every flow uniformly (a
        #: fleet mixing exact and fast flows would produce a result
        #: that is neither comparable to exact baselines nor honestly
        #: flagged as approximate).
        self.exact = bool(exact)
        self.region = RegionContext(limits=limits)
        self.engine = SimulationEngine(
            clock=SimClock(tick_seconds=tick_seconds), span_execution=span_execution
        )
        self.managers: dict[str, FlowElasticityManager] = {}
        for spec in flows:
            if "exact" in spec.manager_kwargs:
                raise ConfigurationError(
                    f"flow {spec.name!r} sets exact= in manager_kwargs; "
                    "workload exactness is a fleet-level choice — pass "
                    "exact= to RegionFleetManager instead"
                )
            # Name-derived seeds: adding/removing/reordering flows never
            # reshuffles the randomness of the others (the same contract
            # the scenario runner gives sweeps).
            flow_seed = derive_scenario_seed(seed, spec.name)
            share_bounds = (
                dict(spec.share_bounds)
                if spec.share_bounds is not None
                else self._default_share_bounds(spec, len(flows))
            )
            self.managers[spec.name] = FlowElasticityManager(
                workload=spec.workload,
                capacities=spec.capacities,
                controls=spec.controls,
                price_book=price_book,
                seed=flow_seed,
                snapshot_period=snapshot_period,
                share_bounds=share_bounds,
                chaos=spec.chaos,
                kinesis=spec.kinesis,
                storm=spec.storm,
                ec2=spec.ec2,
                dynamodb=spec.dynamodb,
                telemetry=telemetry,
                invariants=invariants,
                engine=self.engine,
                region=self.region,
                flow_id=spec.name,
                coordinated=coordinate_period is not None,
                exact=self.exact,
                **spec.manager_kwargs,
            )
        # Group components by phase (pipelines, auditors, injectors) so
        # cross-flow fault visibility is identical in span and per-tick
        # execution; the stable sort keeps each flow's internal order.
        self.engine.sort_components(
            lambda component: _COMPONENT_PHASE.get(type(component), 3)
        )
        #: Whether the N flow pipelines were collapsed into one
        #: :class:`FleetSpanExecutor` (span mode only — per-tick runs
        #: keep the sequential pipelines as the reference path).
        self.batch_execution = bool(batch_execution) and span_execution
        if self.batch_execution:
            executor = FleetSpanExecutor(
                [(spec.name, self.managers[spec.name]._pipeline) for spec in flows],
                engine=self.engine,
                checkers={
                    spec.name: checker
                    for spec in flows
                    if (checker := self.managers[spec.name].invariant_checker)
                    is not None
                },
            )
            self.engine.replace_components(
                [executor]
                + [
                    component
                    for component in self.engine._components
                    if not isinstance(component, _FlowPipeline)
                ]
            )
        self.coordinator: FleetCoordinator | None = None
        if coordinate_period is not None:
            self.coordinator = FleetCoordinator(
                self.managers,
                self.region,
                period=coordinate_period,
                pressure_gain=pressure_gain,
            )
            # Registered last: at coincident boundaries the coordinator
            # observes the flows' post-actuation state.
            self.engine.every(
                coordinate_period, self.coordinator.coordinate, name="fleet.coordinator"
            )

    def _default_share_bounds(
        self, spec: FleetFlowSpec, n_flows: int
    ) -> dict[LayerKind, int]:
        """Equal split of the account limits, floored at the flow's
        initial capacities (the starting state must be inside its own
        grant)."""
        limits = self.region.limits
        capacities = spec.capacities or ServiceCapacities()
        return {
            LayerKind.INGESTION: max(
                capacities.shards, limits.max_total_shards // n_flows
            ),
            LayerKind.ANALYTICS: max(capacities.vms, limits.max_instances // n_flows),
            LayerKind.STORAGE: max(
                capacities.write_units, limits.max_total_write_units // n_flows
            ),
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_seconds: int) -> FleetRunResult:
        """Advance the shared engine; collect every flow's result."""
        started = perf_counter()
        self.engine.run(duration_seconds)
        wall_seconds = perf_counter() - started
        if self.batch_execution:
            # Batched spans buffer metric columns in the store; results
            # must read a fully-materialised series set.
            for manager in self.managers.values():
                manager.cloudwatch.flush_pending()
        return FleetRunResult(
            duration_seconds=self.engine.clock.now,
            flows={
                flow_id: manager._build_result()
                for flow_id, manager in self.managers.items()
            },
            region=self.region,
            coordinator=self.coordinator,
            wall_seconds=wall_seconds,
            exact=self.exact,
            flow_wall_seconds=(
                dict(self.engine.profiler.flow_seconds)
                if self.engine.profiler is not None
                else {}
            ),
        )


# ----------------------------------------------------------------------
# Process-parallel fleet sweeps
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetScenarioSpec:
    """One picklable fleet-sweep case: a whole region fleet run.

    Everything :func:`run_fleet_scenario` needs to build and run a
    :class:`RegionFleetManager` and score it. The spec must stay
    picklable (its flows, chaos schedules and controllers are), because
    :func:`sweep_fleet_scenarios` ships specs to worker processes.
    """

    name: str
    flows: tuple[FleetFlowSpec, ...]
    limits: RegionLimits | None = None
    duration: int = 7200
    tick_seconds: int = 1
    snapshot_period: int = 60
    span_execution: bool = True
    batch_execution: bool = True
    coordinate_period: int | None = 300
    pressure_gain: float = 2.0
    exact: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fleet scenario name must be non-empty")
        if self.duration <= 0:
            raise ConfigurationError("fleet scenario duration must be positive")
        # Tuples keep the frozen spec hashable-by-structure and stop
        # callers mutating a shared flow list between sweep cases.
        object.__setattr__(self, "flows", tuple(self.flows))


def run_fleet_scenario(spec: FleetScenarioSpec, seed: int):
    """Run one fleet scenario; return its pickle-stable scorecard.

    Module-level on purpose: sweep workers pickle this function by
    reference. The spec is deep-copied before the fleet is built, so
    in-process (``jobs=1``) execution gets the same fresh controller
    and chaos state a worker gets from pickling — without the copy, a
    serial sweep would mutate the caller's controllers and diverge
    from the parallel run on the second use of a spec.
    """
    from copy import deepcopy

    from repro.analysis.scorecard import FleetScorecard

    spec = deepcopy(spec)
    fleet = RegionFleetManager(
        list(spec.flows),
        limits=spec.limits,
        seed=seed,
        tick_seconds=spec.tick_seconds,
        snapshot_period=spec.snapshot_period,
        span_execution=spec.span_execution,
        batch_execution=spec.batch_execution,
        coordinate_period=spec.coordinate_period,
        pressure_gain=spec.pressure_gain,
        exact=spec.exact,
    )
    result = fleet.run(spec.duration)
    return FleetScorecard.from_fleet_result(spec.name, result, seed=seed)


def sweep_fleet_scenarios(
    specs: "Sequence[FleetScenarioSpec]", base_seed: int = 0, jobs: int = 1
):
    """Run many fleet scenarios, optionally across worker processes.

    The process-parallel counterpart of :meth:`RegionFleetManager.run`
    for policy sweeps: each scenario is a whole fleet run with a seed
    derived from ``base_seed`` and the scenario *name* (the scenario
    runner's contract), fanned over the runner's pinned-context pool.
    Returns ``{name: FleetScorecard}`` in submission order; any
    ``jobs`` value yields byte-identical scorecards.
    """
    from repro.analysis.runner import Scenario, run_scenarios_dict

    scenarios = [
        Scenario(
            name=spec.name,
            fn=run_fleet_scenario,
            kwargs=dict(spec=spec, seed=derive_scenario_seed(base_seed, spec.name)),
        )
        for spec in specs
    ]
    return run_scenarios_dict(scenarios, jobs=jobs)

"""The flow elasticity manager: Flower's run loop.

Wires everything together the way Fig. 3 describes: the workload
generator feeds the ingestion layer, the analytics layer pulls from it
and emits aggregates to the storage layer; every service pushes its
measurements to the simulated CloudWatch; per-layer control loops read
their sensor through a monitoring window and command their actuator;
the cross-platform collector snapshots the whole flow; cost meters
integrate spend per resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.cloudwatch import SimCloudWatch
from repro.cloud.dynamodb import DynamoDBConfig, SimDynamoDBTable
from repro.cloud.dynamodb import NAMESPACE as DDB_NS
from repro.cloud.ec2 import EC2Config, SimEC2Fleet
from repro.cloud.kinesis import KinesisConfig, SimKinesisStream
from repro.cloud.kinesis import NAMESPACE as KINESIS_NS
from repro.cloud.pricing import CostMeter, PriceBook
from repro.cloud.storm import NAMESPACE as STORM_NS
from repro.cloud.storm import SimStormCluster, StormConfig, TopologyConfig
from repro.control.actuators import (
    DynamoDBReadActuator,
    DynamoDBWriteActuator,
    KinesisShardActuator,
    StormVMActuator,
)
from repro.control.base import ControlLoop
from repro.control.bounded import BoundedActuator
from repro.control.sensors import CloudWatchSensor
from repro.core.config import LayerControlConfig
from repro.core.errors import ConfigurationError
from repro.core.flow import FlowSpec, LayerKind, clickstream_flow_spec
from repro.monitoring.collector import MetricCollector
from repro.monitoring.dashboard import Dashboard
from repro.observability.recorder import FlightRecorder
from repro.simulation.clock import SimClock
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import derive_rng
from repro.workload.clickstream import ClickStreamConfig, ClickStreamGenerator
from repro.workload.generators import RateGrid, RatePattern
from repro.workload.traces import Trace

#: Per-layer controlled variable: (namespace, metric).
LAYER_SENSE: dict[LayerKind, tuple[str, str]] = {
    LayerKind.INGESTION: (KINESIS_NS, "WriteUtilization"),
    LayerKind.ANALYTICS: (STORM_NS, "CPUUtilization"),
    LayerKind.STORAGE: (DDB_NS, "WriteUtilization"),
}

#: Per-layer capacity metric: (namespace, metric).
LAYER_CAPACITY: dict[LayerKind, tuple[str, str]] = {
    LayerKind.INGESTION: (KINESIS_NS, "ShardCount"),
    LayerKind.ANALYTICS: (STORM_NS, "ProvisionedVMs"),
    LayerKind.STORAGE: (DDB_NS, "ProvisionedWriteCapacityUnits"),
}

#: Per-layer overload signal: (namespace, metric) — summed per period.
LAYER_THROTTLE: dict[LayerKind, tuple[str, str]] = {
    LayerKind.INGESTION: (KINESIS_NS, "WriteProvisionedThroughputExceeded"),
    LayerKind.ANALYTICS: (STORM_NS, "PendingTuples"),
    LayerKind.STORAGE: (DDB_NS, "WriteThrottleEvents"),
}


@dataclass(frozen=True)
class ServiceCapacities:
    """Initial provisioning of the three layers."""

    shards: int = 2
    vms: int = 2
    write_units: int = 300
    read_units: int = 100

    def __post_init__(self) -> None:
        if self.shards < 1 or self.vms < 1 or self.write_units < 1 or self.read_units < 1:
            raise ConfigurationError("all initial capacities must be >= 1")


class _FlowPipeline:
    """The per-tick data path: generator → Kinesis → Storm → DynamoDB."""

    #: Bound on producer/write retry backlogs; beyond it data is dropped
    #: (a real producer's buffer is finite too) and counted.
    MAX_BACKLOG = 5_000_000

    def __init__(
        self,
        generator: ClickStreamGenerator,
        stream: SimKinesisStream,
        cluster: SimStormCluster,
        table: SimDynamoDBTable,
        cloudwatch: SimCloudWatch,
        cost_meters: dict[str, CostMeter],
        read_workload: RatePattern | None = None,
        read_rng=None,
    ) -> None:
        self.generator = generator
        self.stream = stream
        self.cluster = cluster
        self.table = table
        self.cloudwatch = cloudwatch
        self.cost_meters = cost_meters
        self.read_workload = read_workload
        self._read_grid: RateGrid | None = None
        self._read_rng = read_rng
        self._producer_backlog_records = 0
        self._producer_backlog_bytes = 0
        self._write_backlog = 0
        self.dropped_records = 0
        self.dropped_writes = 0

    def on_tick(self, clock: SimClock) -> None:
        now = clock.now
        # 1. Generate this tick's clicks; retry what was throttled
        #    before. Retries are paced like a real producer library's
        #    bounded buffer: at most two capacity-windows of backlog are
        #    re-offered per tick, so the throttle metric counts paced
        #    attempts rather than the whole outstanding buffer.
        batch = self.generator.generate(clock)
        capacity = self.stream.write_capacity_records(now) * clock.tick_seconds
        retry_records = min(self._producer_backlog_records, 2 * capacity)
        if self._producer_backlog_records:
            retry_bytes = int(
                self._producer_backlog_bytes * retry_records / self._producer_backlog_records
            )
        else:
            retry_bytes = 0
        result = self.stream.put_records(
            batch.records + retry_records, batch.payload_bytes + retry_bytes, clock
        )
        backlog_records = self._producer_backlog_records - retry_records + result.throttled_records
        backlog_bytes = self._producer_backlog_bytes - retry_bytes + result.throttled_bytes
        if backlog_records > self.MAX_BACKLOG:
            self.dropped_records += backlog_records - self.MAX_BACKLOG
            backlog_bytes = int(backlog_bytes * self.MAX_BACKLOG / backlog_records)
            backlog_records = self.MAX_BACKLOG
        self._producer_backlog_records = backlog_records
        self._producer_backlog_bytes = backlog_bytes

        # 2. Analytics pulls, processes, emits windowed aggregates.
        writes = self.cluster.pull_and_process(self.stream, batch.distinct_keys, clock)

        # 3. Storage absorbs the writes; throttled writes are retried,
        #    paced the same way as producer retries.
        write_capacity = self.table.write_capacity(now) * clock.tick_seconds
        retry_writes = min(self._write_backlog, 2 * write_capacity)
        write_result = self.table.write(writes + retry_writes, clock)
        backlog = self._write_backlog - retry_writes + write_result.throttled_units
        if backlog > self.MAX_BACKLOG:
            self.dropped_writes += backlog - self.MAX_BACKLOG
            backlog = self.MAX_BACKLOG
        self._write_backlog = backlog

        # 3b. Dashboard readers query the aggregates (read units); the
        #     demo's reference architecture is a "real-time sliding-
        #     window dashboard over streaming data". Reads that throttle
        #     are lost page views, not retried.
        if self.read_workload is not None:
            # Batched like the click generator: read rates come from a
            # chunked grid, not a rate() call per tick (bit-identical by
            # the values() contract).
            grid = self._read_grid
            if grid is None or grid.step != clock.tick_seconds:
                grid = self._read_grid = RateGrid(self.read_workload, clock.tick_seconds)
            expected = grid.rate_at(now) * clock.tick_seconds
            read_units = int(self._read_rng.poisson(expected)) if expected > 0 else 0
            self.table.read(read_units, clock)

        # 4. Every service reports to CloudWatch.
        self.stream.emit_metrics(self.cloudwatch, clock)
        self.cluster.emit_metrics(self.cloudwatch, clock)
        self.table.emit_metrics(self.cloudwatch, clock)

        # 5. Meter this tick's spend. Kinesis has two cost dimensions
        #    (Eq. 4's c_d): shard-hours and PUT payload units (one unit
        #    per click record at the configured record sizes).
        dt = clock.tick_seconds
        self.cost_meters["ingestion"].accrue(self.stream.shard_count(now), dt)
        self.cost_meters["ingestion"].record_usage(result.accepted_records)
        self.cost_meters["analytics"].accrue(self.cluster.fleet.billable_count(now), dt)
        self.cost_meters["storage"].accrue(self.table.write_capacity(now), dt)
        self.cost_meters["storage_reads"].accrue(self.table.read_capacity(now), dt)


@dataclass
class FlowRunResult:
    """Everything a finished run exposes for analysis and reporting."""

    duration_seconds: int
    flow: FlowSpec
    cloudwatch: SimCloudWatch
    collector: MetricCollector
    loops: dict[LayerKind, ControlLoop]
    cost_meters: dict[str, CostMeter]
    dropped_records: int
    dropped_writes: int
    sample_period: int = 60
    layer_dimensions: dict[LayerKind, dict[str, str]] = field(default_factory=dict)
    read_loop: ControlLoop | None = None
    recorder: FlightRecorder | None = None

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def trace(
        self,
        namespace: str,
        metric: str,
        period: int | None = None,
        statistic: str = "Average",
        dimensions: dict[str, str] | None = None,
    ) -> Trace:
        """A metric aggregated to ``period`` (default: the sample period)."""
        period = period or self.sample_period
        datapoints = self.cloudwatch.get_metric_statistics(
            namespace, metric, 0, self.duration_seconds, period, statistic, dimensions
        )
        return Trace.from_series(f"{namespace}/{metric}", *zip(*datapoints)) if datapoints else Trace(metric)

    def utilization_trace(self, kind: LayerKind, period: int | None = None) -> Trace:
        namespace, metric = LAYER_SENSE[kind]
        return self.trace(namespace, metric, period, dimensions=self.layer_dimensions.get(kind))

    def capacity_trace(self, kind: LayerKind, period: int | None = None) -> Trace:
        namespace, metric = LAYER_CAPACITY[kind]
        return self.trace(namespace, metric, period, dimensions=self.layer_dimensions.get(kind))

    def throttle_trace(self, kind: LayerKind, period: int | None = None) -> Trace:
        namespace, metric = LAYER_THROTTLE[kind]
        statistic = "Average" if kind == LayerKind.ANALYTICS else "Sum"
        return self.trace(namespace, metric, period, statistic, self.layer_dimensions.get(kind))

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    @property
    def cost_by_layer(self) -> dict[str, float]:
        return {name: meter.total_cost for name, meter in self.cost_meters.items()}

    @property
    def total_cost(self) -> float:
        return sum(self.cost_by_layer.values())

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def dashboard(self) -> str:
        """Render the all-in-one-place view of the finished run."""
        return Dashboard(
            self.collector, title=f"Flower — {self.flow.name}", recorder=self.recorder
        ).render()


class FlowElasticityManager:
    """Builds and runs one managed data analytics flow."""

    def __init__(
        self,
        workload: RatePattern,
        capacities: ServiceCapacities | None = None,
        controls: dict[LayerKind, LayerControlConfig] | None = None,
        flow: FlowSpec | None = None,
        price_book: PriceBook | None = None,
        seed: int = 0,
        tick_seconds: int = 1,
        snapshot_period: int = 60,
        share_bounds: dict[LayerKind, int] | None = None,
        share_schedule=None,
        read_workload: RatePattern | None = None,
        read_control: LayerControlConfig | None = None,
        clickstream: ClickStreamConfig | None = None,
        kinesis: KinesisConfig | None = None,
        storm: StormConfig | None = None,
        topology: "TopologyConfig | None" = None,
        ec2: EC2Config | None = None,
        dynamodb: DynamoDBConfig | None = None,
        recorder: FlightRecorder | None = None,
    ) -> None:
        self.flow = flow or clickstream_flow_spec()
        self.capacities = capacities or ServiceCapacities()
        self.controls = dict(controls or {})
        self.share_bounds = dict(share_bounds or {})
        for kind, bound in self.share_bounds.items():
            if bound < 1:
                raise ConfigurationError(
                    f"share bound for {kind.name} must be >= 1, got {bound}"
                )
        self.share_schedule = share_schedule
        if share_schedule is not None and self.share_bounds:
            raise ConfigurationError(
                "pass either static share_bounds or a share_schedule, not both"
            )
        if share_schedule is not None:
            # The schedule's first window seeds the static bounds; a
            # periodic task keeps them tracking the active window.
            self.share_bounds = dict(share_schedule.bounds_at(0))
        self.price_book = price_book or PriceBook()
        self.seed = seed
        self.snapshot_period = snapshot_period

        self.cloudwatch = SimCloudWatch()
        self.stream = SimKinesisStream(shards=self.capacities.shards, config=kinesis)
        self.fleet = SimEC2Fleet(
            config=ec2 or EC2Config(instance_type=self.flow.analytics.resource),
            initial_instances=self.capacities.vms,
        )
        self.table = SimDynamoDBTable(
            write_units=self.capacities.write_units,
            read_units=self.capacities.read_units,
            config=dynamodb,
        )
        self.generator = ClickStreamGenerator(
            workload, rng=derive_rng(seed, "clickstream"), config=clickstream
        )
        self.cluster = SimStormCluster(
            self.fleet,
            config=storm,
            rng=derive_rng(seed, "storm.cpu"),
            distinct_estimator=self.generator.expected_distinct,
            topology=topology,
        )

        self.cost_meters = {
            "ingestion": CostMeter(self.price_book, self.flow.ingestion.resource),
            "analytics": CostMeter(self.price_book, self.flow.analytics.resource),
            "storage": CostMeter(self.price_book, self.flow.storage.resource),
            "storage_reads": CostMeter(self.price_book, "dynamodb.rcu"),
        }

        # Flight recorder: everything downstream is opt-in — services
        # publish to the bus, loops feed the decision audit log, and the
        # engine runs its profiled loop — only when a recorder is given.
        self.recorder = recorder
        if recorder is not None:
            self.stream.attach_bus(recorder.bus, "ingestion")
            self.cluster.attach_bus(recorder.bus, "analytics")
            self.table.attach_bus(recorder.bus, "storage")

        self.engine = SimulationEngine(clock=SimClock(tick_seconds=tick_seconds))
        if recorder is not None:
            self.engine.profiler = recorder.profiler
        self._pipeline = _FlowPipeline(
            self.generator,
            self.stream,
            self.cluster,
            self.table,
            self.cloudwatch,
            self.cost_meters,
            read_workload=read_workload,
            read_rng=derive_rng(seed, "dashboard.reads"),
        )
        self.engine.add_component(self._pipeline)

        self.read_loop: ControlLoop | None = None
        if read_control is not None:
            if read_workload is None:
                raise ConfigurationError(
                    "read_control requires a read_workload to control against"
                )
            read_actuator = DynamoDBReadActuator(self.table)
            if self.recorder is not None:
                read_actuator.instrument(self.recorder.bus, "storage")
            self.read_loop = ControlLoop(
                name="storage-reads",
                sensor=CloudWatchSensor(
                    self.cloudwatch,
                    DDB_NS,
                    "ReadUtilization",
                    window=read_control.window,
                    statistic=read_control.statistic,
                    dimensions=self._dimensions_for(LayerKind.STORAGE),
                ),
                controller=read_control.controller,
                actuator=read_actuator,
                period=read_control.period,
                decision_log=self.recorder.decisions if self.recorder else None,
                event_bus=self.recorder.bus if self.recorder else None,
            )
            self.engine.every(self.read_loop.period, self.read_loop.step, name="control.reads")

        self.loops = self._build_loops()
        for kind, loop in self.loops.items():
            self.engine.every(loop.period, loop.step, name=f"control.{kind.name.lower()}")
        if self.share_schedule is not None and self.loops:
            self.engine.every(
                snapshot_period, self._apply_scheduled_bounds, name="share-schedule"
            )

        self.collector = self._build_collector()
        self.engine.every(snapshot_period, self.collector.collect, name="snapshots")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _build_loops(self) -> dict[LayerKind, ControlLoop]:
        actuators = {
            LayerKind.INGESTION: lambda: KinesisShardActuator(self.stream),
            LayerKind.ANALYTICS: lambda: StormVMActuator(self.fleet),
            LayerKind.STORAGE: lambda: DynamoDBWriteActuator(self.table),
        }
        loops: dict[LayerKind, ControlLoop] = {}
        for kind, config in self.controls.items():
            namespace, metric = LAYER_SENSE[kind]
            sensor = CloudWatchSensor(
                self.cloudwatch,
                namespace,
                metric,
                window=config.window,
                statistic=config.statistic,
                dimensions=self._dimensions_for(kind),
            )
            actuator = actuators[kind]()
            if kind in self.share_bounds:
                # Sec. 2: controllers act freely *within* the layer's
                # resource share from the share analyzer, never beyond.
                actuator = BoundedActuator(actuator, cap=self.share_bounds[kind])
            if self.recorder is not None:
                actuator.instrument(self.recorder.bus, kind.name.lower())
            loops[kind] = ControlLoop(
                name=kind.name.lower(),
                sensor=sensor,
                controller=config.controller,
                actuator=actuator,
                period=config.period,
                decision_log=self.recorder.decisions if self.recorder else None,
                event_bus=self.recorder.bus if self.recorder else None,
            )
        return loops

    def _apply_scheduled_bounds(self, now: int) -> None:
        """Track the share schedule: retarget every bounded actuator to
        the window in force at ``now`` (Sec. 2's arbitrary-time-window
        resource shares)."""
        bounds = self.share_schedule.bounds_at(now)
        for kind, loop in self.loops.items():
            actuator = loop.actuator
            if isinstance(actuator, BoundedActuator) and kind in bounds:
                actuator.cap = float(bounds[kind])

    def _dimensions_for(self, kind: LayerKind) -> dict[str, str]:
        return {
            LayerKind.INGESTION: {"StreamName": self.stream.name},
            LayerKind.ANALYTICS: {"Topology": self.cluster.name},
            LayerKind.STORAGE: {"TableName": self.table.name},
        }[kind]

    def _build_collector(self) -> MetricCollector:
        collector = MetricCollector(self.cloudwatch, window=self.snapshot_period)
        # Registered explicitly rather than via a loop over opaque tuples,
        # so the dashboard labels read like the demo's consolidated view.
        collector.add_metric(
            "ingestion.records", KINESIS_NS, "IncomingRecords", "Sum",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "ingestion.shards", KINESIS_NS, "ShardCount", "Average",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "ingestion.util%", KINESIS_NS, "WriteUtilization", "Average",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "ingestion.throttled", KINESIS_NS, "WriteProvisionedThroughputExceeded", "Sum",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "ingestion.lag_ms", KINESIS_NS, "MillisBehindLatest", "Maximum",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "analytics.cpu%", STORM_NS, "CPUUtilization", "Average",
            self._dimensions_for(LayerKind.ANALYTICS),
        )
        collector.add_metric(
            "analytics.vms", STORM_NS, "ProvisionedVMs", "Average",
            self._dimensions_for(LayerKind.ANALYTICS),
        )
        collector.add_metric(
            "analytics.pending", STORM_NS, "PendingTuples", "Average",
            self._dimensions_for(LayerKind.ANALYTICS),
        )
        collector.add_metric(
            "storage.wcu", DDB_NS, "ProvisionedWriteCapacityUnits", "Average",
            self._dimensions_for(LayerKind.STORAGE),
        )
        collector.add_metric(
            "storage.util%", DDB_NS, "WriteUtilization", "Average",
            self._dimensions_for(LayerKind.STORAGE),
        )
        collector.add_metric(
            "storage.throttled", DDB_NS, "WriteThrottleEvents", "Sum",
            self._dimensions_for(LayerKind.STORAGE),
        )
        return collector

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_seconds: int) -> FlowRunResult:
        """Advance the simulation and return the analysed result."""
        self.engine.run(duration_seconds)
        return FlowRunResult(
            duration_seconds=self.engine.clock.now,
            flow=self.flow,
            cloudwatch=self.cloudwatch,
            collector=self.collector,
            loops=self.loops,
            cost_meters=self.cost_meters,
            dropped_records=self._pipeline.dropped_records,
            dropped_writes=self._pipeline.dropped_writes,
            sample_period=self.snapshot_period,
            layer_dimensions={kind: self._dimensions_for(kind) for kind in LayerKind},
            read_loop=self.read_loop,
            recorder=self.recorder,
        )

"""The flow elasticity manager: Flower's run loop.

Wires everything together the way Fig. 3 describes: the workload
generator feeds the ingestion layer, the analytics layer pulls from it
and emits aggregates to the storage layer; every service pushes its
measurements to the simulated CloudWatch; per-layer control loops read
their sensor through a monitoring window and command their actuator;
the cross-platform collector snapshots the whole flow; cost meters
integrate spend per resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.chaos.injector import ChaosEvent, ChaosInjector
from repro.chaos.invariants import InvariantChecker, InvariantReport
from repro.chaos.schedule import ChaosSchedule
from repro.cloud.cloudwatch import SimCloudWatch
from repro.cloud.dynamodb import DynamoDBConfig, SimDynamoDBTable
from repro.cloud.dynamodb import NAMESPACE as DDB_NS
from repro.cloud.ec2 import EC2Config, SimEC2Fleet
from repro.cloud.kinesis import KinesisConfig, SimKinesisStream
from repro.cloud.kinesis import NAMESPACE as KINESIS_NS
from repro.cloud.pricing import CostMeter, PriceBook
from repro.cloud.storm import NAMESPACE as STORM_NS
from repro.cloud.storm import SimStormCluster, StormConfig, TopologyConfig
from repro.control.actuators import (
    DynamoDBReadActuator,
    DynamoDBWriteActuator,
    KinesisShardActuator,
    RetryingActuator,
    StormVMActuator,
)
from repro.control.base import ControlLoop
from repro.control.bounded import BoundedActuator
from repro.control.sensors import CloudWatchSensor
from repro.core.config import LayerControlConfig
from repro.core.errors import ConfigurationError
from repro.core.flow import FlowSpec, LayerKind, clickstream_flow_spec
from repro.monitoring.collector import MetricCollector
from repro.monitoring.dashboard import Dashboard
from repro.observability.recorder import FlightRecorder
from repro.observability.telemetry import Telemetry
from repro.simulation.clock import SimClock
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import derive_rng
from repro.workload.clickstream import (
    ClickStreamConfig,
    ClickStreamGenerator,
    FastClickStreamGenerator,
)
from repro.workload.generators import RateGrid, RatePattern
from repro.workload.traces import Trace

#: Per-layer controlled variable: (namespace, metric).
LAYER_SENSE: dict[LayerKind, tuple[str, str]] = {
    LayerKind.INGESTION: (KINESIS_NS, "WriteUtilization"),
    LayerKind.ANALYTICS: (STORM_NS, "CPUUtilization"),
    LayerKind.STORAGE: (DDB_NS, "WriteUtilization"),
}

#: Per-layer capacity metric: (namespace, metric).
LAYER_CAPACITY: dict[LayerKind, tuple[str, str]] = {
    LayerKind.INGESTION: (KINESIS_NS, "ShardCount"),
    LayerKind.ANALYTICS: (STORM_NS, "ProvisionedVMs"),
    LayerKind.STORAGE: (DDB_NS, "ProvisionedWriteCapacityUnits"),
}

#: Per-layer overload signal: (namespace, metric) — summed per period.
LAYER_THROTTLE: dict[LayerKind, tuple[str, str]] = {
    LayerKind.INGESTION: (KINESIS_NS, "WriteProvisionedThroughputExceeded"),
    LayerKind.ANALYTICS: (STORM_NS, "PendingTuples"),
    LayerKind.STORAGE: (DDB_NS, "WriteThrottleEvents"),
}


@dataclass(frozen=True)
class ServiceCapacities:
    """Initial provisioning of the three layers."""

    shards: int = 2
    vms: int = 2
    write_units: int = 300
    read_units: int = 100

    def __post_init__(self) -> None:
        if self.shards < 1 or self.vms < 1 or self.write_units < 1 or self.read_units < 1:
            raise ConfigurationError("all initial capacities must be >= 1")


class _FlowPipeline:
    """The per-tick data path: generator → Kinesis → Storm → DynamoDB."""

    #: Bound on producer/write retry backlogs; beyond it data is dropped
    #: (a real producer's buffer is finite too) and counted.
    MAX_BACKLOG = 5_000_000

    def __init__(
        self,
        generator: ClickStreamGenerator,
        stream: SimKinesisStream,
        cluster: SimStormCluster,
        table: SimDynamoDBTable,
        cloudwatch: SimCloudWatch,
        cost_meters: dict[str, CostMeter],
        read_workload: RatePattern | None = None,
        read_rng=None,
    ) -> None:
        self.generator = generator
        self.stream = stream
        self.cluster = cluster
        self.table = table
        self.cloudwatch = cloudwatch
        self.cost_meters = cost_meters
        self.read_workload = read_workload
        self._read_grid: RateGrid | None = None
        self._read_rng = read_rng
        self._producer_backlog_records = 0
        self._producer_backlog_bytes = 0
        self._write_backlog = 0
        self.dropped_records = 0
        self.dropped_writes = 0

    def on_tick(self, clock: SimClock) -> None:
        now = clock.now
        # 1. Generate this tick's clicks; retry what was throttled
        #    before. Retries are paced like a real producer library's
        #    bounded buffer: at most two capacity-windows of backlog are
        #    re-offered per tick, so the throttle metric counts paced
        #    attempts rather than the whole outstanding buffer.
        batch = self.generator.generate(clock)
        capacity = self.stream.write_capacity_records(now) * clock.tick_seconds
        retry_records = min(self._producer_backlog_records, 2 * capacity)
        if self._producer_backlog_records:
            retry_bytes = int(
                self._producer_backlog_bytes * retry_records / self._producer_backlog_records
            )
        else:
            retry_bytes = 0
        result = self.stream.put_records(
            batch.records + retry_records, batch.payload_bytes + retry_bytes, clock
        )
        backlog_records = self._producer_backlog_records - retry_records + result.throttled_records
        backlog_bytes = self._producer_backlog_bytes - retry_bytes + result.throttled_bytes
        if backlog_records > self.MAX_BACKLOG:
            self.dropped_records += backlog_records - self.MAX_BACKLOG
            backlog_bytes = int(backlog_bytes * self.MAX_BACKLOG / backlog_records)
            backlog_records = self.MAX_BACKLOG
        self._producer_backlog_records = backlog_records
        self._producer_backlog_bytes = backlog_bytes

        # 2. Analytics pulls, processes, emits windowed aggregates.
        writes = self.cluster.pull_and_process(self.stream, batch.distinct_keys, clock)

        # 3. Storage absorbs the writes; throttled writes are retried,
        #    paced the same way as producer retries. Pacing follows the
        #    *effective* capacity so a throttle storm slows retries too.
        write_capacity = self.table.effective_write_capacity(now) * clock.tick_seconds
        retry_writes = min(self._write_backlog, 2 * write_capacity)
        write_result = self.table.write(writes + retry_writes, clock)
        backlog = self._write_backlog - retry_writes + write_result.throttled_units
        if backlog > self.MAX_BACKLOG:
            self.dropped_writes += backlog - self.MAX_BACKLOG
            backlog = self.MAX_BACKLOG
        self._write_backlog = backlog

        # 3b. Dashboard readers query the aggregates (read units); the
        #     demo's reference architecture is a "real-time sliding-
        #     window dashboard over streaming data". Reads that throttle
        #     are lost page views, not retried.
        if self.read_workload is not None:
            # Batched like the click generator: read rates come from a
            # chunked grid, not a rate() call per tick (bit-identical by
            # the values() contract).
            grid = self._read_grid
            if grid is None or grid.step != clock.tick_seconds:
                grid = self._read_grid = RateGrid(self.read_workload, clock.tick_seconds)
            expected = grid.rate_at(now) * clock.tick_seconds
            read_units = int(self._read_rng.poisson(expected)) if expected > 0 else 0
            self.table.read(read_units, clock)

        # 4. Every service reports to CloudWatch.
        self.stream.emit_metrics(self.cloudwatch, clock)
        self.cluster.emit_metrics(self.cloudwatch, clock)
        self.table.emit_metrics(self.cloudwatch, clock)

        # 5. Meter this tick's spend. Kinesis has two cost dimensions
        #    (Eq. 4's c_d): shard-hours and PUT payload units (one unit
        #    per click record at the configured record sizes).
        dt = clock.tick_seconds
        self.cost_meters["ingestion"].accrue(self.stream.shard_count(now), dt)
        self.cost_meters["ingestion"].record_usage(result.accepted_records)
        self.cost_meters["analytics"].accrue(self.cluster.fleet.billable_count(now), dt)
        self.cost_meters["storage"].accrue(self.table.write_capacity(now), dt)
        self.cost_meters["storage_reads"].accrue(self.table.read_capacity(now), dt)

    # ------------------------------------------------------------------
    # Span execution (see DESIGN.md "Span execution contract")
    # ------------------------------------------------------------------
    def span_horizon(self, now: int, limit: int, tick_seconds: int) -> int:
        """Latest span end the data path can accept, at most ``limit``.

        Two kinds of internal events bound a span (aggregation-window
        flushes do *not*: :meth:`run_span` draws its CPU-noise normals
        in flush-bounded segments, so a flush's Poisson draw lands at
        exactly the bitstream position the per-tick loop gives it):

        * a pending reshard / capacity update / rebalance completing —
          the span must end on the last tick before the first affected
          tick, unless that first affected tick is the very next one
          (then :meth:`run_span`'s capacity hoist applies it);
        * the running VM count changing (a boot completing or a future
          termination) — the affected tick always runs as its own
          single-tick span, because the change can *trigger* a topology
          rebalance whose end time is unknowable before it happens.
        """
        first_tick = now + tick_seconds
        horizon = limit
        for event in (
            self.stream.next_capacity_event(now),
            self.table.next_capacity_event(now),
            self.cluster.next_capacity_event(now),
        ):
            if event is None or event <= first_tick:
                continue
            affected = now + tick_seconds * (-(-(event - now) // tick_seconds))
            if affected - tick_seconds < horizon:
                horizon = affected - tick_seconds
        fleet_event = self.cluster.fleet.next_capacity_event(now)
        if fleet_event is not None:
            affected = now + tick_seconds * (-(-(fleet_event - now) // tick_seconds))
            bound = affected - tick_seconds if affected > first_tick else first_tick
            if bound < horizon:
                horizon = bound
        return horizon

    def run_span(self, clock: SimClock, span_end: int, _precomputed=None) -> None:
        """Execute the ticks ``(clock.now, span_end]`` as one batch.

        Bit-identical to calling :meth:`on_tick` once per tick: the
        capacity coefficients are constant across the span (that is what
        :meth:`span_horizon` guarantees), so every capacity lookup, dict
        build and method dispatch is hoisted out of the loop, RNG draws
        are batched per stream in bitstream order, the backlog/throttle
        recurrence runs over plain locals, and the per-tick metric
        values land as columnar batch appends at the end of the span.

        ``_precomputed`` lets the fleet executor hand in workload
        columns it already drew (its batched path draws before deciding
        whether the sub-span needs this scalar reference); the columns
        are exactly what ``generate_span`` would have returned, so the
        generator's RNG stream is consumed identically either way.
        """
        dt = clock.tick_seconds
        now = clock.now
        count = (span_end - now) // dt
        first_tick = now + dt
        stream = self.stream
        cluster = self.cluster
        table = self.table

        # Workload draws first, as in the per-tick loop (the generator
        # touches no service state, so its batch can lead the span).
        if _precomputed is None:
            records_col, payload_col, distinct_col = self.generator.generate_span(
                first_tick, count, dt
            )
        else:
            records_col, payload_col, distinct_col = _precomputed

        # Capacity hoist, in the per-tick loop's call order so pending
        # changes ripe at the first tick apply — and publish their bus
        # events — exactly where the reference path would apply them.
        record_cap = stream.write_capacity_records(first_tick) * dt
        byte_cap = stream.write_capacity_bytes(first_tick) * dt
        shards = stream.shard_count(first_tick)
        stream_read_cap = shards * stream.config.read_records_per_shard_per_second * dt
        fleet = cluster.fleet
        vms = fleet.running_count(first_tick)
        analytics_cap = cluster._capacity_this_tick(vms, first_tick) * dt
        poll_limit = int(analytics_cap * cluster.config.poll_factor)
        provisioned_vms = fleet.provisioned_count(first_tick)
        billable_vms = fleet.billable_count(first_tick)
        # Provisioned units drive metrics, burst-bucket sizing and cost;
        # the *effective* units (provisioned minus any injected throttle
        # storm) drive what the table actually accepts per tick.
        write_units = table.write_capacity(first_tick)
        eff_write_units = table.effective_write_capacity(first_tick)
        read_units_cap = table.read_capacity(first_tick)
        eff_read_units = table.effective_read_capacity(first_tick)
        write_cap = eff_write_units * dt
        read_cap = eff_read_units * dt
        write_bucket_cap = table.config.burst_seconds * write_units
        read_bucket_cap = table.config.burst_seconds * read_units_cap

        # CPU-noise normals are drawn in flush-bounded segments: the
        # scalar loop's draw order on the cluster's stream is one normal
        # per tick with a flush Poisson interleaved at each window
        # boundary, so each refill batches exactly the normals up to
        # (and including) the next flush tick. Batched normals are
        # bit-identical to the same number of scalar draws.
        noise_std = cluster.config.cpu_noise_std
        storm_normal = cluster._rng.normal
        noise_buf: list[float] = []
        noise_idx = 0

        has_reads = self.read_workload is not None
        if has_reads:
            read_grid = self._read_grid
            if read_grid is None or read_grid.step != dt:
                read_grid = self._read_grid = RateGrid(self.read_workload, dt)
            read_rates = read_grid.rates_span(first_tick, count)
            read_poisson = self._read_rng.poisson

        # Service state into locals for the recurrence.
        max_backlog = self.MAX_BACKLOG
        backlog_records = self._producer_backlog_records
        backlog_bytes = self._producer_backlog_bytes
        dropped_records = self.dropped_records
        buffer_records = stream._buffer_records
        buffer_bytes = stream._buffer_bytes
        smoothed_rate = stream._smoothed_rate
        pending = cluster._pending_records
        window_keys = cluster._window_keys
        window_records = cluster._window_records
        window_elapsed = cluster._window_elapsed
        window_seconds = cluster.config.window_seconds
        distinct_estimator = cluster._distinct_estimator
        storm_poisson = cluster._rng.poisson
        idle = cluster.config.cpu_idle_percent
        burst = table._burst_bucket
        read_burst = table._read_burst_bucket
        write_backlog = self._write_backlog
        dropped_writes = self.dropped_writes
        alpha = min(1.0, dt / 60.0)
        two_record_cap = 2 * record_cap
        two_write_cap = 2 * write_cap

        times: list[int] = []
        k_accepted: list[int] = []
        k_accepted_bytes: list[int] = []
        k_throttled: list[int] = []
        k_read: list[int] = []
        k_util: list[float] = []
        k_backlog: list[int] = []
        k_lag: list[float] = []
        s_cpu: list[float] = []
        s_processed: list[int] = []
        s_pending: list[int] = []
        s_writes: list[int] = []
        d_consumed: list[int] = []
        d_throttled: list[int] = []
        d_util: list[float] = []
        d_burst: list[float] = []
        d_read_consumed: list[int] = []
        d_read_throttled: list[int] = []
        d_read_util: list[float] = []
        # Bound-method locals: ~20 column appends per tick make the
        # attribute lookups measurable in this loop.
        times_append = times.append
        k_accepted_append = k_accepted.append
        k_accepted_bytes_append = k_accepted_bytes.append
        k_throttled_append = k_throttled.append
        k_read_append = k_read.append
        k_util_append = k_util.append
        k_backlog_append = k_backlog.append
        k_lag_append = k_lag.append
        s_cpu_append = s_cpu.append
        s_processed_append = s_processed.append
        s_pending_append = s_pending.append
        s_writes_append = s_writes.append
        d_consumed_append = d_consumed.append
        d_throttled_append = d_throttled.append
        d_util_append = d_util.append
        d_burst_append = d_burst.append
        d_read_consumed_append = d_read_consumed.append
        d_read_throttled_append = d_read_throttled.append
        d_read_util_append = d_read_util.append

        cpu = cluster._tick_cpu
        processed = cluster._tick_processed
        writes = cluster._tick_writes_emitted
        t = now
        for i in range(count):
            t += dt
            times_append(t)
            records = records_col[i]
            payload = payload_col[i]

            # 1. Producer retries + Kinesis put (see on_tick step 1).
            retry_records = min(backlog_records, two_record_cap)
            if backlog_records:
                retry_bytes = int(backlog_bytes * retry_records / backlog_records)
            else:
                retry_bytes = 0
            offered = records + retry_records
            offered_bytes = payload + retry_bytes
            if offered == 0:
                accepted = 0
                accepted_bytes = 0
                throttled = 0
                throttled_bytes = 0
            else:
                record_fraction = min(1.0, record_cap / offered)
                byte_fraction = min(1.0, byte_cap / offered_bytes) if offered_bytes else 1.0
                fraction = min(record_fraction, byte_fraction)
                accepted = int(offered * fraction)
                accepted_bytes = int(offered_bytes * fraction)
                buffer_records += accepted
                buffer_bytes += accepted_bytes
                throttled = offered - accepted
                throttled_bytes = offered_bytes - accepted_bytes
            backlog_records = backlog_records - retry_records + throttled
            backlog_bytes = backlog_bytes - retry_bytes + throttled_bytes
            if backlog_records > max_backlog:
                dropped_records += backlog_records - max_backlog
                backlog_bytes = int(backlog_bytes * max_backlog / backlog_records)
                backlog_records = max_backlog

            # 2. Storm pulls and processes (pull_and_process, inlined).
            wanted = poll_limit - pending
            if wanted < 0:
                wanted = 0
            handed = min(wanted, buffer_records, stream_read_cap)
            if buffer_records:
                buffer_bytes -= int(buffer_bytes * handed / buffer_records)
            buffer_records -= handed
            pending += handed
            processed = min(pending, analytics_cap)
            pending -= processed
            if vms > 0:
                if analytics_cap > 0:
                    cpu = idle + (100.0 - idle) * (processed / analytics_cap)
                else:
                    cpu = idle
                if pending > 0:
                    cpu = 100.0
            else:
                cpu = 0.0
            if noise_std:
                if noise_idx == len(noise_buf):
                    # Refill up to (and including) the next flush tick;
                    # window_elapsed has not yet counted this tick.
                    seg = -(-(window_seconds - window_elapsed) // dt)
                    if seg < 1:
                        seg = 1
                    remaining = count - i
                    if seg > remaining:
                        seg = remaining
                    noise_buf = storm_normal(0.0, noise_std, size=seg).tolist()
                    noise_idx = 0
                noise = noise_buf[noise_idx]
                noise_idx += 1
            else:
                noise = 0.0
            cpu = float(min(100.0, max(0.0, cpu + noise)))
            window_keys += distinct_col[i]
            window_records += processed
            window_elapsed += dt
            writes = 0
            if window_elapsed >= window_seconds:
                if distinct_estimator is not None:
                    expected = distinct_estimator(window_records)
                    writes = int(storm_poisson(expected)) if expected > 0 else 0
                else:
                    ticks_in_window = max(1, window_elapsed // dt)
                    writes = int(round(window_keys / ticks_in_window))
                window_keys = 0.0
                window_records = 0
                window_elapsed = 0

            # 3. DynamoDB writes + retry pacing (on_tick step 3).
            retry_writes = min(write_backlog, two_write_cap)
            units = writes + retry_writes
            write_accepted = min(units, write_cap)
            excess = units - write_accepted
            if excess > 0 and burst > 0:
                from_burst = int(min(excess, burst))
                write_accepted += from_burst
                excess -= from_burst
                burst -= from_burst
            unused = max(0, write_cap - units)
            burst = min(write_bucket_cap, burst + unused)
            write_backlog = write_backlog - retry_writes + excess
            if write_backlog > max_backlog:
                dropped_writes += write_backlog - max_backlog
                write_backlog = max_backlog

            # 3b. Dashboard reads (on_tick step 3b).
            if has_reads:
                read_expected = read_rates[i] * dt
                read_units = int(read_poisson(read_expected)) if read_expected > 0 else 0
                read_accepted = min(read_units, read_cap)
                read_excess = read_units - read_accepted
                if read_excess > 0 and read_burst > 0:
                    from_burst = int(min(read_excess, read_burst))
                    read_accepted += from_burst
                    read_excess -= from_burst
                    read_burst -= from_burst
                read_unused = max(0, read_cap - read_units)
                read_burst = min(read_bucket_cap, read_burst + read_unused)
            else:
                read_accepted = 0
                read_excess = 0

            # 4. Metric columns, with the emit-time arithmetic verbatim.
            k_accepted_append(accepted)
            k_accepted_bytes_append(accepted_bytes)
            k_throttled_append(throttled)
            k_read_append(handed)
            k_util_append(100.0 * accepted / record_cap if record_cap else 0.0)
            k_backlog_append(buffer_records)
            tick_rate = accepted / dt
            smoothed_rate += alpha * (tick_rate - smoothed_rate)
            if buffer_records == 0:
                k_lag_append(0.0)
            else:
                k_lag_append(1000.0 * buffer_records / max(smoothed_rate, 1e-9))
            s_cpu_append(cpu)
            s_processed_append(processed)
            s_pending_append(pending)
            s_writes_append(writes)
            d_consumed_append(write_accepted)
            d_throttled_append(excess)
            d_util_append(100.0 * write_accepted / write_cap if write_cap else 0.0)
            d_burst_append(burst)
            d_read_consumed_append(read_accepted)
            d_read_throttled_append(read_excess)
            d_read_util_append(100.0 * read_accepted / read_cap if read_cap else 0.0)

        # Write service state back.
        span_accepted = sum(k_accepted)
        self._producer_backlog_records = backlog_records
        self._producer_backlog_bytes = backlog_bytes
        self.dropped_records = dropped_records
        self._write_backlog = write_backlog
        self.dropped_writes = dropped_writes
        stream._buffer_records = buffer_records
        stream._buffer_bytes = buffer_bytes
        stream._smoothed_rate = smoothed_rate
        stream.total_accepted_records += span_accepted
        stream.total_read_records += sum(k_read)
        cluster._pending_records = pending
        cluster.total_processed += sum(s_processed)
        cluster.total_writes_emitted += sum(s_writes)
        table.total_write_accepted += sum(d_consumed)
        cluster._window_keys = window_keys
        cluster._window_records = window_records
        cluster._window_elapsed = window_elapsed
        cluster._tick_cpu = cpu
        cluster._tick_processed = processed
        cluster._tick_writes_emitted = writes
        table._burst_bucket = burst
        table._read_burst_bucket = read_burst

        # 4. Columnar metric emission (same values, same append order).
        cloudwatch = self.cloudwatch
        stream.emit_metrics_span(
            cloudwatch, times, k_accepted, k_accepted_bytes, k_throttled, k_read,
            k_util, k_backlog, k_lag, shards,
        )
        cluster.emit_metrics_span(
            cloudwatch, times, s_cpu, s_processed, s_pending, s_writes,
            vms, provisioned_vms,
        )
        table.emit_metrics_span(
            cloudwatch, times, d_consumed, d_throttled, d_util, d_burst,
            d_read_consumed, d_read_throttled, d_read_util,
            write_units, read_units_cap,
        )

        # 5. Costs: every accrued quantity is an integer and constant
        #    across the span, so one accrue over count*dt seconds sums
        #    exactly (integer-valued float adds below 2**53 are exact);
        #    usage volumes are ints and sum exactly too.
        span_seconds = count * dt
        meters = self.cost_meters
        meters["ingestion"].accrue(shards, span_seconds)
        meters["ingestion"].record_usage(span_accepted)
        meters["analytics"].accrue(billable_vms, span_seconds)
        meters["storage"].accrue(write_units, span_seconds)
        meters["storage_reads"].accrue(read_units_cap, span_seconds)


@dataclass
class FlowRunResult:
    """Everything a finished run exposes for analysis and reporting."""

    duration_seconds: int
    flow: FlowSpec
    cloudwatch: SimCloudWatch
    collector: MetricCollector
    loops: dict[LayerKind, ControlLoop]
    cost_meters: dict[str, CostMeter]
    dropped_records: int
    dropped_writes: int
    sample_period: int = 60
    layer_dimensions: dict[LayerKind, dict[str, str]] = field(default_factory=dict)
    read_loop: ControlLoop | None = None
    recorder: FlightRecorder | None = None
    chaos_events: list[ChaosEvent] = field(default_factory=list)
    invariants: InvariantReport | None = None
    #: Always-on counters/gauges/histograms (None only when disabled).
    telemetry: Telemetry | None = None
    #: Wall-clock seconds the engine run took (real time, not simulated).
    wall_seconds: float = 0.0
    #: Whether the run used the bit-exact workload path. ``False`` marks
    #: the block-vectorized approximate (fast) path — statistically
    #: equivalent, never bit-comparable to exact runs.
    exact: bool = True

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def trace(
        self,
        namespace: str,
        metric: str,
        period: int | None = None,
        statistic: str = "Average",
        dimensions: dict[str, str] | None = None,
    ) -> Trace:
        """A metric aggregated to ``period`` (default: the sample period)."""
        period = period or self.sample_period
        datapoints = self.cloudwatch.get_metric_statistics(
            namespace, metric, 0, self.duration_seconds, period, statistic, dimensions
        )
        name = f"{namespace}/{metric}"
        return Trace.from_series(name, *zip(*datapoints)) if datapoints else Trace(name)

    def utilization_trace(self, kind: LayerKind, period: int | None = None) -> Trace:
        namespace, metric = LAYER_SENSE[kind]
        return self.trace(namespace, metric, period, dimensions=self.layer_dimensions.get(kind))

    def capacity_trace(self, kind: LayerKind, period: int | None = None) -> Trace:
        namespace, metric = LAYER_CAPACITY[kind]
        return self.trace(namespace, metric, period, dimensions=self.layer_dimensions.get(kind))

    def throttle_trace(self, kind: LayerKind, period: int | None = None) -> Trace:
        namespace, metric = LAYER_THROTTLE[kind]
        statistic = "Average" if kind == LayerKind.ANALYTICS else "Sum"
        return self.trace(namespace, metric, period, statistic, self.layer_dimensions.get(kind))

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    @property
    def cost_by_layer(self) -> dict[str, float]:
        return {name: meter.total_cost for name, meter in self.cost_meters.items()}

    @property
    def total_cost(self) -> float:
        return sum(self.cost_by_layer.values())

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def dashboard(self) -> str:
        """Render the all-in-one-place view of the finished run."""
        return Dashboard(
            self.collector,
            title=f"Flower — {self.flow.name}",
            recorder=self.recorder,
            telemetry=self.telemetry,
        ).render()


class FlowElasticityManager:
    """Builds and runs one managed data analytics flow."""

    def __init__(
        self,
        workload: RatePattern,
        capacities: ServiceCapacities | None = None,
        controls: dict[LayerKind, LayerControlConfig] | None = None,
        flow: FlowSpec | None = None,
        price_book: PriceBook | None = None,
        seed: int = 0,
        tick_seconds: int = 1,
        snapshot_period: int = 60,
        share_bounds: dict[LayerKind, int] | None = None,
        share_schedule=None,
        read_workload: RatePattern | None = None,
        read_control: LayerControlConfig | None = None,
        clickstream: ClickStreamConfig | None = None,
        kinesis: KinesisConfig | None = None,
        storm: StormConfig | None = None,
        topology: "TopologyConfig | None" = None,
        ec2: EC2Config | None = None,
        dynamodb: DynamoDBConfig | None = None,
        recorder: FlightRecorder | None = None,
        span_execution: bool = True,
        chaos: ChaosSchedule | None = None,
        invariants: bool = True,
        telemetry: bool = True,
        engine: SimulationEngine | None = None,
        region=None,
        flow_id: str | None = None,
        coordinated: bool = False,
        exact: bool = True,
    ) -> None:
        self.flow = flow or clickstream_flow_spec()
        #: Identifies this flow inside a multi-flow region run; None for
        #: standalone flows. Scopes service names (and through them the
        #: metric dimensions) and engine task names.
        self.flow_id = flow_id
        self.region = region
        self.capacities = capacities or ServiceCapacities()
        self.controls = dict(controls or {})
        self.share_bounds = dict(share_bounds or {})
        for kind, bound in self.share_bounds.items():
            if bound < 1:
                raise ConfigurationError(
                    f"share bound for {kind.name} must be >= 1, got {bound}"
                )
        self.share_schedule = share_schedule
        if share_schedule is not None and self.share_bounds:
            raise ConfigurationError(
                "pass either static share_bounds or a share_schedule, not both"
            )
        if share_schedule is not None:
            # The schedule's first window seeds the static bounds; a
            # periodic task keeps them tracking the active window.
            self.share_bounds = dict(share_schedule.bounds_at(0))
        self.price_book = price_book or PriceBook()
        self.seed = seed
        self.snapshot_period = snapshot_period
        # Always-on telemetry (unlike the opt-in recorder): written only
        # at control boundaries, so it stays inside the <2% budget.
        self.telemetry: Telemetry | None = Telemetry() if telemetry else None

        self.cloudwatch = SimCloudWatch()
        # Flow-scoped service names carry the flow id into every metric
        # dimension, event and scorecard of a multi-flow region run.
        prefix = f"{flow_id}-" if flow_id else ""
        self.stream = SimKinesisStream(
            name=f"{prefix}clickstream", shards=self.capacities.shards, config=kinesis
        )
        self.fleet = SimEC2Fleet(
            config=ec2 or EC2Config(instance_type=self.flow.analytics.resource),
            initial_instances=self.capacities.vms,
        )
        self.table = SimDynamoDBTable(
            name=f"{prefix}page-aggregates",
            write_units=self.capacities.write_units,
            read_units=self.capacities.read_units,
            config=dynamodb,
        )
        #: Workload-path exactness. ``exact=True`` (the default) is the
        #: bit-exact reference; ``exact=False`` swaps in the
        #: block-vectorized approximate generator (see the approximation
        #: contract in DESIGN.md). The flag rides through the run result
        #: and scorecards so approximate numbers can never masquerade as
        #: exact ones.
        self.exact = bool(exact)
        generator_cls = ClickStreamGenerator if self.exact else FastClickStreamGenerator
        self.generator = generator_cls(
            workload, rng=derive_rng(seed, "clickstream"), config=clickstream
        )
        self.cluster = SimStormCluster(
            self.fleet,
            config=storm,
            rng=derive_rng(seed, "storm.cpu"),
            name=f"{prefix}clickstream-topology",
            distinct_estimator=self.generator.expected_distinct,
            topology=topology,
        )
        if region is not None:
            if flow_id is None:
                raise ConfigurationError("a region-attached flow needs a flow_id")
            self.fleet.attach_region(region, flow_id)
            self.stream.attach_region(region, flow_id)
            self.table.attach_region(region, flow_id)
            self.cluster.attach_region(region)

        self.cost_meters = {
            "ingestion": CostMeter(self.price_book, self.flow.ingestion.resource),
            "analytics": CostMeter(self.price_book, self.flow.analytics.resource),
            "storage": CostMeter(self.price_book, self.flow.storage.resource),
            "storage_reads": CostMeter(self.price_book, "dynamodb.rcu"),
        }

        # Service names are fixed at construction, so the per-layer
        # metric dimension dicts are too; sensors, the collector and the
        # run result all share these instead of rebuilding them.
        self._layer_dims: dict[LayerKind, dict[str, str]] = {
            LayerKind.INGESTION: {"StreamName": self.stream.name},
            LayerKind.ANALYTICS: {"Topology": self.cluster.name},
            LayerKind.STORAGE: {"TableName": self.table.name},
        }

        # Flight recorder: everything downstream is opt-in — services
        # publish to the bus, loops feed the decision audit log, and the
        # engine runs its profiled loop — only when a recorder is given.
        self.recorder = recorder
        if recorder is not None:
            self.stream.attach_bus(recorder.bus, "ingestion")
            self.cluster.attach_bus(recorder.bus, "analytics")
            self.table.attach_bus(recorder.bus, "storage")

        if engine is not None:
            # Shared engine (multi-flow region run): the caller owns the
            # clock, span mode and run loop; this manager only registers
            # its components and tasks on it.
            self.engine = engine
            self._owns_engine = False
        else:
            self.engine = SimulationEngine(
                clock=SimClock(tick_seconds=tick_seconds), span_execution=span_execution
            )
            self._owns_engine = True
        if recorder is not None and self._owns_engine:
            self.engine.profiler = recorder.profiler
        self._pipeline = _FlowPipeline(
            self.generator,
            self.stream,
            self.cluster,
            self.table,
            self.cloudwatch,
            self.cost_meters,
            read_workload=read_workload,
            read_rng=derive_rng(seed, "dashboard.reads"),
        )
        self.engine.add_component(self._pipeline)

        self.read_loop: ControlLoop | None = None
        if read_control is not None:
            if read_workload is None:
                raise ConfigurationError(
                    "read_control requires a read_workload to control against"
                )
            read_actuator = RetryingActuator(DynamoDBReadActuator(self.table))
            if self.recorder is not None:
                read_actuator.instrument(self.recorder.bus, "storage")
            read_sensor = CloudWatchSensor(
                self.cloudwatch,
                DDB_NS,
                "ReadUtilization",
                window=read_control.window,
                statistic=read_control.statistic,
                dimensions=self._dimensions_for(LayerKind.STORAGE),
                hold_last_for=3 * read_control.window,
            )
            if self.recorder is not None:
                read_sensor.instrument(self.recorder.bus, "storage")
            self.read_loop = ControlLoop(
                name="storage-reads",
                sensor=read_sensor,
                controller=read_control.controller,
                actuator=read_actuator,
                period=read_control.period,
                decision_log=self.recorder.decisions if self.recorder else None,
                event_bus=self.recorder.bus if self.recorder else None,
                telemetry=self.telemetry,
            )
            self.engine.every(
                self.read_loop.period, self.read_loop.step, name=f"{prefix}control.reads"
            )

        self.loops = self._build_loops()
        for kind, loop in self.loops.items():
            self.engine.every(
                loop.period, loop.step, name=f"{prefix}control.{kind.name.lower()}"
            )
        if self.share_schedule is not None and self.loops:
            self.engine.every(
                snapshot_period, self._apply_scheduled_bounds, name=f"{prefix}share-schedule"
            )

        self.collector = self._build_collector()
        # Keep the task name the tests and profiler reports know; the
        # wrapper adds the telemetry gauge sample at the same boundary.
        self.engine.every(snapshot_period, self._snapshot, name=f"{prefix}snapshots")

        # Component order matters: pipeline → invariant checker → chaos
        # injector. The checker audits each boundary's *pre-injection*
        # state (so its cost integration sees the same capacities the
        # pipeline accrued), and faults applied at tick T take effect
        # from T+1 in both per-tick and span execution.
        self.invariant_checker: InvariantChecker | None = None
        if invariants:
            self.invariant_checker = InvariantChecker(
                pipeline=self._pipeline,
                generator=self.generator,
                stream=self.stream,
                cluster=self.cluster,
                fleet=self.fleet,
                table=self.table,
                cost_meters=self.cost_meters,
                loops=self.loops,
                # Runtime-retargeted bounds (a share schedule or a fleet
                # coordinator) make the static bound check meaningless.
                check_controller_bounds=self.share_schedule is None and not coordinated,
                bus=recorder.bus if recorder is not None else None,
            )
            self.engine.add_component(self.invariant_checker)
        self.chaos_injector: ChaosInjector | None = None
        if chaos:
            self.chaos_injector = ChaosInjector(
                schedule=chaos,
                stream=self.stream,
                cluster=self.cluster,
                fleet=self.fleet,
                table=self.table,
                cloudwatch=self.cloudwatch,
                bus=recorder.bus if recorder is not None else None,
            )
            self.engine.add_component(self.chaos_injector)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _build_loops(self) -> dict[LayerKind, ControlLoop]:
        actuators = {
            LayerKind.INGESTION: lambda: KinesisShardActuator(self.stream),
            LayerKind.ANALYTICS: lambda: StormVMActuator(self.fleet),
            LayerKind.STORAGE: lambda: DynamoDBWriteActuator(self.table),
        }
        loops: dict[LayerKind, ControlLoop] = {}
        for kind, config in self.controls.items():
            namespace, metric = LAYER_SENSE[kind]
            sensor = CloudWatchSensor(
                self.cloudwatch,
                namespace,
                metric,
                window=config.window,
                statistic=config.statistic,
                dimensions=self._dimensions_for(kind),
                # Degrade gracefully on missing datapoints: hold the
                # last reading for up to three monitoring windows.
                hold_last_for=3 * config.window,
            )
            # Retry sits innermost so transient API faults are absorbed
            # before (and invisibly to) the share bound.
            actuator = RetryingActuator(actuators[kind]())
            if kind in self.share_bounds:
                # Sec. 2: controllers act freely *within* the layer's
                # resource share from the share analyzer, never beyond.
                actuator = BoundedActuator(actuator, cap=self.share_bounds[kind])
            if self.recorder is not None:
                actuator.instrument(self.recorder.bus, kind.name.lower())
                sensor.instrument(self.recorder.bus, kind.name.lower())
            loops[kind] = ControlLoop(
                name=kind.name.lower(),
                sensor=sensor,
                controller=config.controller,
                actuator=actuator,
                period=config.period,
                decision_log=self.recorder.decisions if self.recorder else None,
                event_bus=self.recorder.bus if self.recorder else None,
                telemetry=self.telemetry,
            )
        return loops

    def _apply_scheduled_bounds(self, now: int) -> None:
        """Track the share schedule: retarget every bounded actuator to
        the window in force at ``now`` (Sec. 2's arbitrary-time-window
        resource shares)."""
        bounds = self.share_schedule.bounds_at(now)
        for kind, loop in self.loops.items():
            actuator = loop.actuator
            if isinstance(actuator, BoundedActuator) and kind in bounds:
                actuator.cap = float(bounds[kind])

    def _snapshot(self, now: int) -> None:
        """Snapshot-boundary work: collect metrics, sample telemetry."""
        self.collector.collect(now)
        if self.telemetry is not None:
            self._sample_telemetry(now)

    def _sample_telemetry(self, now: int) -> None:
        """Refresh the telemetry gauges from live state.

        Strictly read-only: every source here is a plain attribute or a
        pure query, so sampling can never perturb the simulation — the
        bit-exactness contract is untouched and span/per-tick runs stay
        identical with telemetry on or off.
        """
        telemetry = self.telemetry
        pipeline = self._pipeline
        telemetry.set_gauge("pipeline.producer_backlog", pipeline._producer_backlog_records)
        telemetry.set_gauge("pipeline.write_backlog", pipeline._write_backlog)
        telemetry.set_gauge("pipeline.dropped_records", pipeline.dropped_records)
        telemetry.set_gauge("pipeline.dropped_writes", pipeline.dropped_writes)
        for name, meter in self.cost_meters.items():
            telemetry.set_gauge(f"cost.{name}", meter.total_cost)
        loops = list(self.loops.values())
        if self.read_loop is not None:
            loops.append(self.read_loop)
        for loop in loops:
            actuator = loop.actuator
            if isinstance(actuator, BoundedActuator):
                telemetry.set_gauge(
                    f"actuator.{loop.name}.share_clamps", actuator.clamped_requests
                )
                actuator = actuator.inner
            if isinstance(actuator, RetryingActuator):
                telemetry.set_gauge(
                    f"actuator.{loop.name}.failed_attempts", actuator.failed_attempts
                )
                telemetry.set_gauge(
                    f"actuator.{loop.name}.breaker_openings", actuator.total_openings
                )
                telemetry.set_gauge(
                    f"actuator.{loop.name}.circuit_open",
                    1.0 if now < actuator.circuit_open_until else 0.0,
                )
            telemetry.set_gauge(
                f"sensor.{loop.name}.stale",
                1.0 if getattr(loop.sensor, "last_stale", False) else 0.0,
            )

    def _dimensions_for(self, kind: LayerKind) -> dict[str, str]:
        return self._layer_dims[kind]

    def _build_collector(self) -> MetricCollector:
        collector = MetricCollector(self.cloudwatch, window=self.snapshot_period)
        # Registered explicitly rather than via a loop over opaque tuples,
        # so the dashboard labels read like the demo's consolidated view.
        collector.add_metric(
            "ingestion.records", KINESIS_NS, "IncomingRecords", "Sum",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "ingestion.shards", KINESIS_NS, "ShardCount", "Average",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "ingestion.util%", KINESIS_NS, "WriteUtilization", "Average",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "ingestion.throttled", KINESIS_NS, "WriteProvisionedThroughputExceeded", "Sum",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "ingestion.lag_ms", KINESIS_NS, "MillisBehindLatest", "Maximum",
            self._dimensions_for(LayerKind.INGESTION),
        )
        collector.add_metric(
            "analytics.cpu%", STORM_NS, "CPUUtilization", "Average",
            self._dimensions_for(LayerKind.ANALYTICS),
        )
        collector.add_metric(
            "analytics.vms", STORM_NS, "ProvisionedVMs", "Average",
            self._dimensions_for(LayerKind.ANALYTICS),
        )
        collector.add_metric(
            "analytics.pending", STORM_NS, "PendingTuples", "Average",
            self._dimensions_for(LayerKind.ANALYTICS),
        )
        collector.add_metric(
            "storage.wcu", DDB_NS, "ProvisionedWriteCapacityUnits", "Average",
            self._dimensions_for(LayerKind.STORAGE),
        )
        collector.add_metric(
            "storage.util%", DDB_NS, "WriteUtilization", "Average",
            self._dimensions_for(LayerKind.STORAGE),
        )
        collector.add_metric(
            "storage.throttled", DDB_NS, "WriteThrottleEvents", "Sum",
            self._dimensions_for(LayerKind.STORAGE),
        )
        return collector

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_seconds: int) -> FlowRunResult:
        """Advance the simulation and return the analysed result."""
        started = perf_counter()
        self.engine.run(duration_seconds)
        return self._build_result(perf_counter() - started)

    def _build_result(self, wall_seconds: float = 0.0) -> FlowRunResult:
        """Assemble the run result from current state.

        Split out of :meth:`run` so a region fleet manager can run the
        *shared* engine once and then collect each flow's result.
        """
        return FlowRunResult(
            duration_seconds=self.engine.clock.now,
            flow=self.flow,
            cloudwatch=self.cloudwatch,
            collector=self.collector,
            loops=self.loops,
            cost_meters=self.cost_meters,
            dropped_records=self._pipeline.dropped_records,
            dropped_writes=self._pipeline.dropped_writes,
            sample_period=self.snapshot_period,
            layer_dimensions={kind: self._dimensions_for(kind) for kind in LayerKind},
            read_loop=self.read_loop,
            recorder=self.recorder,
            chaos_events=list(self.chaos_injector.events) if self.chaos_injector else [],
            invariants=(
                self.invariant_checker.report() if self.invariant_checker else None
            ),
            telemetry=self.telemetry,
            wall_seconds=wall_seconds,
            exact=self.exact,
        )

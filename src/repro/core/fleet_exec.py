"""Fleet-batched span execution: N flows as one engine component.

Sequential fleet execution registers N ``_FlowPipeline`` components,
so every flow's capacity event bounds the *shared* span: a 16-flow
fleet fragments all sixteen recurrences at every single flow's boot,
reshard and capacity-update tick, and the engine pays N component
dispatches per boundary on top. This module collapses the N pipelines
into one :class:`FleetSpanExecutor` that

* absorbs per-flow capacity events internally — its ``span_horizon``
  accepts the whole global span (task firings, chaos faults and the
  run end still bound it), and each flow is split into **sub-spans at
  that flow's own events** by the pipeline's existing ``span_horizon``
  contract, so quiet flows stop fragmenting at busy flows' events;
* runs each viable sub-span **time-vectorized**: when a flow enters a
  sub-span with empty backlogs/buffers and the workload draws fit
  every hoisted capacity, the whole recurrence degenerates to
  closed-form numpy columns (accepted = handed = processed = records,
  burst buckets refill monotonically, throttles are zero) — anything
  else falls back, sub-span by sub-span, to the bit-exact scalar
  reference in ``_FlowPipeline.run_span``.

The equivalence argument (the *fleet execution contract*, DESIGN.md):

* splitting a flow's span at another flow's boundary never changes its
  results — the recurrence coefficients are identical on both halves,
  batched RNG draws are bit-identical elementwise however they are
  segmented, and window/burst accumulators are integer-valued floats
  below 2**53, so their partial sums associate exactly;
* region contention is constant inside any span (committed instance
  counts change only at control/chaos boundaries, which always bound
  the global span), so absorbing per-flow events cannot leak one
  flow's mid-span capacity change into another flow's coefficients;
* per-flow RNG streams are disjoint and flows execute in component
  (spec) order, so cross-flow batching never reorders any stream's
  draws.

Metrics land through the cloudwatch store's lazy batch path (flushed
on first read, so controllers and snapshots observe exactly what an
eager store would hold), and the workload draws always happen *before*
the viability decision — a fallback sub-span hands the drawn columns
to the scalar reference via ``_precomputed``, consuming every RNG
stream identically on both paths.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.manager import _FlowPipeline
from repro.workload.generators import RateGrid

#: Products (payload x records) must stay below this for the buffer
#: byte split ``int(bytes * handed / records)`` to be float64-exact.
_EXACT_PRODUCT_LIMIT = 2**53


class _SpanClock:
    """Minimal clock view handed to the scalar fallback.

    ``_FlowPipeline.run_span`` reads only ``now`` and ``tick_seconds``;
    the executor walks per-flow sub-spans inside one engine span, so
    the real clock (which the engine advances once per *global* span)
    cannot be used directly.
    """

    __slots__ = ("now", "tick_seconds")

    def __init__(self, now: int, tick_seconds: int) -> None:
        self.now = now
        self.tick_seconds = tick_seconds


class FleetSpanExecutor:
    """One span component executing every flow's data path in batch.

    ``flows`` is the ordered list of ``(flow_name, _FlowPipeline)``
    pairs exactly as the sequential engine would have registered the
    pipelines; the executor preserves that order, so per-flow results
    are bit-identical to sequential execution (each flow's RNG streams,
    cloudwatch store and event bus are private to the flow).
    """

    def __init__(
        self,
        flows: list[tuple[str, _FlowPipeline]],
        engine=None,
        checkers=None,
    ) -> None:
        self._flows = list(flows)
        self._engine = engine
        # Per-flow invariant checkers: their cost integration assumes
        # every capacity change lands on a check boundary, and batching
        # moved those changes off the global span — so the executor
        # audits each flow at its own sub-span boundaries instead.
        self._checkers = dict(checkers or {})
        for _, pipeline in self._flows:
            # Span emissions buffer in the store until a sensor /
            # snapshot / result read flushes them (see SimCloudWatch).
            pipeline.cloudwatch.lazy_batches = True
        # Same-class, same-distinct-law generators pool their
        # expected-distinct memos: the fill values are pure functions
        # of the record count, so whichever flow computes one first
        # saves every other flow the occupancy sum.
        for i, (_, pipeline) in enumerate(self._flows):
            for _, other in self._flows[:i]:
                if pipeline.generator.adopt_distinct_cache(other.generator):
                    break
        # Shared all-zero columns per sub-span length: every flow's
        # viable sub-span emits several identically-zero series
        # (throttles, backlogs, lag), and the store never mutates
        # emitted columns, so one array per length serves them all.
        self._zeros: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _zero_columns(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._zeros.get(count)
        if cached is None:
            cached = (
                np.zeros(count, dtype=np.int64),
                np.zeros(count, dtype=np.float64),
            )
            self._zeros[count] = cached
        return cached

    # ------------------------------------------------------------------
    # Engine component protocol
    # ------------------------------------------------------------------
    def on_tick(self, clock) -> None:
        """Per-tick reference: delegate to each pipeline in order."""
        for _, pipeline in self._flows:
            pipeline.on_tick(clock)

    def span_horizon(self, now: int, limit: int, tick_seconds: int) -> int:
        """Accept the whole global span.

        Per-flow capacity events do not bound the *shared* span any
        more — :meth:`run_span` splits each flow at its own events
        internally. Only cross-flow state changes must stay on global
        boundaries, and those (task firings, chaos faults, run end)
        are already boundaries of their own.
        """
        return limit

    def run_span(self, clock, span_end: int) -> None:
        profiler = self._engine.profiler if self._engine is not None else None
        now = clock.now
        dt = clock.tick_seconds
        for name, pipeline in self._flows:
            started = perf_counter() if profiler is not None else 0.0
            checker = self._checkers.get(name)
            t = now
            shim = _SpanClock(t, dt)
            while t < span_end:
                horizon = pipeline.span_horizon(t, span_end, dt)
                if horizon < t + dt:
                    horizon = t + dt
                shim.now = t
                self._run_sub_span(pipeline, shim, horizon)
                t = horizon
                # The flow's capacities change exactly at its sub-span
                # boundaries; audit here so the checker's piecewise
                # cost integration stays exact. The final boundary is
                # the global span end, where the checker's own engine
                # slot audits (after every flow has finished).
                if checker is not None and t < span_end:
                    checker.audit(t)
            if profiler is not None:
                profiler.record_flow(name, perf_counter() - started)

    # ------------------------------------------------------------------
    # One flow, one sub-span
    # ------------------------------------------------------------------

    #: Initial scalar-chunk length (ticks). A violating tick sends the
    #: flow to the scalar reference only for a chunk at a time; the
    #: executor re-checks the recurrence state between chunks and
    #: resumes the closed-form columns as soon as the backlogs drain,
    #: instead of finishing the whole sub-span scalar. Chunks double
    #: while the state stays live, so a chronically congested flow
    #: converges to long scalar stretches with negligible re-check
    #: overhead. Splitting the scalar reference is exact: its per-tick
    #: recurrence carries all state in the services, and segmented RNG
    #: draws are elementwise-identical however they are chunked.
    _SCALAR_CHUNK = 16

    def _run_sub_span(self, p: _FlowPipeline, clock: _SpanClock, span_end: int) -> None:
        """Run ``(clock.now, span_end]`` for one flow.

        The workload columns for the whole sub-span are always drawn
        *first* (identical RNG consumption on both paths); execution
        then alternates between closed-form vector prefixes (while the
        recurrence state is empty and the draws clear every hoisted
        cap) and bounded scalar chunks fed the same pre-drawn columns.
        The capacity hoists are idempotent within a tick (ripening
        clears the pending target; the rebalance trigger fires only on
        a VM-count change), so re-hoisting on vector resumption is safe
        — capacities are constant across the sub-span by construction
        (the sub-span is bounded by the flow's own next capacity
        event).
        """
        dt = clock.tick_seconds
        t = clock.now
        total = (span_end - t) // dt
        records_all, payload_all, distinct_all = p.generator.generate_span(
            t + dt, total, dt
        )
        stream = p.stream
        cluster = p.cluster
        offset = 0
        chunk = self._SCALAR_CHUNK
        shim = _SpanClock(t, dt)
        while t < span_end:
            remaining = (span_end - t) // dt
            if not (
                p._producer_backlog_records
                or p._producer_backlog_bytes
                or p._write_backlog
                or stream._buffer_records
                or stream._buffer_bytes
                or cluster._pending_records
            ):
                consumed = self._vector_prefix(
                    p, t, dt, remaining,
                    records_all[offset : offset + remaining],
                    payload_all[offset : offset + remaining],
                    distinct_all[offset : offset + remaining],
                )
                if consumed:
                    t += consumed * dt
                    offset += consumed
                    chunk = self._SCALAR_CHUNK
                    continue
            step = chunk if chunk < remaining else remaining
            shim.now = t
            p.run_span(
                shim, t + step * dt,
                _precomputed=(
                    records_all[offset : offset + step],
                    payload_all[offset : offset + step],
                    distinct_all[offset : offset + step],
                ),
            )
            t += step * dt
            offset += step
            chunk *= 2

    def _vector_prefix(
        self,
        p: _FlowPipeline,
        now: int,
        dt: int,
        count: int,
        records_col: list,
        payload_col: list,
        distinct_col: list,
    ) -> int:
        """Run the longest viable closed-form prefix of ``count`` ticks.

        Returns the number of ticks consumed: 0 when the very first
        tick violates a hoisted cap (the caller falls back to a scalar
        chunk), otherwise the prefix length up to (excluding) the first
        violating tick. Assumes the recurrence state is empty on entry.
        """
        first_tick = now + dt
        stream = p.stream
        cluster = p.cluster
        table = p.table
        span_end = now + count * dt

        # Capacity hoist — same call order as the scalar reference, so
        # pending changes ripening at the first tick apply (and publish
        # their bus events) at exactly the same point.
        record_cap = stream.write_capacity_records(first_tick) * dt
        byte_cap = stream.write_capacity_bytes(first_tick) * dt
        shards = stream.shard_count(first_tick)
        stream_read_cap = shards * stream.config.read_records_per_shard_per_second * dt
        fleet = cluster.fleet
        vms = fleet.running_count(first_tick)
        analytics_cap = cluster._capacity_this_tick(vms, first_tick) * dt
        poll_limit = int(analytics_cap * cluster.config.poll_factor)
        provisioned_vms = fleet.provisioned_count(first_tick)
        billable_vms = fleet.billable_count(first_tick)
        write_units = table.write_capacity(first_tick)
        eff_write_units = table.effective_write_capacity(first_tick)
        read_units_cap = table.read_capacity(first_tick)
        eff_read_units = table.effective_read_capacity(first_tick)
        write_cap = eff_write_units * dt
        read_cap = eff_read_units * dt
        write_bucket_cap = table.config.burst_seconds * write_units
        read_bucket_cap = table.config.burst_seconds * read_units_cap

        # Viability, part 2: a tick's draws must clear every hoisted
        # cap, or that tick throttles / buffers somewhere in the chain
        # and the recurrence state goes live. The closed-form columns
        # run up to the *first* violating tick; the caller continues
        # from there (violating tick included) on the scalar reference
        # with the remaining pre-drawn columns.
        records = np.asarray(records_col, dtype=np.int64)
        payload = np.asarray(payload_col, dtype=np.int64)
        record_limit = min(record_cap, stream_read_cap, poll_limit, analytics_cap)
        violating = (
            (records > record_limit)
            | (payload > byte_cap)
            | (payload * records >= _EXACT_PRODUCT_LIMIT)
        )
        viable = int(np.argmax(violating)) if violating.any() else count
        if viable == 0:
            return 0
        if viable < count:
            count = viable
            span_end = now + viable * dt
            records = records[:viable]
            payload = payload[:viable]
            records_col = records_col[:viable]
            payload_col = payload_col[:viable]
            distinct_col = distinct_col[:viable]

        # --- Closed-form columns -------------------------------------
        times = np.arange(first_tick, span_end + dt, dt, dtype=np.int64)
        zeros_i, zeros_f = self._zero_columns(count)

        # Analytics: window walk. Flush boundaries partition the span
        # into the exact segments the scalar loop draws its CPU-noise
        # normals in, with each window's flush Poisson interleaved at
        # the same bitstream position.
        window_seconds = cluster.config.window_seconds
        distinct_estimator = cluster._distinct_estimator
        storm_poisson = cluster._rng.poisson
        noise_std = cluster.config.cpu_noise_std
        storm_normal = cluster._rng.normal
        wk = cluster._window_keys
        wr = cluster._window_records
        we = cluster._window_elapsed
        noise_parts: list[np.ndarray] = []
        flush_writes: dict[int, int] = {}
        i = 0
        while i < count:
            seg = -(-(window_seconds - we) // dt)
            if seg < 1:
                seg = 1
            trunc = seg if seg <= count - i else count - i
            if noise_std:
                noise_parts.append(storm_normal(0.0, noise_std, size=trunc))
            wk += sum(distinct_col[i : i + trunc])
            wr += sum(records_col[i : i + trunc])
            we += trunc * dt
            if trunc == seg:
                if distinct_estimator is not None:
                    expected = distinct_estimator(wr)
                    writes = int(storm_poisson(expected)) if expected > 0 else 0
                else:
                    ticks_in_window = max(1, we // dt)
                    writes = int(round(wk / ticks_in_window))
                if writes:
                    flush_writes[i + seg - 1] = writes
                wk = 0.0
                wr = 0
                we = 0
            i += trunc

        if vms > 0:
            if analytics_cap > 0:
                s_cpu = cluster.config.cpu_idle_percent + (
                    100.0 - cluster.config.cpu_idle_percent
                ) * (records / analytics_cap)
            else:
                s_cpu = np.full(count, float(cluster.config.cpu_idle_percent))
        else:
            s_cpu = zeros_f
        if noise_std:
            s_cpu = s_cpu + np.concatenate(noise_parts)
        s_cpu = np.minimum(100.0, np.maximum(0.0, s_cpu))
        s_writes = zeros_i.copy() if flush_writes else zeros_i
        for fi, writes in flush_writes.items():
            s_writes[fi] = writes

        # Kinesis: all draws clear every cap, so accepted == handed ==
        # processed == records, nothing buffers and nothing throttles.
        if record_cap:
            k_util = (100.0 * records) / record_cap
        else:
            k_util = zeros_f
        smoothed_rate = stream._smoothed_rate
        alpha = min(1.0, dt / 60.0)
        for r in records_col:
            smoothed_rate += alpha * (r / dt - smoothed_rate)

        # Storage writes: non-zero only at flush ticks, so the burst
        # bucket refills monotonically between them — min(cap, b0 + k *
        # write_cap) is exactly the per-tick recurrence (integer-valued
        # float adds below 2**53) — and each flush tick replays the
        # scalar accept/burst/refill arithmetic verbatim. If a flush
        # overflows into a write backlog, the rest of the span's write
        # side continues with the full scalar recurrence.
        d_consumed = np.zeros(count, dtype=np.int64)
        d_throttled = np.zeros(count, dtype=np.int64)
        d_burst = np.empty(count, dtype=np.float64)
        b = table._burst_bucket
        write_backlog = 0
        dropped_writes = 0
        two_write_cap = 2 * write_cap
        max_backlog = p.MAX_BACKLOG
        scalar_from = None
        prev = -1
        for fi in sorted(flush_writes):
            units = flush_writes[fi]
            gap = fi - prev - 1
            if gap:
                d_burst[prev + 1 : fi] = np.minimum(
                    write_bucket_cap,
                    b + write_cap * np.arange(1, gap + 1, dtype=np.float64),
                )
                b = float(d_burst[fi - 1])
            write_accepted = min(units, write_cap)
            excess = units - write_accepted
            if excess > 0 and b > 0:
                from_burst = int(min(excess, b))
                write_accepted += from_burst
                excess -= from_burst
                b -= from_burst
            unused = max(0, write_cap - units)
            b = min(write_bucket_cap, b + unused)
            d_consumed[fi] = write_accepted
            d_throttled[fi] = excess
            d_burst[fi] = b
            prev = fi
            if excess > 0:
                write_backlog = excess
                if write_backlog > max_backlog:
                    dropped_writes += write_backlog - max_backlog
                    write_backlog = max_backlog
                scalar_from = fi + 1
                break
        if scalar_from is None:
            gap = count - 1 - prev
            if gap:
                d_burst[prev + 1 : count] = np.minimum(
                    write_bucket_cap,
                    b + write_cap * np.arange(1, gap + 1, dtype=np.float64),
                )
                b = float(d_burst[count - 1])
        else:
            for j in range(scalar_from, count):
                retry_writes = min(write_backlog, two_write_cap)
                units = flush_writes.get(j, 0) + retry_writes
                write_accepted = min(units, write_cap)
                excess = units - write_accepted
                if excess > 0 and b > 0:
                    from_burst = int(min(excess, b))
                    write_accepted += from_burst
                    excess -= from_burst
                    b -= from_burst
                unused = max(0, write_cap - units)
                b = min(write_bucket_cap, b + unused)
                write_backlog = write_backlog - retry_writes + excess
                if write_backlog > max_backlog:
                    dropped_writes += write_backlog - max_backlog
                    write_backlog = max_backlog
                d_consumed[j] = write_accepted
                d_throttled[j] = excess
                d_burst[j] = b
        if write_cap:
            d_util = (100.0 * d_consumed) / write_cap
        else:
            d_util = zeros_f

        # Dashboard reads: the whole span's Poissons in one draw
        # (elementwise bit-identical to the scalar sequence; zero-rate
        # ticks consume no bits, matching the scalar guard), then a
        # monotone bucket refill while no tick dips into burst.
        read_burst = table._read_burst_bucket
        if p.read_workload is not None:
            read_grid = p._read_grid
            if read_grid is None or read_grid.step != dt:
                read_grid = p._read_grid = RateGrid(p.read_workload, dt)
            lam = np.asarray(read_grid.rates_span(first_tick, count), dtype=np.float64) * dt
            if count and (lam <= 0.0).any():
                lam = np.clip(lam, 0.0, None)
            read_units = p._read_rng.poisson(lam).astype(np.int64, copy=False)
            max_read = int(read_units.max()) if count else 0
            if max_read <= read_cap:
                d_read_consumed = read_units
                d_read_throttled = zeros_i
                refill = np.cumsum(read_cap - read_units, dtype=np.float64)
                read_burst_col = np.minimum(read_bucket_cap, read_burst + refill)
                if count:
                    read_burst = float(read_burst_col[count - 1])
            else:
                d_read_consumed = np.empty(count, dtype=np.int64)
                d_read_throttled = np.empty(count, dtype=np.int64)
                rb = read_burst
                for idx, units in enumerate(read_units.tolist()):
                    read_accepted = min(units, read_cap)
                    read_excess = units - read_accepted
                    if read_excess > 0 and rb > 0:
                        from_burst = int(min(read_excess, rb))
                        read_accepted += from_burst
                        read_excess -= from_burst
                        rb -= from_burst
                    read_unused = max(0, read_cap - units)
                    rb = min(read_bucket_cap, rb + read_unused)
                    d_read_consumed[idx] = read_accepted
                    d_read_throttled[idx] = read_excess
                read_burst = rb
            if read_cap:
                d_read_util = (100.0 * d_read_consumed) / read_cap
            else:
                d_read_util = zeros_f
        else:
            d_read_consumed = zeros_i
            d_read_throttled = zeros_i
            d_read_util = zeros_f

        # --- State write-back (mirrors the scalar reference) ---------
        span_accepted = sum(records_col)
        span_writes = sum(flush_writes.values())
        p._write_backlog = write_backlog
        if dropped_writes:
            p.dropped_writes += dropped_writes
        stream._smoothed_rate = smoothed_rate
        stream.total_accepted_records += span_accepted
        stream.total_read_records += span_accepted
        cluster.total_processed += span_accepted
        cluster.total_writes_emitted += span_writes
        table.total_write_accepted += int(d_consumed.sum())
        cluster._window_keys = wk
        cluster._window_records = wr
        cluster._window_elapsed = we
        cluster._tick_cpu = float(s_cpu[count - 1])
        cluster._tick_processed = records_col[count - 1]
        cluster._tick_writes_emitted = flush_writes.get(count - 1, 0)
        table._burst_bucket = float(b)
        table._read_burst_bucket = float(read_burst)

        # --- Columnar emission + costs (same order, same values) -----
        cloudwatch = p.cloudwatch
        stream.emit_metrics_span(
            cloudwatch, times, records, payload, zeros_i, records,
            k_util, zeros_i, zeros_f, shards,
        )
        cluster.emit_metrics_span(
            cloudwatch, times, s_cpu, records, zeros_i, s_writes,
            vms, provisioned_vms,
        )
        table.emit_metrics_span(
            cloudwatch, times, d_consumed, d_throttled, d_util, d_burst,
            d_read_consumed, d_read_throttled, d_read_util,
            write_units, read_units_cap,
        )

        span_seconds = count * dt
        meters = p.cost_meters
        meters["ingestion"].accrue(shards, span_seconds)
        meters["ingestion"].record_usage(span_accepted)
        meters["analytics"].accrue(billable_vms, span_seconds)
        meters["storage"].accrue(write_units, span_seconds)
        meters["storage_reads"].accrue(read_units_cap, span_seconds)
        return count

"""Exception hierarchy for the Flower reproduction.

Every error raised by the library derives from :class:`FlowerError`,
so callers can catch library failures with a single except clause
without swallowing unrelated bugs.
"""

from __future__ import annotations


class FlowerError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(FlowerError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(FlowerError):
    """The simulation engine or clock was used incorrectly."""


class ServiceError(FlowerError):
    """A simulated cloud service rejected an operation."""


class CapacityError(ServiceError):
    """A capacity change violated a service limit (e.g. below minimum)."""


class TransientAPIError(ServiceError):
    """A simulated control-plane API call failed transiently.

    Raised by services under injected fault windows (e.g. a DynamoDB
    ``UpdateTable`` storm). Retryable by design: actuators wrap these
    calls with bounded retry and a circuit breaker rather than letting
    them abort the simulation.
    """


class RegionCapacityError(CapacityError, TransientAPIError):
    """A capacity change exceeded the *region's* remaining headroom.

    Truthful on both axes: it is a :class:`CapacityError` (the account
    genuinely has no room left for the requested shards / instances /
    provisioned units) and a :class:`TransientAPIError` (another flow
    scaling down, or the coordinator revoking a grant, can free the
    headroom), so the existing retry + circuit-breaker actuator stack
    absorbs region denials without special-casing them.
    """


class ThrottlingError(ServiceError):
    """An operation exceeded provisioned throughput.

    Simulated services normally report throttling through their return
    values and metrics; this exception exists for strict-mode callers
    that prefer failures to silent partial acceptance.
    """


class OptimizationError(FlowerError):
    """The optimizer was misconfigured or failed to produce a result."""


class RegressionError(FlowerError):
    """Dependency analysis received unusable data."""


class ControlError(FlowerError):
    """A controller or control loop was misconfigured."""


class MonitoringError(FlowerError):
    """A metric query or dashboard request could not be satisfied."""

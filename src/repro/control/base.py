"""Controller, sensor and actuator abstractions.

Flower's controllers are "equipped with two key components: sensor and
actuator. The sensor module is responsible for providing resource usage
stats as per the specified monitoring window. The actuator is capable
of executing the controllers' commands, such as adding or removing VMs
and increasing or decreasing number of Shards." (Sec. 2)

The :class:`ControlLoop` glues the three together at a monitoring
period and records every decision, which is what the dashboards and the
evaluation metrics consume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.errors import ControlError


class Sensor(ABC):
    """Provides the controlled variable ``y_k`` (e.g. CPU utilisation)."""

    @abstractmethod
    def measure(self, now: int) -> float | None:
        """The aggregated measurement over the monitoring window ending
        at ``now``, or None if no data is available yet."""


class Actuator(ABC):
    """Reads and writes the manipulated variable ``u_k`` (capacity)."""

    @abstractmethod
    def get(self, now: int) -> float:
        """Current capacity set-point."""

    @abstractmethod
    def apply(self, target: float, now: int) -> float:
        """Request a new capacity; returns the value actually applied
        (after clamping to service limits, rounding, in-flight checks)."""


class Controller(ABC):
    """Maps (current capacity, measurement) to the next capacity."""

    @abstractmethod
    def compute(self, u_current: float, y_measured: float, now: int) -> float:
        """Eq. 6's ``u_{k+1}`` given ``u_k`` and ``y_k``."""

    def reset(self) -> None:
        """Forget internal state (gain history, estimators, cooldowns)."""


@dataclass(frozen=True)
class ControlRecord:
    """One control-loop invocation, for post-hoc analysis."""

    time: int
    measurement: float
    capacity_before: float
    capacity_requested: float
    capacity_applied: float

    @property
    def acted(self) -> bool:
        return self.capacity_applied != self.capacity_before


@dataclass
class ControlLoop:
    """Sensor → controller → actuator at a fixed monitoring period.

    The loop tolerates missing sensor data (e.g. the first window of a
    run) by skipping the invocation — controllers never see synthetic
    zeros.

    **Integrator state.** Real actuators are quantized (you cannot run
    1.75 VMs), so integrating on the *applied* capacity would deadlock
    whenever ``gain * error`` rounds below one unit. The loop therefore
    integrates on a real-valued internal state and re-synchronizes it to
    the applied capacity whenever they drift more than one unit apart —
    which is exactly the anti-windup behaviour needed when an actuator
    clamps at a service limit or rejects a change mid-reshard.
    """

    name: str
    sensor: Sensor
    controller: Controller
    actuator: Actuator
    period: int = 60
    records: list[ControlRecord] = field(default_factory=list)
    _integrator: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ControlError(f"loop {self.name!r}: period must be positive")

    def step(self, now: int) -> ControlRecord | None:
        """Run one control period; returns the record, or None if skipped."""
        measurement = self.sensor.measure(now)
        if measurement is None:
            return None
        current = self.actuator.get(now)
        if self._integrator is None or abs(self._integrator - current) > 1.0:
            self._integrator = current
        requested = self.controller.compute(self._integrator, measurement, now)
        applied = self.actuator.apply(requested, now)
        self._integrator = requested
        record = ControlRecord(
            time=now,
            measurement=measurement,
            capacity_before=current,
            capacity_requested=requested,
            capacity_applied=applied,
        )
        self.records.append(record)
        return record

    @property
    def actions_taken(self) -> int:
        """Number of invocations that changed capacity."""
        return sum(1 for record in self.records if record.acted)

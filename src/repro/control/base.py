"""Controller, sensor and actuator abstractions.

Flower's controllers are "equipped with two key components: sensor and
actuator. The sensor module is responsible for providing resource usage
stats as per the specified monitoring window. The actuator is capable
of executing the controllers' commands, such as adding or removing VMs
and increasing or decreasing number of Shards." (Sec. 2)

The :class:`ControlLoop` glues the three together at a monitoring
period and records every decision, which is what the dashboards and the
evaluation metrics consume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.errors import ControlError
from repro.observability.decisions import ControlDecision, DecisionLog
from repro.observability.events import EventBus
from repro.observability.telemetry import Telemetry


class Sensor(ABC):
    """Provides the controlled variable ``y_k`` (e.g. CPU utilisation)."""

    #: Optional flight-recorder hooks; set via :meth:`instrument`. Class
    #: attributes so uninstrumented sensors pay a single attribute
    #: lookup and no per-instance state.
    _bus: EventBus | None = None
    _bus_layer: str = ""

    @abstractmethod
    def measure(self, now: int) -> float | None:
        """The aggregated measurement over the monitoring window ending
        at ``now``, or None if no data is available yet."""

    def instrument(self, bus: EventBus, layer: str) -> None:
        """Publish sensing anomalies (degraded reads, recoveries) to a
        flight-recorder event bus under the given layer label."""
        self._bus = bus
        self._bus_layer = layer


class Actuator(ABC):
    """Reads and writes the manipulated variable ``u_k`` (capacity)."""

    #: Optional flight-recorder hooks; set via :meth:`instrument`. Class
    #: attributes so uninstrumented actuators pay a single attribute
    #: lookup and no per-instance state.
    _bus: EventBus | None = None
    _bus_layer: str = ""

    @abstractmethod
    def get(self, now: int) -> float:
        """Current capacity set-point."""

    @abstractmethod
    def apply(self, target: float, now: int) -> float:
        """Request a new capacity; returns the value actually applied
        (after clamping to service limits, rounding, in-flight checks)."""

    def instrument(self, bus: EventBus, layer: str) -> None:
        """Publish actuation anomalies (clamps, rejected updates) to a
        flight-recorder event bus under the given layer label."""
        self._bus = bus
        self._bus_layer = layer

    def _publish_adjusted(self, now: int, requested: float, actual: float) -> None:
        """Record that the service altered a command (limit clamp, or a
        rejection while a previous change was still in flight)."""
        if self._bus is not None:
            self._bus.publish(
                now,
                self._bus_layer,
                "actuation.adjusted",
                {"requested": requested, "actual": actual},
            )


class Controller(ABC):
    """Maps (current capacity, measurement) to the next capacity."""

    @abstractmethod
    def compute(self, u_current: float, y_measured: float, now: int) -> float:
        """Eq. 6's ``u_{k+1}`` given ``u_k`` and ``y_k``."""

    def reset(self) -> None:
        """Forget internal state (gain history, estimators, cooldowns)."""

    def explain(self) -> dict[str, object]:
        """Introspection payload for the last :meth:`compute` call.

        Concrete controllers return the Eq. 6–7 internals the decision
        audit log records (``reference``, ``error``, ``gain``,
        ``memory_recalled``, ``memory_gain``, ...). The default — for
        controllers with nothing meaningful to expose — is empty.
        """
        return {}


@dataclass(frozen=True)
class ControlRecord:
    """One control-loop invocation, for post-hoc analysis."""

    time: int
    measurement: float
    capacity_before: float
    capacity_requested: float
    capacity_applied: float

    @property
    def acted(self) -> bool:
        return self.capacity_applied != self.capacity_before


@dataclass
class ControlLoop:
    """Sensor → controller → actuator at a fixed monitoring period.

    The loop tolerates missing sensor data (e.g. the first window of a
    run) by skipping the invocation — controllers never see synthetic
    zeros.

    **Integrator state.** Real actuators are quantized (you cannot run
    1.75 VMs), so integrating on the *applied* capacity would deadlock
    whenever ``gain * error`` rounds below one unit. The loop therefore
    integrates on a real-valued internal state and re-synchronizes it to
    the applied capacity whenever they drift more than one unit apart —
    which is exactly the anti-windup behaviour needed when an actuator
    clamps at a service limit or rejects a change mid-reshard.
    """

    name: str
    sensor: Sensor
    controller: Controller
    actuator: Actuator
    period: int = 60
    records: list[ControlRecord] = field(default_factory=list)
    #: Flight-recorder hooks (both optional and off by default): the
    #: decision audit log receives a full :class:`ControlDecision` per
    #: invocation; the event bus receives ``scale.up``/``scale.down``
    #: events whenever the applied capacity changes.
    decision_log: DecisionLog | None = None
    event_bus: EventBus | None = None
    #: Always-on telemetry registry (counters sampled once per control
    #: boundary; ``None`` disables the sampling entirely).
    telemetry: Telemetry | None = None
    _integrator: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ControlError(f"loop {self.name!r}: period must be positive")

    def step(self, now: int) -> ControlRecord | None:
        """Run one control period; returns the record, or None if skipped.

        With an event bus attached, the whole invocation runs inside a
        causal trace context (``loop@time``): sensing anomalies,
        retries, clamps, scale events and any capacity transition the
        actuation starts all share the invocation's trace id — the
        MAPE-loop chain the flight recorder reconstructs.
        """
        bus = self.event_bus
        if bus is not None:
            bus.begin_trace(f"{self.name}@{now}")
        try:
            record = self._step(now)
        finally:
            if bus is not None:
                bus.end_trace()
        return record

    def _step(self, now: int) -> ControlRecord | None:
        measurement = self.sensor.measure(now)
        if measurement is None:
            if self.telemetry is not None:
                self.telemetry.inc(f"control.{self.name}.skipped")
            return None
        current = self.actuator.get(now)
        if self._integrator is None or abs(self._integrator - current) > 1.0:
            self._integrator = current
        state_before = self._integrator
        requested = self.controller.compute(state_before, measurement, now)
        applied = self.actuator.apply(requested, now)
        self._integrator = requested
        record = ControlRecord(
            time=now,
            measurement=measurement,
            capacity_before=current,
            capacity_requested=requested,
            capacity_applied=applied,
        )
        self.records.append(record)
        if self.telemetry is not None:
            self._record_telemetry(record)
        if self.decision_log is not None or self.event_bus is not None:
            self._record_decision(now, measurement, state_before, current, requested, applied)
        return record

    def _record_telemetry(self, record: ControlRecord) -> None:
        """Per-boundary counters: one dict increment each, no hot-path
        cost (control boundaries are tens of simulated seconds apart)."""
        telemetry = self.telemetry
        name = self.name
        telemetry.inc(f"control.{name}.decisions")
        if record.acted:
            telemetry.inc(f"control.{name}.actions")
            telemetry.observe(
                f"control.{name}.step_size",
                abs(record.capacity_applied - record.capacity_before),
            )
        if record.capacity_applied != record.capacity_requested:
            telemetry.inc(f"control.{name}.clamps")
        if getattr(self.sensor, "last_stale", False):
            telemetry.inc(f"control.{name}.stale_reads")

    def _record_decision(
        self,
        now: int,
        measurement: float,
        state_before: float,
        current: float,
        requested: float,
        applied: float,
    ) -> None:
        """Flight-recorder capture: off the hot path, only runs when a
        decision log or event bus is attached."""
        info = self.controller.explain()
        if self.decision_log is not None:
            reference = info.get("reference")
            error = info.get("error")
            gain = info.get("gain")
            memory_gain = info.get("memory_gain")
            self.decision_log.record(
                ControlDecision(
                    time=now,
                    loop=self.name,
                    sensed=measurement,
                    state_before=state_before,
                    capacity_before=current,
                    raw_command=requested,
                    applied_command=applied,
                    reference=float(reference) if reference is not None else None,
                    error=float(error) if error is not None else None,
                    gain=float(gain) if gain is not None else None,
                    memory_recalled=bool(info.get("memory_recalled", False)),
                    memory_gain=float(memory_gain) if memory_gain is not None else None,
                    trace=self.event_bus.active_trace if self.event_bus else None,
                )
            )
        if self.event_bus is not None and applied != current:
            kind = "scale.up" if applied > current else "scale.down"
            self.event_bus.publish(
                now,
                self.name,
                kind,
                {"from": current, "to": applied, "requested": requested},
            )

    @property
    def actions_taken(self) -> int:
        """Number of invocations that changed capacity."""
        return sum(1 for record in self.records if record.acted)

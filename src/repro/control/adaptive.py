"""Flower's adaptive-gain integral controller (paper Eq. 6–7).

The control law is

    u_{k+1} = u_k + l_{k+1} * (y_k - y_r)                       (Eq. 6)

with the gain updated by the bounded adaptation law

    l_{k+1} = clamp(l_k + gamma * (y_k - y_r), l_min, l_max)    (Eq. 7)

where ``y`` is the monitored resource utilisation, ``y_r`` the desired
reference value, ``gamma > 0`` the adaptation rate and
``0 < l_min <= l_max`` the gain bounds that give the stability
guarantee of the companion paper [9].

On top of Eq. 6–7 this implementation adds the paper's distinguishing
feature: a :class:`~repro.control.gain_memory.GainMemory` holding "the
history of the previously computed control gains for rapid elasticity".
When the control error moves into a regime the controller has operated
in before, the gain warm-starts from the remembered value instead of
adapting step-by-step from wherever it happens to be.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.base import Controller
from repro.control.gain_memory import GainMemory
from repro.core.errors import ControlError


@dataclass(frozen=True)
class AdaptiveGainConfig:
    """Parameters of Eq. 6–7 plus the gain-memory switch.

    Attributes
    ----------
    reference:
        ``y_r``, the desired sensor value (e.g. 60 % utilisation).
    gamma:
        Gain adaptation rate (Eq. 7's ``gamma > 0``).
    l_min / l_max:
        Gain bounds (Eq. 7); both must be positive with
        ``l_min <= l_max``.
    l_init:
        Starting gain; defaults to ``l_min`` (the cautious end).
    use_memory:
        Enable the gain-memory warm start (Flower's novel feature).
        Disabling it yields the plain Eq. 6–7 controller, which is what
        the gain-memory ablation benchmark compares against.
    memory_bin_width:
        Error quantization of the regime buckets, in sensor units.
    deadband:
        Errors with ``|y_k - y_r| <= deadband`` produce no actuation or
        adaptation; avoids churning integer capacities on noise.
    """

    reference: float
    gamma: float
    l_min: float
    l_max: float
    l_init: float | None = None
    use_memory: bool = True
    memory_bin_width: float = 10.0
    deadband: float = 0.0

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ControlError(f"gamma must be positive, got {self.gamma}")
        if not 0 < self.l_min <= self.l_max:
            raise ControlError(
                f"need 0 < l_min <= l_max, got l_min={self.l_min}, l_max={self.l_max}"
            )
        if self.l_init is not None and not self.l_min <= self.l_init <= self.l_max:
            raise ControlError(
                f"l_init={self.l_init} outside [{self.l_min}, {self.l_max}]"
            )
        if self.deadband < 0:
            raise ControlError(f"deadband must be non-negative, got {self.deadband}")
        if self.memory_bin_width <= 0:
            raise ControlError("memory_bin_width must be positive")


@dataclass
class AdaptiveGainController(Controller):
    """Eq. 6–7 with multi-stage gain memory."""

    config: AdaptiveGainConfig
    gain: float = field(init=False)
    memory: GainMemory | None = field(init=False)
    _last_bucket: int | None = field(default=None, init=False)
    _last_explain: dict[str, object] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        self.gain = self.config.l_init if self.config.l_init is not None else self.config.l_min
        self.memory = (
            GainMemory(bin_width=self.config.memory_bin_width) if self.config.use_memory else None
        )

    def compute(self, u_current: float, y_measured: float, now: int) -> float:
        error = y_measured - self.config.reference
        if abs(error) <= self.config.deadband:
            self._last_bucket = None
            self._last_explain = {
                "reference": self.config.reference,
                "error": error,
                "gain": None,  # deadband skip: no actuation term exists
                "deadband": True,
            }
            return u_current

        cfg = self.config
        memory_recalled = False
        memory_gain: float | None = None
        if self.memory is not None:
            bucket = self.memory.bucket(error)
            if bucket != self._last_bucket:
                remembered = self.memory.recall(error)
                if remembered is not None:
                    # Regime re-entry: warm-start from the gain this
                    # regime converged to last time (rapid elasticity).
                    self.gain = min(cfg.l_max, max(cfg.l_min, remembered))
                    memory_recalled = True
                    memory_gain = self.gain
            self._last_bucket = bucket

        # Eq. 7: bounded gain adaptation.
        self.gain = min(cfg.l_max, max(cfg.l_min, self.gain + cfg.gamma * error))
        if self.memory is not None:
            self.memory.remember(error, self.gain)

        self._last_explain = {
            "reference": cfg.reference,
            "error": error,
            "gain": self.gain,
            "memory_recalled": memory_recalled,
            "memory_gain": memory_gain,
            "delta": self.gain * error,
        }
        # Eq. 6: integral action with the adapted gain.
        return u_current + self.gain * error

    def explain(self) -> dict[str, object]:
        """Eq. 6–7 internals of the last :meth:`compute` call."""
        return dict(self._last_explain)

    def reset(self) -> None:
        self.gain = self.config.l_init if self.config.l_init is not None else self.config.l_min
        self._last_bucket = None
        self._last_explain = {}
        if self.memory is not None:
            self.memory.clear()

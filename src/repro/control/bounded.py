"""Bounded actuators: enforcing the share-analysis upper bounds.

Flower's architecture (Sec. 2): "Once the upper bound resource shares
for each layer are identified, an adaptive controller at each of the
three layers automatically adjusts resource allocations of that layer."
The controllers are free within their layer's share — but never beyond
it, because the shares are what keep the whole flow inside the budget
(Eq. 4).

:class:`BoundedActuator` wraps any actuator with such a cap (and an
optional floor); the manager applies one around every layer's actuator
when the user supplies resource shares.
"""

from __future__ import annotations

from repro.control.base import Actuator
from repro.core.errors import ControlError


class BoundedActuator(Actuator):
    """Clamps another actuator's commands to ``[floor, cap]``."""

    def __init__(self, inner: Actuator, cap: float, floor: float = 1.0) -> None:
        if cap < floor:
            raise ControlError(f"cap {cap} is below floor {floor}")
        self.inner = inner
        self.cap = float(cap)
        self.floor = float(floor)
        self._clamped_requests = 0

    def get(self, now: int) -> float:
        return self.inner.get(now)

    def apply(self, target: float, now: int) -> float:
        clamped = max(self.floor, min(self.cap, target))
        if clamped != target:
            self._clamped_requests += 1
            if self._bus is not None:
                self._bus.publish(
                    now,
                    self._bus_layer,
                    "share.clamp",
                    {"requested": target, "clamped": clamped,
                     "cap": self.cap, "floor": self.floor},
                )
        return self.inner.apply(clamped, now)

    def instrument(self, bus, layer: str) -> None:
        """Instrument both the bound and the wrapped actuator."""
        super().instrument(bus, layer)
        self.inner.instrument(bus, layer)

    @property
    def clamped_requests(self) -> int:
        """How often the budget bound overrode the controller."""
        return self._clamped_requests

"""Resource provisioning controllers (paper Sec. 3.3).

The centerpiece is Flower's adaptive integral controller (Eq. 6–7):
``u_{k+1} = u_k + l_{k+1}(y_k - y_r)`` with the gain ``l`` adaptively
updated and clamped to ``[l_min, l_max]``, extended with a *memory of
recent controller decisions* for rapid elasticity. Baselines from the
paper's related work are included for the comparison experiments:
fixed-gain integral control [12], quasi-adaptive control [14] and the
rule-based threshold autoscaling of cloud providers [1].
"""

from repro.control.actuators import (
    CallbackActuator,
    DynamoDBReadActuator,
    DynamoDBWriteActuator,
    KinesisShardActuator,
    StormVMActuator,
)
from repro.control.adaptive import AdaptiveGainController, AdaptiveGainConfig
from repro.control.base import Actuator, Controller, ControlLoop, ControlRecord, Sensor
from repro.control.bounded import BoundedActuator
from repro.control.fixed_gain import FixedGainConfig, FixedGainController
from repro.control.gain_memory import GainMemory
from repro.control.quasi_adaptive import QuasiAdaptiveConfig, QuasiAdaptiveController
from repro.control.rule_based import RuleBasedConfig, RuleBasedController
from repro.control.sensors import CloudWatchSensor
from repro.control.stability import (
    estimate_process_gain,
    is_stable,
    max_stable_gain,
    suggest_gain_bounds,
)

__all__ = [
    "Sensor",
    "Actuator",
    "Controller",
    "ControlLoop",
    "ControlRecord",
    "CloudWatchSensor",
    "CallbackActuator",
    "BoundedActuator",
    "KinesisShardActuator",
    "StormVMActuator",
    "DynamoDBWriteActuator",
    "DynamoDBReadActuator",
    "AdaptiveGainController",
    "AdaptiveGainConfig",
    "GainMemory",
    "FixedGainController",
    "FixedGainConfig",
    "QuasiAdaptiveController",
    "QuasiAdaptiveConfig",
    "RuleBasedController",
    "RuleBasedConfig",
    "estimate_process_gain",
    "max_stable_gain",
    "is_stable",
    "suggest_gain_bounds",
]

"""Stability analysis helpers for the integral control loops.

The companion paper [9] provides "a rigorous stability analysis of the
resulting controllers"; this module reproduces its practical output:
the bound on the integral gain that keeps the closed loop stable, and
an empirical estimator of the process gain from logged traces.

For the discrete integral loop ``u_{k+1} = u_k + l * (y_k - y_r)`` with
a locally linear plant ``delta_y ~ b * delta_u`` (``b < 0`` for a
utilisation sensor: adding capacity lowers utilisation), the error
dynamics are ``e_{k+1} = (1 + l*b) * e_k``, so the loop is
asymptotically stable iff ``|1 + l*b| < 1`` — i.e. ``0 < l < 2/|b|``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ControlError


def is_stable(gain: float, process_gain: float) -> bool:
    """Whether ``|1 + gain * process_gain| < 1`` for a sign-correct loop.

    ``process_gain`` is the signed plant sensitivity ``dy/du``; for a
    utilisation loop it is negative. A positive ``process_gain`` means
    the loop sign convention is wrong and the loop cannot be stabilized
    by a positive gain at all.
    """
    if gain <= 0:
        raise ControlError(f"gain must be positive, got {gain}")
    return abs(1.0 + gain * process_gain) < 1.0


def max_stable_gain(process_gain: float) -> float:
    """The supremum ``2/|b|`` of stabilizing gains."""
    if process_gain == 0:
        raise ControlError("process gain of zero: the actuator does not affect the sensor")
    return 2.0 / abs(process_gain)


def suggest_gain_bounds(process_gain: float, safety: float = 0.5) -> tuple[float, float]:
    """Eq. 7 bounds derived from the stability limit.

    ``l_max`` is ``safety`` times the stability supremum (default: half,
    which also yields deadbeat-or-slower behaviour rather than
    oscillation); ``l_min`` is two orders of magnitude below ``l_max``.
    """
    if not 0 < safety < 1:
        raise ControlError(f"safety must be in (0, 1), got {safety}")
    l_max = safety * max_stable_gain(process_gain)
    return l_max / 100.0, l_max


def estimate_process_gain(u_values: Sequence[float], y_values: Sequence[float]) -> float:
    """Estimate the signed plant sensitivity ``b = dy/du`` from logs.

    Fits the through-origin model ``delta_y = b * delta_u`` by least
    squares over the steps where the actuator actually moved (the model
    has no intercept: no actuation, no response). Needs at least three
    moving steps.
    """
    if len(u_values) != len(y_values):
        raise ControlError(f"length mismatch: {len(u_values)} vs {len(y_values)}")
    delta_u: list[float] = []
    delta_y: list[float] = []
    for k in range(1, len(u_values)):
        du = u_values[k] - u_values[k - 1]
        if abs(du) > 1e-12:
            delta_u.append(du)
            delta_y.append(y_values[k] - y_values[k - 1])
    if len(delta_u) < 3:
        raise ControlError(
            f"only {len(delta_u)} actuation steps in the trace; need >= 3 to estimate"
        )
    return sum(du * dy for du, dy in zip(delta_u, delta_y)) / sum(du * du for du in delta_u)

"""Rule-based threshold autoscaler — baseline [1].

"Almost all the auto-scaling systems offered by cloud providers such as
Amazon use simple rule-based techniques that quickly trigger in
response to predefined threshold violations. Although these rules can
identify fatal conditions, they often fail to adapt to unplanned or
unforeseen changes in demand." (Sec. 1)

This is that design: scale up by a fixed step when the measurement
exceeds an upper threshold, down when below a lower threshold, with a
cooldown between actions. Its two failure modes — fixed step size
(too slow for big shocks) and cooldown (blind between actions) — are
what the controller-comparison experiment (E4) surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.base import Controller
from repro.core.errors import ControlError


@dataclass(frozen=True)
class RuleBasedConfig:
    """Threshold-rule parameters (an Amazon-style scaling policy).

    Attributes
    ----------
    upper_threshold / lower_threshold:
        Measurement levels that trigger scale-up / scale-down.
    step_up / step_down:
        Capacity units added / removed per triggered action.
    scale_fraction:
        If set, the step is ``max(step, scale_fraction * u)`` — a
        percentage-based policy variant.
    cooldown:
        Seconds after any action during which the rule will not fire.
    """

    upper_threshold: float
    lower_threshold: float
    step_up: float = 1.0
    step_down: float = 1.0
    scale_fraction: float | None = None
    cooldown: int = 300

    def __post_init__(self) -> None:
        if self.lower_threshold >= self.upper_threshold:
            raise ControlError(
                f"lower_threshold ({self.lower_threshold}) must be below "
                f"upper_threshold ({self.upper_threshold})"
            )
        if self.step_up <= 0 or self.step_down <= 0:
            raise ControlError("steps must be positive")
        if self.scale_fraction is not None and self.scale_fraction <= 0:
            raise ControlError("scale_fraction must be positive")
        if self.cooldown < 0:
            raise ControlError("cooldown must be non-negative")


@dataclass
class RuleBasedController(Controller):
    """Fixed-step threshold scaling with a cooldown."""

    config: RuleBasedConfig
    _last_action_at: int | None = field(default=None, init=False)
    _last_explain: dict[str, object] = field(default_factory=dict, init=False, repr=False)

    def compute(self, u_current: float, y_measured: float, now: int) -> float:
        cfg = self.config
        # There is no gain/reference in a threshold rule; the audit log
        # still gets the rule state that produced (or suppressed) a step.
        self._last_explain = {
            "upper_threshold": cfg.upper_threshold,
            "lower_threshold": cfg.lower_threshold,
            "cooldown_active": False,
            "step": 0.0,
        }
        if self._last_action_at is not None and now - self._last_action_at < cfg.cooldown:
            self._last_explain["cooldown_active"] = True
            return u_current
        if y_measured > cfg.upper_threshold:
            step = cfg.step_up
            if cfg.scale_fraction is not None:
                step = max(step, cfg.scale_fraction * u_current)
            self._last_action_at = now
            self._last_explain["step"] = step
            return u_current + step
        if y_measured < cfg.lower_threshold:
            step = cfg.step_down
            if cfg.scale_fraction is not None:
                step = max(step, cfg.scale_fraction * u_current)
            self._last_action_at = now
            self._last_explain["step"] = -step
            return u_current - step
        return u_current

    def explain(self) -> dict[str, object]:
        """Rule state of the last :meth:`compute` call."""
        return dict(self._last_explain)

    def reset(self) -> None:
        self._last_action_at = None
        self._last_explain = {}

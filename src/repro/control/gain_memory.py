"""Gain memory: the "history of the controller's decisions".

Flower's control system "has the feature of updating the gain
parameters in multi-stages and keeping the history of the previously
computed control gains for rapid elasticity" (Sec. 3.3). A plain
adaptive-gain controller must re-learn its gain from ``l_min`` every
time the workload regime shifts; with memory, the controller
warm-starts from the gain it had converged to the last time it operated
in a similar regime, so a repeated shock (e.g. the same daily peak, or
a second flash crowd) is absorbed in far fewer control periods.

The operating regime is summarised by the *control-error bucket*: the
signed error ``y_k - y_r`` quantized into bands of ``bin_width``. Each
bucket remembers the most recent gain used there (a multi-stage gain
schedule learned online).
"""

from __future__ import annotations

import math

from repro.core.errors import ControlError


class GainMemory:
    """Per-regime store of recently used controller gains."""

    def __init__(self, bin_width: float = 10.0, max_bins: int = 256) -> None:
        if bin_width <= 0:
            raise ControlError(f"bin_width must be positive, got {bin_width}")
        if max_bins <= 0:
            raise ControlError(f"max_bins must be positive, got {max_bins}")
        self.bin_width = bin_width
        self.max_bins = max_bins
        self._gains: dict[int, float] = {}
        self._order: list[int] = []  # LRU eviction order

    def bucket(self, error: float) -> int:
        """Quantize a control error into a regime bucket."""
        return int(math.floor(error / self.bin_width))

    def recall(self, error: float) -> float | None:
        """The gain last used in this error regime, if any.

        A hit counts as a *use*, so it refreshes the regime's recency —
        otherwise a regime recalled every control period (the paper's
        rapid-elasticity case) could be evicted while stale regimes
        survive, which would defeat the LRU policy.
        """
        key = self.bucket(error)
        gain = self._gains.get(key)
        if gain is not None:
            self._order.remove(key)
            self._order.append(key)
        return gain

    def remember(self, error: float, gain: float) -> None:
        """Record ``gain`` as the latest gain for this error regime."""
        if gain <= 0:
            raise ControlError(f"gain must be positive, got {gain}")
        key = self.bucket(error)
        if key in self._gains:
            self._order.remove(key)
        elif len(self._gains) >= self.max_bins:
            evicted = self._order.pop(0)
            del self._gains[evicted]
        self._gains[key] = gain
        self._order.append(key)

    def __len__(self) -> int:
        return len(self._gains)

    def clear(self) -> None:
        self._gains.clear()
        self._order.clear()

    def snapshot(self) -> dict[int, float]:
        """Copy of the regime → gain table (for dashboards/tests)."""
        return dict(self._gains)

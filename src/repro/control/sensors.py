"""Sensors: monitoring-window reads from the metric store.

Flower's sensor module "periodically collects live data from multiple
sources such as CloudWatch" (Sec. 3.3); here the source is the
simulated CloudWatch, which every service pushes its measurements to.

Sensors also carry the control plane's first line of fault tolerance:
when the monitoring layer degrades (injected metric delay or dropout),
a sensor can serve its last good value for a bounded staleness budget
instead of blinding its control loop — surfacing the episode as
``degraded.sensor`` / ``degraded.recovered`` events when instrumented.
"""

from __future__ import annotations

from repro.cloud.cloudwatch import SimCloudWatch, validate_statistic
from repro.control.base import Sensor
from repro.core.errors import ControlError


class CloudWatchSensor(Sensor):
    """Aggregates one CloudWatch metric over a trailing window.

    Any statistic the store supports may be requested, including
    ``pXX`` percentiles (e.g. ``p99`` for tail-latency control); the
    statistic is validated at construction so a typo fails here rather
    than on the first control period. Co-located readers of the same
    (series, window, statistic) — other sensors, alarms, the collector —
    share one aggregation per control period via the store's read memo.

    **Degraded-mode contract.** The store's injected monitoring faults
    shift the queried window into the past (``sensor_delay_seconds``)
    or blank it entirely (``sensor_dropout``). When a read comes back
    empty and ``hold_last_for`` is positive, the sensor returns the
    last good value for up to that many seconds — flagged via
    :attr:`last_stale` — so the loop keeps acting on slightly-old data
    instead of skipping. Past the budget it returns ``None`` and the
    loop skips, which freezes capacity rather than guessing.
    """

    def __init__(
        self,
        cloudwatch: SimCloudWatch,
        namespace: str,
        metric: str,
        window: int = 60,
        statistic: str = "Average",
        dimensions: dict[str, str] | None = None,
        hold_last_for: int = 0,
    ) -> None:
        if window <= 0:
            raise ControlError(f"monitoring window must be positive, got {window}")
        if hold_last_for < 0:
            raise ControlError(f"hold_last_for must be non-negative, got {hold_last_for}")
        validate_statistic(statistic)
        self._cloudwatch = cloudwatch
        self.namespace = namespace
        self.metric = metric
        self.window = window
        self.statistic = statistic
        self.dimensions = dimensions
        self.hold_last_for = hold_last_for
        #: Whether the last :meth:`measure` served a held (stale) value.
        self.last_stale = False
        self._last_value: float | None = None
        self._last_at = 0
        self._degraded = False

    def measure(self, now: int) -> float | None:
        cw = self._cloudwatch
        if cw.sensor_dropout:
            value = float("nan")
        else:
            at = now - cw.sensor_delay_seconds if cw.sensor_delay_seconds else now
            value = cw.get_metric_value(
                self.namespace,
                self.metric,
                now=max(0, at),
                window=self.window,
                statistic=self.statistic,
                dimensions=self.dimensions,
                default=float("nan"),
            )
        if value != value:  # NaN: no datapoints visible
            return self._degrade(now)
        if self._degraded:
            self._degraded = False
            if self._bus is not None:
                self._bus.publish(
                    now, self._bus_layer, "degraded.recovered", {"metric": self.metric}
                )
        self.last_stale = False
        self._last_value = value
        self._last_at = now
        return value

    def _degrade(self, now: int) -> float | None:
        """Missing datapoints: serve the held value while in budget."""
        if (
            self._last_value is not None
            and self.hold_last_for > 0
            and now - self._last_at <= self.hold_last_for
        ):
            self.last_stale = True
            if not self._degraded:
                self._degraded = True
                if self._bus is not None:
                    self._bus.publish(
                        now,
                        self._bus_layer,
                        "degraded.sensor",
                        {"metric": self.metric, "held": self._last_value,
                         "held_from": self._last_at},
                    )
            return self._last_value
        self.last_stale = False
        return None

"""Sensors: monitoring-window reads from the metric store.

Flower's sensor module "periodically collects live data from multiple
sources such as CloudWatch" (Sec. 3.3); here the source is the
simulated CloudWatch, which every service pushes its measurements to.
"""

from __future__ import annotations

from repro.cloud.cloudwatch import SimCloudWatch, validate_statistic
from repro.control.base import Sensor
from repro.core.errors import ControlError


class CloudWatchSensor(Sensor):
    """Aggregates one CloudWatch metric over a trailing window.

    Any statistic the store supports may be requested, including
    ``pXX`` percentiles (e.g. ``p99`` for tail-latency control); the
    statistic is validated at construction so a typo fails here rather
    than on the first control period. Co-located readers of the same
    (series, window, statistic) — other sensors, alarms, the collector —
    share one aggregation per control period via the store's read memo.
    """

    def __init__(
        self,
        cloudwatch: SimCloudWatch,
        namespace: str,
        metric: str,
        window: int = 60,
        statistic: str = "Average",
        dimensions: dict[str, str] | None = None,
    ) -> None:
        if window <= 0:
            raise ControlError(f"monitoring window must be positive, got {window}")
        validate_statistic(statistic)
        self._cloudwatch = cloudwatch
        self.namespace = namespace
        self.metric = metric
        self.window = window
        self.statistic = statistic
        self.dimensions = dimensions

    def measure(self, now: int) -> float | None:
        value = self._cloudwatch.get_metric_value(
            self.namespace,
            self.metric,
            now=now,
            window=self.window,
            statistic=self.statistic,
            dimensions=self.dimensions,
            default=float("nan"),
        )
        return None if value != value else value  # NaN -> no data yet

"""Fixed-gain integral controller — baseline [12].

Lim, Babu and Chase, *Automated control for elastic storage* (ICAC
2010): an integral controller ``u_{k+1} = u_k + l * (y_k - y_r)`` with a
*fixed* gain, paired with "proportional thresholding" — a target band
``[y_low, y_high]`` instead of a single reference — so that coarse
integer actuators (you cannot add half a server) do not oscillate
around an unreachable set-point.

The companion paper [9] uses this design as the fixed-gain baseline
that Flower's adaptive controller outperforms; it is reproduced here
for the controller-comparison experiment (E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.base import Controller
from repro.core.errors import ControlError


@dataclass(frozen=True)
class FixedGainConfig:
    """Parameters of the fixed-gain baseline.

    Attributes
    ----------
    reference:
        ``y_r``; used as the control target when acting.
    gain:
        The fixed integral gain ``l``.
    band_low / band_high:
        Proportional-thresholding band around the reference; the
        controller only acts when the measurement leaves the band.
        Defaults to the bare reference (no band).
    """

    reference: float
    gain: float
    band_low: float | None = None
    band_high: float | None = None

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ControlError(f"gain must be positive, got {self.gain}")
        low = self.band_low if self.band_low is not None else self.reference
        high = self.band_high if self.band_high is not None else self.reference
        if not low <= self.reference <= high:
            raise ControlError(
                f"need band_low <= reference <= band_high, got "
                f"{low} <= {self.reference} <= {high}"
            )


@dataclass
class FixedGainController(Controller):
    """Integral control with a constant gain and an optional dead band."""

    config: FixedGainConfig
    _last_explain: dict[str, object] = field(default_factory=dict, init=False, repr=False)

    def compute(self, u_current: float, y_measured: float, now: int) -> float:
        cfg = self.config
        low = cfg.band_low if cfg.band_low is not None else cfg.reference
        high = cfg.band_high if cfg.band_high is not None else cfg.reference
        error = y_measured - cfg.reference
        if low <= y_measured <= high:
            self._last_explain = {
                "reference": cfg.reference,
                "error": error,
                "gain": None,  # in-band: no actuation term exists
                "in_band": True,
            }
            return u_current
        self._last_explain = {
            "reference": cfg.reference,
            "error": error,
            "gain": cfg.gain,
            "in_band": False,
        }
        return u_current + cfg.gain * error

    def explain(self) -> dict[str, object]:
        """Inputs of the last :meth:`compute` call (fixed gain, band state)."""
        return dict(self._last_explain)

    def reset(self) -> None:
        """The controller is stateless; only the introspection is cleared."""
        self._last_explain = {}

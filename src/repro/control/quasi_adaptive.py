"""Quasi-adaptive controller — baseline [14].

Padala et al., *Adaptive control of virtualized resources in utility
computing environments* (EuroSys 2007): the controller gain is rescaled
every step from an *online estimate of the process gain* — how strongly
the sensed variable responds to a unit of actuation — rather than
adapted by an error-driven law with memory. The estimator here is a
first-order model ``delta_y = b * delta_u`` tracked by exponentially
weighted recursive estimation, which is the self-tuning-regulator
pattern that paper uses.

Included as the quasi-adaptive baseline of the controller-comparison
experiment (E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.base import Controller
from repro.core.errors import ControlError


@dataclass(frozen=True)
class QuasiAdaptiveConfig:
    """Parameters of the quasi-adaptive baseline.

    Attributes
    ----------
    reference:
        ``y_r``, the desired sensor value.
    aggressiveness:
        Fraction of the estimated required correction applied per step
        (Padala et al.'s stability knob; 1.0 = full correction).
    initial_process_gain:
        Starting estimate of ``|dy/du|`` (sensor units per actuator
        unit). A poor initial estimate is exactly what makes this
        design slow to respond — the property the experiment exposes.
    forgetting:
        EWMA weight on the newest ``delta_y/delta_u`` observation.
    l_min / l_max:
        Safety clamp on the effective gain.
    """

    reference: float
    aggressiveness: float = 0.8
    initial_process_gain: float = 1.0
    forgetting: float = 0.3
    l_min: float = 1e-4
    l_max: float = 100.0

    def __post_init__(self) -> None:
        if not 0 < self.aggressiveness <= 2.0:
            raise ControlError(f"aggressiveness must be in (0, 2], got {self.aggressiveness}")
        if self.initial_process_gain <= 0:
            raise ControlError("initial_process_gain must be positive")
        if not 0 < self.forgetting <= 1:
            raise ControlError(f"forgetting must be in (0, 1], got {self.forgetting}")
        if not 0 < self.l_min <= self.l_max:
            raise ControlError("need 0 < l_min <= l_max")


@dataclass
class QuasiAdaptiveController(Controller):
    """Self-tuning integral control with an online process-gain estimate."""

    config: QuasiAdaptiveConfig
    _process_gain: float = field(init=False)
    _last_u: float | None = field(default=None, init=False)
    _last_y: float | None = field(default=None, init=False)
    _last_explain: dict[str, object] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        self._process_gain = self.config.initial_process_gain

    @property
    def process_gain_estimate(self) -> float:
        """Current estimate of ``|dy/du|``."""
        return self._process_gain

    @property
    def effective_gain(self) -> float:
        """The gain the next actuation would use."""
        cfg = self.config
        gain = cfg.aggressiveness / self._process_gain
        return min(cfg.l_max, max(cfg.l_min, gain))

    def compute(self, u_current: float, y_measured: float, now: int) -> float:
        cfg = self.config
        # Update the process-gain estimate from the last actuation's
        # observed effect (only when the actuator actually moved).
        if self._last_u is not None and self._last_y is not None:
            delta_u = u_current - self._last_u
            delta_y = y_measured - self._last_y
            if abs(delta_u) > 1e-9:
                observed = abs(delta_y / delta_u)
                if observed > 1e-12:
                    self._process_gain = (
                        (1.0 - cfg.forgetting) * self._process_gain + cfg.forgetting * observed
                    )
        self._last_u = u_current
        self._last_y = y_measured
        gain = self.effective_gain
        self._last_explain = {
            "reference": cfg.reference,
            "error": y_measured - cfg.reference,
            "gain": gain,
            "process_gain": self._process_gain,
        }
        return u_current + gain * (y_measured - cfg.reference)

    def explain(self) -> dict[str, object]:
        """Effective gain and process-gain estimate of the last step."""
        return dict(self._last_explain)

    def reset(self) -> None:
        self._process_gain = self.config.initial_process_gain
        self._last_u = None
        self._last_y = None
        self._last_explain = {}

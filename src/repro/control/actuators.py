"""Actuators: applying controller commands to simulated services.

Each actuator wraps one service's capacity API — "adding or removing
VMs and increasing or decreasing number of Shards" (Sec. 2) — and
enforces the realities the controller must live with: integer
capacities, service minima/maxima, and updates that are rejected while
a previous change is still in flight.
"""

from __future__ import annotations

from typing import Callable

from repro.cloud.dynamodb import SimDynamoDBTable
from repro.cloud.ec2 import SimEC2Fleet
from repro.cloud.kinesis import SimKinesisStream
from repro.control.base import Actuator
from repro.core.errors import ControlError, TransientAPIError
from repro.observability.events import EventBus


class CallbackActuator(Actuator):
    """Generic actuator over getter/setter callables.

    Useful in tests and for plant models that are not one of the three
    built-in services. Clamps to ``[minimum, maximum]`` and rounds to
    integers when ``integer`` is set.
    """

    def __init__(
        self,
        getter: Callable[[int], float],
        setter: Callable[[float, int], None],
        minimum: float = 1.0,
        maximum: float = float("inf"),
        integer: bool = True,
    ) -> None:
        if minimum > maximum:
            raise ControlError(f"minimum {minimum} exceeds maximum {maximum}")
        self._getter = getter
        self._setter = setter
        self.minimum = minimum
        self.maximum = maximum
        self.integer = integer

    def get(self, now: int) -> float:
        return self._getter(now)

    def apply(self, target: float, now: int) -> float:
        clamped = max(self.minimum, min(self.maximum, target))
        if self.integer:
            clamped = float(round(clamped))
        if self._bus is not None and target != clamped and clamped in (self.minimum, self.maximum):
            self._publish_adjusted(now, target, clamped)
        self._setter(clamped, now)
        return clamped


class RetryingActuator(Actuator):
    """Bounded retry + circuit breaker around another actuator.

    Simulated control-plane APIs can fail transiently (the chaos
    harness's update-reject storms raise
    :class:`~repro.core.errors.TransientAPIError`). This wrapper makes
    a control loop survive them the way a production autoscaler would:

    * each :meth:`apply` retries the inner call up to ``max_attempts``
      times (SDK-style immediate retries within one control period),
      publishing ``actuation.retry`` per failed attempt;
    * after ``breaker_threshold`` consecutive exhausted calls the
      circuit *opens*: applies are shed (the current capacity is
      returned untouched) until a cooldown passes, and each reopening
      doubles the cooldown up to ``max_cooldown_seconds`` — exponential
      backoff in simulated time, surfaced as ``circuit.open`` /
      ``circuit.close`` events;
    * once open, the first call after the cooldown is a half-open
      probe: success closes the circuit and resets the backoff, another
      exhausted call reopens it immediately at the doubled cooldown.

    Reads (:meth:`get`) always pass through. On the healthy path the
    wrapper is a single extra frame — no state changes, no events — so
    wrapping every actuator by default costs nothing.
    """

    def __init__(
        self,
        inner: Actuator,
        *,
        max_attempts: int = 3,
        breaker_threshold: int = 2,
        cooldown_seconds: int = 60,
        max_cooldown_seconds: int = 960,
    ) -> None:
        if max_attempts < 1:
            raise ControlError(f"max_attempts must be >= 1, got {max_attempts}")
        if breaker_threshold < 1:
            raise ControlError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
        if cooldown_seconds <= 0:
            raise ControlError(f"cooldown_seconds must be positive, got {cooldown_seconds}")
        if max_cooldown_seconds < cooldown_seconds:
            raise ControlError("max_cooldown_seconds must be >= cooldown_seconds")
        self.inner = inner
        self.max_attempts = max_attempts
        self.breaker_threshold = breaker_threshold
        self.cooldown_seconds = cooldown_seconds
        self.max_cooldown_seconds = max_cooldown_seconds
        #: Failed attempts observed, across all apply calls (diagnostics).
        self.failed_attempts = 0
        #: Lifetime count of circuit openings (``_openings`` resets to 0
        #: whenever the circuit closes; scorecards need the cumulative).
        self.total_openings = 0
        self._consecutive_failures = 0
        self._openings = 0
        self._open_until = 0
        self._half_open = False

    @property
    def circuit_open_until(self) -> int:
        """Time the circuit stays open to; 0 when it never opened."""
        return self._open_until

    def instrument(self, bus: EventBus, layer: str) -> None:
        super().instrument(bus, layer)
        self.inner.instrument(bus, layer)

    def get(self, now: int) -> float:
        return self.inner.get(now)

    def apply(self, target: float, now: int) -> float:
        if now < self._open_until:
            # Circuit open: shed the command, leave capacity untouched.
            return self.inner.get(now)
        for attempt in range(1, self.max_attempts + 1):
            try:
                applied = self.inner.apply(target, now)
            except TransientAPIError as exc:
                self.failed_attempts += 1
                if self._bus is not None:
                    self._bus.publish(
                        now, self._bus_layer, "actuation.retry",
                        {"attempt": attempt, "target": target, "error": str(exc)},
                    )
            else:
                if self._half_open and self._bus is not None:
                    self._bus.publish(
                        now, self._bus_layer, "circuit.close",
                        {"after_openings": self._openings},
                    )
                self._half_open = False
                self._openings = 0
                self._consecutive_failures = 0
                return applied
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.breaker_threshold or self._half_open:
            self._openings += 1
            self.total_openings += 1
            cooldown = min(
                self.max_cooldown_seconds,
                self.cooldown_seconds * 2 ** (self._openings - 1),
            )
            self._open_until = now + cooldown
            self._half_open = True
            self._consecutive_failures = 0
            if self._bus is not None:
                self._bus.publish(
                    now, self._bus_layer, "circuit.open",
                    {"until": self._open_until, "cooldown": cooldown,
                     "openings": self._openings},
                )
        return self.inner.get(now)


class KinesisShardActuator(Actuator):
    """Resizes a Kinesis stream's shard count."""

    def __init__(self, stream: SimKinesisStream) -> None:
        self._stream = stream

    def get(self, now: int) -> float:
        # While resharding, report the in-flight target so the control
        # error integrates against the commanded state, not the stale one.
        if self._stream.resharding(now):
            return float(self._stream._reshard_target)  # noqa: SLF001 - same package family
        return float(self._stream.shard_count(now))

    def apply(self, target: float, now: int) -> float:
        want = int(round(target))
        got = self._stream.update_shard_count(want, now)
        if got != want:
            self._publish_adjusted(now, want, got)
        return float(got)


class StormVMActuator(Actuator):
    """Resizes the analytics layer's EC2 fleet."""

    def __init__(self, fleet: SimEC2Fleet) -> None:
        self._fleet = fleet

    def get(self, now: int) -> float:
        return float(self._fleet.provisioned_count(now))

    def apply(self, target: float, now: int) -> float:
        want = int(round(target))
        before = self._fleet.provisioned_count(now)
        got = self._fleet.set_desired(want, now)
        if got != before and self._bus is not None:
            # Launches surface as a running-VM change (and a rebalance)
            # only after boot latency; leave this decision's trace on
            # the fleet so the eventual rebalance event joins its chain.
            self._fleet.last_change_trace = self._bus.active_trace
        if got != want:
            self._publish_adjusted(now, want, got)
        return float(got)


class DynamoDBWriteActuator(Actuator):
    """Resizes a DynamoDB table's provisioned write capacity."""

    def __init__(self, table: SimDynamoDBTable) -> None:
        self._table = table

    def get(self, now: int) -> float:
        if self._table.updating(now):
            return float(self._table._pending_write_target)  # noqa: SLF001
        return float(self._table.write_capacity(now))

    def apply(self, target: float, now: int) -> float:
        want = int(round(target))
        got = self._table.update_write_capacity(want, now)
        if got != want:
            self._publish_adjusted(now, want, got)
        return float(got)


class DynamoDBReadActuator(Actuator):
    """Resizes a DynamoDB table's provisioned read capacity.

    DynamoDB's two throughput dimensions scale independently; Flower
    lists "DynamoDB read/write units" among the resources it manages
    (Sec. 2), so each dimension gets its own actuator and control loop.
    """

    def __init__(self, table: SimDynamoDBTable) -> None:
        self._table = table

    def get(self, now: int) -> float:
        if self._table.read_updating(now):
            return float(self._table._pending_read_target)  # noqa: SLF001
        return float(self._table.read_capacity(now))

    def apply(self, target: float, now: int) -> float:
        want = int(round(target))
        got = self._table.update_read_capacity(want, now)
        if got != want:
            self._publish_adjusted(now, want, got)
        return float(got)

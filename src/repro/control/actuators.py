"""Actuators: applying controller commands to simulated services.

Each actuator wraps one service's capacity API — "adding or removing
VMs and increasing or decreasing number of Shards" (Sec. 2) — and
enforces the realities the controller must live with: integer
capacities, service minima/maxima, and updates that are rejected while
a previous change is still in flight.
"""

from __future__ import annotations

from typing import Callable

from repro.cloud.dynamodb import SimDynamoDBTable
from repro.cloud.ec2 import SimEC2Fleet
from repro.cloud.kinesis import SimKinesisStream
from repro.control.base import Actuator
from repro.core.errors import ControlError


class CallbackActuator(Actuator):
    """Generic actuator over getter/setter callables.

    Useful in tests and for plant models that are not one of the three
    built-in services. Clamps to ``[minimum, maximum]`` and rounds to
    integers when ``integer`` is set.
    """

    def __init__(
        self,
        getter: Callable[[int], float],
        setter: Callable[[float, int], None],
        minimum: float = 1.0,
        maximum: float = float("inf"),
        integer: bool = True,
    ) -> None:
        if minimum > maximum:
            raise ControlError(f"minimum {minimum} exceeds maximum {maximum}")
        self._getter = getter
        self._setter = setter
        self.minimum = minimum
        self.maximum = maximum
        self.integer = integer

    def get(self, now: int) -> float:
        return self._getter(now)

    def apply(self, target: float, now: int) -> float:
        clamped = max(self.minimum, min(self.maximum, target))
        if self.integer:
            clamped = float(round(clamped))
        if self._bus is not None and target != clamped and clamped in (self.minimum, self.maximum):
            self._publish_adjusted(now, target, clamped)
        self._setter(clamped, now)
        return clamped


class KinesisShardActuator(Actuator):
    """Resizes a Kinesis stream's shard count."""

    def __init__(self, stream: SimKinesisStream) -> None:
        self._stream = stream

    def get(self, now: int) -> float:
        # While resharding, report the in-flight target so the control
        # error integrates against the commanded state, not the stale one.
        if self._stream.resharding(now):
            return float(self._stream._reshard_target)  # noqa: SLF001 - same package family
        return float(self._stream.shard_count(now))

    def apply(self, target: float, now: int) -> float:
        want = int(round(target))
        got = self._stream.update_shard_count(want, now)
        if got != want:
            self._publish_adjusted(now, want, got)
        return float(got)


class StormVMActuator(Actuator):
    """Resizes the analytics layer's EC2 fleet."""

    def __init__(self, fleet: SimEC2Fleet) -> None:
        self._fleet = fleet

    def get(self, now: int) -> float:
        return float(self._fleet.provisioned_count(now))

    def apply(self, target: float, now: int) -> float:
        want = int(round(target))
        got = self._fleet.set_desired(want, now)
        if got != want:
            self._publish_adjusted(now, want, got)
        return float(got)


class DynamoDBWriteActuator(Actuator):
    """Resizes a DynamoDB table's provisioned write capacity."""

    def __init__(self, table: SimDynamoDBTable) -> None:
        self._table = table

    def get(self, now: int) -> float:
        if self._table.updating(now):
            return float(self._table._pending_write_target)  # noqa: SLF001
        return float(self._table.write_capacity(now))

    def apply(self, target: float, now: int) -> float:
        want = int(round(target))
        got = self._table.update_write_capacity(want, now)
        if got != want:
            self._publish_adjusted(now, want, got)
        return float(got)


class DynamoDBReadActuator(Actuator):
    """Resizes a DynamoDB table's provisioned read capacity.

    DynamoDB's two throughput dimensions scale independently; Flower
    lists "DynamoDB read/write units" among the resources it manages
    (Sec. 2), so each dimension gets its own actuator and control loop.
    """

    def __init__(self, table: SimDynamoDBTable) -> None:
        self._table = table

    def get(self, now: int) -> float:
        if self._table.read_updating(now):
            return float(self._table._pending_read_target)  # noqa: SLF001
        return float(self._table.read_capacity(now))

    def apply(self, target: float, now: int) -> float:
        want = int(round(target))
        got = self._table.update_read_capacity(want, now)
        if got != want:
            self._publish_adjusted(now, want, got)
        return float(got)

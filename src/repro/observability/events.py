"""Structured event bus: the flight recorder's spine.

Everything noteworthy that happens inside a managed flow — a controller
scaling a layer, Kinesis throttling a producer, a topology rebalance, a
DynamoDB capacity update taking effect, a fault injection, an SLO alert
— is published here as a typed :class:`Event` carrying the simulated
time, the layer it happened in, a dot-namespaced kind, and a small
structured payload.

The bus is deliberately passive: publishers call :meth:`EventBus.publish`
only when a bus has been attached (``if bus is not None``), so the
simulation's hot loops pay nothing when observability is off. Events are
totally ordered by an auto-incremented sequence number, which makes the
interleaving of same-tick publishers reconstructable after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.core.errors import MonitoringError

#: Kinds published by the built-in instrumentation (informative, not a
#: closed set — external components may publish their own kinds).
KNOWN_KINDS = (
    "scale.up",
    "scale.down",
    "share.clamp",
    "actuation.adjusted",
    "reshard",
    "reshard.complete",
    "capacity.update",
    "capacity.applied",
    "rebalance",
    "throttle",
    "throttle.end",
    "fault.inject",
    "fault.clear",
    "degraded.sensor",
    "degraded.recovered",
    "actuation.retry",
    "circuit.open",
    "circuit.close",
    "invariant.violation",
    "slo.breach",
)


@dataclass(frozen=True)
class Event:
    """One structured occurrence inside a simulated flow.

    Attributes
    ----------
    time:
        Simulated second at which the event was published.
    layer:
        Which part of the flow it concerns (``ingestion``, ``analytics``,
        ``storage``, a loop name, or ``flow`` for cross-layer events).
    kind:
        Dot-namespaced event type, e.g. ``scale.up`` or ``throttle``.
    payload:
        Small structured details (counts, from/to capacities, ids).
    seq:
        Bus-assigned sequence number; totally orders events, including
        several published within the same simulated second.
    """

    time: int
    layer: str
    kind: str
    payload: Mapping[str, object] = field(default_factory=dict)
    seq: int = 0

    def describe(self) -> str:
        """One-line human rendering, used by dashboards and the CLI."""
        details = " ".join(f"{k}={v}" for k, v in self.payload.items())
        return f"[t={self.time}s] {self.layer:<12} {self.kind:<18} {details}".rstrip()


class EventBus:
    """Append-only, totally ordered stream of :class:`Event` records.

    Publishers fire and forget; subscribers (if any) are invoked
    synchronously on each publish, which is how live alerting or
    streaming exporters can hang off the recorder without the core
    keeping any extra state.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._subscribers: list[Callable[[Event], None]] = []
        self._seq = 0

    def publish(
        self,
        time: int,
        layer: str,
        kind: str,
        payload: Mapping[str, object] | None = None,
    ) -> Event:
        """Record one event; returns the stored (sequence-stamped) record."""
        if time < 0:
            raise MonitoringError(f"event time must be non-negative, got {time}")
        if not kind:
            raise MonitoringError("event kind must be non-empty")
        event = Event(time=time, layer=layer, kind=kind, payload=dict(payload or {}), seq=self._seq)
        self._seq += 1
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback`` synchronously on every future publish."""
        self._subscribers.append(callback)

    @property
    def events(self) -> list[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        """Events whose kind equals ``kind`` or starts with ``kind.``."""
        prefix = kind + "."
        return [e for e in self._events if e.kind == kind or e.kind.startswith(prefix)]

    def for_layer(self, layer: str) -> list[Event]:
        return [e for e in self._events if e.layer == layer]

    def counts(self) -> dict[str, int]:
        """Number of events per kind, for summaries and dashboards."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

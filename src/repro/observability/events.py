"""Structured event bus: the flight recorder's spine.

Everything noteworthy that happens inside a managed flow — a controller
scaling a layer, Kinesis throttling a producer, a topology rebalance, a
DynamoDB capacity update taking effect, a fault injection, an SLO alert
— is published here as a typed :class:`Event` carrying the simulated
time, the layer it happened in, a dot-namespaced kind, and a small
structured payload.

The bus is deliberately passive: publishers call :meth:`EventBus.publish`
only when a bus has been attached (``if bus is not None``), so the
simulation's hot loops pay nothing when observability is off. Events are
totally ordered by an auto-incremented sequence number, which makes the
interleaving of same-tick publishers reconstructable after the fact.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.core.errors import MonitoringError

#: Kinds published by the built-in instrumentation (informative, not a
#: closed set — external components may publish their own kinds).
KNOWN_KINDS = (
    "scale.up",
    "scale.down",
    "share.clamp",
    "actuation.adjusted",
    "reshard",
    "reshard.complete",
    "capacity.update",
    "capacity.applied",
    "rebalance",
    "throttle",
    "throttle.end",
    "fault.inject",
    "fault.clear",
    "degraded.sensor",
    "degraded.recovered",
    "actuation.retry",
    "circuit.open",
    "circuit.close",
    "invariant.violation",
    "slo.breach",
)


@dataclass(frozen=True)
class Event:
    """One structured occurrence inside a simulated flow.

    Attributes
    ----------
    time:
        Simulated second at which the event was published.
    layer:
        Which part of the flow it concerns (``ingestion``, ``analytics``,
        ``storage``, a loop name, or ``flow`` for cross-layer events).
    kind:
        Dot-namespaced event type, e.g. ``scale.up`` or ``throttle``.
    payload:
        Small structured details (counts, from/to capacities, ids).
    seq:
        Bus-assigned sequence number; totally orders events, including
        several published within the same simulated second.
    trace:
        Causal trace the event belongs to (one MAPE-loop pass or one
        injected fault), or ``None`` for events published outside any
        control boundary. Assigned by the bus from its active trace
        context, or pinned explicitly by publishers completing a
        deferred transition (a reshard finishing ticks after the
        decision that commanded it).
    span:
        Position of the event within its trace (0-based); 0 for
        untraced events.
    """

    time: int
    layer: str
    kind: str
    payload: Mapping[str, object] = field(default_factory=dict)
    seq: int = 0
    trace: str | None = None
    span: int = 0

    def describe(self) -> str:
        """One-line human rendering, used by dashboards and the CLI."""
        details = " ".join(f"{k}={v}" for k, v in self.payload.items())
        return f"[t={self.time}s] {self.layer:<12} {self.kind:<18} {details}".rstrip()


class EventBus:
    """Append-only, totally ordered stream of :class:`Event` records.

    Publishers fire and forget; subscribers (if any) are invoked
    synchronously on each publish, which is how live alerting or
    streaming exporters can hang off the recorder without the core
    keeping any extra state.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._subscribers: list[Callable[[Event], None]] = []
        self._seq = 0
        # Causal trace context: a stack of open trace ids (control-loop
        # invocations, chaos fault applications) plus a per-trace span
        # counter so deferred completions keep numbering their trace.
        self._trace_stack: list[str] = []
        self._trace_spans: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Trace context (causal MAPE-loop propagation)
    # ------------------------------------------------------------------
    @property
    def active_trace(self) -> str | None:
        """The innermost open trace id, or ``None`` outside any trace."""
        return self._trace_stack[-1] if self._trace_stack else None

    def begin_trace(self, trace_id: str) -> str:
        """Open a trace context: every publish until :meth:`end_trace`
        is stamped with ``trace_id`` (unless pinned explicitly)."""
        if not trace_id:
            raise MonitoringError("trace id must be non-empty")
        self._trace_stack.append(trace_id)
        self._trace_spans.setdefault(trace_id, 0)
        return trace_id

    def end_trace(self) -> None:
        if not self._trace_stack:
            raise MonitoringError("end_trace without a matching begin_trace")
        self._trace_stack.pop()

    @contextmanager
    def trace(self, trace_id: str):
        """Context manager over :meth:`begin_trace` / :meth:`end_trace`."""
        self.begin_trace(trace_id)
        try:
            yield trace_id
        finally:
            self.end_trace()

    def publish(
        self,
        time: int,
        layer: str,
        kind: str,
        payload: Mapping[str, object] | None = None,
        *,
        trace: str | None = None,
    ) -> Event:
        """Record one event; returns the stored (sequence-stamped) record.

        ``trace`` pins the event to a specific causal trace — used by
        services completing a transition whose commanding decision's
        trace closed ticks ago. Without it, the bus's active trace
        context (if any) is stamped on.
        """
        if time < 0:
            raise MonitoringError(f"event time must be non-negative, got {time}")
        if not kind:
            raise MonitoringError("event kind must be non-empty")
        if trace is None and self._trace_stack:
            trace = self._trace_stack[-1]
        span = 0
        if trace is not None:
            span = self._trace_spans.get(trace, 0)
            self._trace_spans[trace] = span + 1
        event = Event(
            time=time, layer=layer, kind=kind, payload=dict(payload or {}),
            seq=self._seq, trace=trace, span=span,
        )
        self._seq += 1
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback`` synchronously on every future publish."""
        self._subscribers.append(callback)

    @property
    def events(self) -> list[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        """Events whose kind equals ``kind`` or starts with ``kind.``."""
        prefix = kind + "."
        return [e for e in self._events if e.kind == kind or e.kind.startswith(prefix)]

    def for_layer(self, layer: str) -> list[Event]:
        return [e for e in self._events if e.layer == layer]

    def for_trace(self, trace_id: str) -> list[Event]:
        """Events belonging to one causal trace, in span order."""
        return sorted(
            (e for e in self._events if e.trace == trace_id), key=lambda e: e.span
        )

    def traces(self) -> list[str]:
        """Trace ids present, in first-seen order."""
        seen: dict[str, None] = {}
        for event in self._events:
            if event.trace is not None:
                seen.setdefault(event.trace, None)
        return list(seen)

    def counts(self) -> dict[str, int]:
        """Number of events per kind, for summaries and dashboards."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

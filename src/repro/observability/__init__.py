"""Flight recorder: structured events, decision audit log, profiling.

The fourth Flower pillar (cross-platform monitoring, Sec. 3.4) extended
from *metric values* to *behaviour*: a structured :class:`EventBus`
spanning the engine, services, actuators and fault injectors; a
:class:`DecisionLog` capturing every controller invocation's inputs and
outputs (so Eq. 6–7 behaviour is reconstructable); an opt-in
:class:`TickProfiler` over the simulation engine's hot loop; and JSONL
exporters feeding the ``python -m repro.cli trace`` subcommand.

Everything is off by default and injected explicitly — an unobserved
flow runs the exact unmodified hot loop.
"""

from repro.observability.causal import (
    CausalChain,
    chain_for,
    decision_chains,
    fault_chains,
)
from repro.observability.decisions import ControlDecision, DecisionLog
from repro.observability.events import KNOWN_KINDS, Event, EventBus
from repro.observability.export import (
    read_jsonl,
    recorder_to_jsonl,
    to_chrome_trace,
    write_jsonl,
)
from repro.observability.profiler import HISTOGRAM_BOUNDS, TickProfiler
from repro.observability.recorder import FlightRecorder
from repro.observability.telemetry import Histogram, Telemetry

__all__ = [
    "Event",
    "EventBus",
    "KNOWN_KINDS",
    "ControlDecision",
    "DecisionLog",
    "TickProfiler",
    "HISTOGRAM_BOUNDS",
    "FlightRecorder",
    "Telemetry",
    "Histogram",
    "CausalChain",
    "decision_chains",
    "fault_chains",
    "chain_for",
    "write_jsonl",
    "read_jsonl",
    "recorder_to_jsonl",
    "to_chrome_trace",
]

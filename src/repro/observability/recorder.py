"""The flight recorder: one handle over events, decisions and profiling.

A :class:`FlightRecorder` is what the builder wires through a managed
flow when observability is requested::

    manager = (
        FlowBuilder("click-stream", seed=7)
        .workload(DiurnalRate(mean=800, amplitude=500))
        .control_all(style="adaptive")
        .observe(profile=True)
        .build()
    )
    result = manager.run(6 * 3600)
    result.recorder.to_jsonl("flow.jsonl")
    print(result.recorder.summary())

Everything is injectable: the engine takes the profiler, services and
actuators take the event bus, control loops take the bus and the
decision log — and every hook is a ``None`` check, so a flow built
without a recorder runs the exact seed-era hot loop.
"""

from __future__ import annotations

from pathlib import Path

from repro.observability.decisions import DecisionLog
from repro.observability.events import EventBus
from repro.observability.export import recorder_to_jsonl
from repro.observability.profiler import TickProfiler


class FlightRecorder:
    """Bundles the event bus, decision audit log and optional profiler."""

    def __init__(self, profile: bool = False) -> None:
        self.bus = EventBus()
        self.decisions = DecisionLog()
        self.profiler: TickProfiler | None = TickProfiler() if profile else None

    def to_jsonl(self, path: str | Path) -> int:
        """Export everything recorded so far; returns lines written."""
        return recorder_to_jsonl(self, path)

    def summary(self) -> str:
        """Text digest: event counts, per-loop decision stats, profile."""
        lines = [f"flight recorder: {len(self.bus)} events, {len(self.decisions)} decisions"]
        counts = self.bus.counts()
        if counts:
            lines.append("events by kind:")
            for kind in sorted(counts):
                lines.append(f"  {kind:<20} {counts[kind]}")
        rows = self.decisions.summary_rows()
        if rows:
            lines.append("decisions by loop (invocations / acted / clamped / last gain):")
            for loop, invocations, acted, clamped, gain in rows:
                lines.append(f"  {loop:<14} {invocations:>6} {acted:>6} {clamped:>6}  {gain}")
        if self.profiler is not None and self.profiler.tick_count:
            lines.append("tick profile:")
            lines.append(self.profiler.summary())
        return "\n".join(lines)

"""Causal-chain reconstruction over the flight recorder.

Trace propagation (see :mod:`repro.observability.events`) stamps every
bus event with the MAPE-loop pass or injected fault that caused it.
This module folds those stamps back into *chains*: for each controller
decision, the full sense → decide → actuate → capacity-transition
story; for each chaos fault, the inject → alarm → response decision →
actuation → recovery story, with the recovery time attributed to the
fault (per-fault MTTR).

Chains are plain data — the CLI's ``repro trace --causal`` view, the
run scorecard and the tests all consume the same reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.decisions import ControlDecision
from repro.observability.events import Event

#: Observable symptoms per layer: the first of these at or after a
#: fault's injection is the chain's *alarm* stage.
ALARM_KINDS: dict[str, tuple[str, ...]] = {
    "ingestion": ("throttle", "slo.breach", "degraded.sensor"),
    "analytics": ("rebalance", "slo.breach", "degraded.sensor"),
    "storage": ("throttle", "actuation.retry", "slo.breach", "degraded.sensor"),
    "monitoring": ("degraded.sensor",),
}

#: Event kinds that represent a controller command reaching a service.
ACTUATION_KINDS = (
    "scale.up",
    "scale.down",
    "reshard",
    "capacity.update",
    "actuation.retry",
    "actuation.adjusted",
    "share.clamp",
)

#: Deferred capacity transitions: a start kind that must eventually be
#: matched by its completion kind for the chain to close.
DEFERRED_COMPLETIONS: dict[str, str] = {
    "reshard": "reshard.complete",
    "capacity.update": "capacity.applied",
}

#: Control loops that actuate each flow layer.
LAYER_LOOPS: dict[str, tuple[str, ...]] = {
    "ingestion": ("ingestion",),
    "analytics": ("analytics",),
    "storage": ("storage", "storage-reads"),
}


@dataclass(frozen=True)
class CausalChain:
    """One reconstructed cause → effect story.

    ``root_kind`` is ``"decision"`` for a control-loop pass (trace id
    ``loop@time``) or ``"fault"`` for an injected fault (trace id
    ``fault:<kind>@<start>``). Stage fields are ``None`` when the stage
    never happened — :meth:`closed` says whether the chain completed.
    """

    trace: str
    root_kind: str
    root_time: int
    layer: str
    #: Every bus event stamped with this trace, in span order.
    events: tuple[Event, ...] = ()
    #: The controller decision that opened (or responded to) the chain.
    decision: ControlDecision | None = None
    #: Fault chains: the first observable symptom after injection.
    alarm: Event | None = None
    #: The first actuation event of the (response) decision's trace.
    actuation: Event | None = None
    #: Fault chains: seconds from injection to the layer settling (or
    #: to ``degraded.recovered`` for monitoring faults); ``None`` when
    #: it never recovered inside the run.
    recovery_seconds: int | None = None
    #: Latest simulated second any stage of the chain touched.
    completed_at: int | None = None
    #: Deferred transitions started but never completed (open chains).
    pending: tuple[str, ...] = field(default=())

    @property
    def recovered(self) -> bool:
        return self.recovery_seconds is not None

    def _pending_past_horizon(self, horizon: int | None) -> bool:
        """Whether every pending transition was cut off by the run end.

        A deferred start whose expected completion time (``ready_at``
        or ``until`` in its payload) lies beyond ``horizon`` never had
        a chance to complete inside the run — the chain is in flight
        at shutdown, not broken.
        """
        if horizon is None or not self.pending:
            return False
        for start in self.pending:
            event = next((e for e in self.events if e.kind == start), None)
            if event is None:
                return False
            ready = event.payload.get("ready_at", event.payload.get("until"))
            if not isinstance(ready, (int, float)) or ready <= horizon:
                return False
        return True

    def closed(self, horizon: int | None = None) -> bool:
        """Whether the chain ran to completion.

        A decision chain closes when the loop did not act, or when its
        actuation landed and every deferred capacity transition it
        started has completed. A fault chain closes when the fault
        produced an alarm, a responding decision actuated, and the
        layer recovered — for monitoring faults, when the degraded
        sensor alarmed and recovered (there is no capacity to move).
        With ``horizon`` (the run's last simulated second), a pending
        transition whose completion was scheduled past the horizon
        counts as closed: the run ended, the chain did not break.
        """
        if self.root_kind == "decision":
            if self.pending and not self._pending_past_horizon(horizon):
                return False
            if self.decision is None:
                return False
            return (not self.decision.acted) or self.actuation is not None
        if self.layer == "monitoring":
            return self.alarm is not None and self.recovered
        return (
            self.alarm is not None
            and self.decision is not None
            and self.actuation is not None
            and self.recovered
        )

    def describe(self, horizon: int | None = None) -> str:
        """Multi-line human rendering (the CLI's ``--causal`` view).

        Pass the run's last simulated second as ``horizon`` so the
        ``closed`` verdict printed here agrees with the scorecard's
        closure count (see :meth:`closed`): an in-flight-at-shutdown
        chain reads ``closed yes`` in both places.
        """
        lines = [
            f"trace {self.trace}  ({self.root_kind}, layer={self.layer}, "
            f"t={self.root_time}s)"
        ]
        if self.decision is not None:
            d = self.decision
            lines.append(
                f"  decision  {d.loop}@{d.time}: sensed={d.sensed:.2f} "
                f"{d.capacity_before:g} -> {d.applied_command:g}"
                + (" (clamped)" if d.clamped else "")
            )
        if self.alarm is not None:
            lines.append(f"  alarm     {self.alarm.describe()}")
        if self.actuation is not None:
            lines.append(f"  actuation {self.actuation.describe()}")
        for event in self.events:
            lines.append(f"    span {event.span:<3} {event.describe()}")
        if self.recovery_seconds is not None:
            lines.append(f"  recovery  {self.recovery_seconds}s after injection")
        elif self.root_kind == "fault":
            lines.append("  recovery  never (within this run)")
        if self.pending:
            lines.append("  pending   " + ", ".join(self.pending))
        lines.append(f"  closed    {'yes' if self.closed(horizon) else 'NO'}")
        return "\n".join(lines)


def _decision_chain(recorder, decision: ControlDecision) -> CausalChain:
    events = tuple(recorder.bus.for_trace(decision.trace))
    actuation = next((e for e in events if e.kind in ACTUATION_KINDS), None)
    pending = tuple(
        start
        for start, done in DEFERRED_COMPLETIONS.items()
        if any(e.kind == start for e in events)
        and not any(e.kind == done for e in events)
    )
    completed = max([decision.time] + [e.time for e in events])
    return CausalChain(
        trace=decision.trace,
        root_kind="decision",
        root_time=decision.time,
        layer=decision.loop,
        events=events,
        decision=decision,
        actuation=actuation,
        completed_at=completed,
        pending=pending,
    )


def decision_chains(recorder) -> list[CausalChain]:
    """One chain per traced decision in the recorder's audit log."""
    return [
        _decision_chain(recorder, decision)
        for decision in recorder.decisions
        if decision.trace is not None
    ]


def fault_chains(result) -> list[CausalChain]:
    """One chain per injected fault in a finished run.

    Requires the run to have been recorded (``result.recorder``); the
    chaos timeline alone has no events to reconstruct from. Recovery
    for layer faults comes from the MTTR settling analysis; monitoring
    faults recover when their degraded sensor reports back healthy.
    """
    recorder = result.recorder
    if recorder is None:
        return []
    from repro.chaos.mttr import recovery_times

    samples = {
        (s.fault, s.injected_at): s.recovery_seconds
        for s in recovery_times(result)
    }
    all_events = recorder.bus.events
    chains: list[CausalChain] = []
    for chaos_event in result.chaos_events:
        if chaos_event.phase != "inject":
            continue
        layer = chaos_event.layer
        injected_at = chaos_event.time
        trace_events = (
            tuple(recorder.bus.for_trace(chaos_event.trace))
            if chaos_event.trace
            else ()
        )
        # Alarms are symptoms in the data path (throttles, rebalances,
        # degraded sensors) — published outside the fault's own trace
        # context, so they are searched by layer and time instead.
        alarm_kinds = ALARM_KINDS.get(layer, ())
        if layer == "monitoring":
            # A blinded sensor can belong to any loop; take the first
            # degradation anywhere in the flow.
            alarm = next(
                (
                    e
                    for e in all_events
                    if e.time >= injected_at and e.kind in alarm_kinds
                ),
                None,
            )
        else:
            alarm = next(
                (
                    e
                    for e in all_events
                    if e.time >= injected_at
                    and e.layer == layer
                    and e.kind in alarm_kinds
                ),
                None,
            )
        decision = None
        actuation = None
        if layer == "monitoring":
            recovery_event = next(
                (
                    e
                    for e in all_events
                    if e.time >= injected_at and e.kind == "degraded.recovered"
                ),
                None,
            )
            recovery = (
                recovery_event.time - injected_at
                if recovery_event is not None
                else None
            )
            if alarm is not None and alarm.trace is not None:
                decision = recorder.decisions.for_trace(alarm.trace)
        else:
            loops = LAYER_LOOPS.get(layer, ())
            since = alarm.time if alarm is not None else injected_at
            decision = next(
                (
                    d
                    for d in recorder.decisions
                    if d.time >= since and d.loop in loops and d.acted
                ),
                None,
            )
            if decision is not None and decision.trace is not None:
                actuation = next(
                    (
                        e
                        for e in recorder.bus.for_trace(decision.trace)
                        if e.kind in ACTUATION_KINDS
                    ),
                    None,
                )
            recovery = samples.get((chaos_event.fault, injected_at))
        stage_times = [injected_at]
        stage_times += [e.time for e in trace_events]
        if alarm is not None:
            stage_times.append(alarm.time)
        if decision is not None:
            stage_times.append(decision.time)
        if recovery is not None:
            stage_times.append(injected_at + recovery)
        chains.append(
            CausalChain(
                trace=chaos_event.trace or f"fault:{chaos_event.fault}@{injected_at}",
                root_kind="fault",
                root_time=injected_at,
                layer=layer,
                events=trace_events,
                decision=decision,
                alarm=alarm,
                actuation=actuation,
                recovery_seconds=recovery,
                completed_at=max(stage_times),
            )
        )
    return chains


def chain_for(result, trace_id: str) -> CausalChain | None:
    """The chain for one trace id — a decision's (``loop@time``) or a
    fault's (``fault:<kind>@<start>``) — or ``None`` if unknown."""
    if result.recorder is None:
        return None
    if trace_id.startswith("fault:"):
        for chain in fault_chains(result):
            if chain.trace == trace_id:
                return chain
        return None
    decision = result.recorder.decisions.for_trace(trace_id)
    if decision is None:
        return None
    return _decision_chain(result.recorder, decision)

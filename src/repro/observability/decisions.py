"""Controller decision audit log.

Flower's controllers (Eq. 6–7) are only debuggable when every scaling
decision is recorded together with its inputs: what the sensor saw,
what the control error was, which gain was in force (and whether the
gain memory warm-started it), what the raw Eq. 6 command was, and what
the bounded/clamped actuator actually applied. A :class:`ControlDecision`
captures exactly that per control-loop invocation, so the controller's
behaviour is fully reconstructable offline::

    raw_command == state_before + gain * error        (Eq. 6)

(:meth:`ControlDecision.reconstruct_command` replays that identity; the
test suite uses it to verify a bounded-gain clamp end to end.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import MonitoringError


@dataclass(frozen=True)
class ControlDecision:
    """One control-loop invocation, with everything that produced it.

    Attributes
    ----------
    time:
        Simulated second of the invocation.
    loop:
        Control-loop name (``ingestion``, ``analytics``, ``storage``,
        ``storage-reads``).
    sensed:
        The sensor measurement ``y_k`` fed to the controller.
    state_before:
        The loop's real-valued integrator state ``u_k`` passed to the
        controller (may differ from the quantized actuator capacity).
    capacity_before:
        The actuator-reported capacity before the invocation.
    raw_command:
        The controller's unclamped output ``u_{k+1}`` (Eq. 6).
    applied_command:
        What the (possibly bounded) actuator actually applied.
    reference / error / gain:
        Eq. 6–7 internals from :meth:`Controller.explain`; ``None`` for
        controllers that do not expose them (e.g. rule-based).
    memory_recalled / memory_gain:
        Whether the gain memory warm-started this invocation, and from
        which remembered gain.
    trace:
        Causal trace id of this invocation (``loop@time``), shared with
        every bus event the invocation produced — sensing anomalies,
        retries, clamps, capacity transitions — so the full chain is
        reconstructable; ``None`` when the loop ran without a bus.
    """

    time: int
    loop: str
    sensed: float
    state_before: float
    capacity_before: float
    raw_command: float
    applied_command: float
    reference: float | None = None
    error: float | None = None
    gain: float | None = None
    memory_recalled: bool = False
    memory_gain: float | None = None
    trace: str | None = None

    @property
    def clamped(self) -> bool:
        """Whether bounds (share caps, service limits, rounding, rejected
        updates) altered the controller's raw command."""
        return self.applied_command != self.raw_command

    @property
    def acted(self) -> bool:
        """Whether the invocation changed the applied capacity."""
        return self.applied_command != self.capacity_before

    def reconstruct_command(self) -> float | None:
        """Replay Eq. 6 from the recorded inputs.

        Returns ``state_before + gain * error``, or ``None`` when the
        controller did not expose a gain/error pair (rule-based, or a
        deadband skip where no actuation term exists).
        """
        if self.gain is None or self.error is None:
            return None
        return self.state_before + self.gain * self.error


class DecisionLog:
    """Append-only audit log of :class:`ControlDecision` records."""

    def __init__(self) -> None:
        self._decisions: list[ControlDecision] = []

    def record(self, decision: ControlDecision) -> None:
        if self._decisions and decision.time < self._decisions[-1].time:
            raise MonitoringError(
                f"decision log must be appended in time order: "
                f"{decision.time} after {self._decisions[-1].time}"
            )
        self._decisions.append(decision)

    @property
    def decisions(self) -> list[ControlDecision]:
        return list(self._decisions)

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[ControlDecision]:
        return iter(self._decisions)

    def for_loop(self, loop: str) -> list[ControlDecision]:
        return [d for d in self._decisions if d.loop == loop]

    def for_trace(self, trace_id: str) -> ControlDecision | None:
        """The decision that opened causal trace ``trace_id``, if any."""
        for decision in self._decisions:
            if decision.trace == trace_id:
                return decision
        return None

    def clamps(self) -> list[ControlDecision]:
        """Invocations where bounds overrode the controller."""
        return [d for d in self._decisions if d.clamped]

    def loops(self) -> list[str]:
        """Loop names present, in first-seen order."""
        seen: dict[str, None] = {}
        for decision in self._decisions:
            seen.setdefault(decision.loop, None)
        return list(seen)

    def summary_rows(self) -> list[list[str]]:
        """Per-loop summary rows: invocations, actions, clamps, last gain."""
        rows: list[list[str]] = []
        for loop in self.loops():
            decisions = self.for_loop(loop)
            acted = sum(1 for d in decisions if d.acted)
            clamped = sum(1 for d in decisions if d.clamped)
            last_gain = next(
                (d.gain for d in reversed(decisions) if d.gain is not None), None
            )
            rows.append(
                [
                    loop,
                    str(len(decisions)),
                    str(acted),
                    str(clamped),
                    f"{last_gain:.4f}" if last_gain is not None else "-",
                ]
            )
        return rows

"""Always-on lightweight telemetry: counters, gauges, histograms.

The flight recorder is opt-in and heavyweight (it stores every event);
production flows still need *some* numbers to be watchable at all
times. The :class:`Telemetry` registry is that layer: a handful of
plain-dict counters, last-value gauges and log-bucketed histograms that
are touched **only at control boundaries** — control-loop invocations
and snapshot collections, tens of simulated seconds apart — never
inside the per-tick or span data path. That is what keeps it inside
the <2 % overhead budget (``benchmarks/test_bench_telemetry_overhead
.py`` verifies it) and what keeps span-batched execution and the
bit-exactness contract untouched: the registry only ever *reads*
simulation state, at times where every pending capacity transition has
already settled.

Unlike the recorder, telemetry is on by default for every managed flow
(``FlowBuilder.telemetry(False)`` disables it) and is exported on the
run result, the dashboard's telemetry row, and the run scorecard.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.errors import MonitoringError

#: Histogram bucket upper bounds (unit-agnostic powers of 2, capacity
#: steps and control errors both fit); the final bucket is overflow.
HISTOGRAM_BOUNDS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


class Histogram:
    """Fixed-bound bucket histogram with count/total/max."""

    __slots__ = ("bounds", "buckets", "count", "total", "maximum")

    def __init__(self, bounds: tuple[float, ...] = HISTOGRAM_BOUNDS) -> None:
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "max": self.maximum,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class Telemetry:
    """Named counters, gauges and histograms for one managed flow."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Writing (control boundaries only — never the per-tick data path)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to counter ``name``."""
        if amount < 0:
            raise MonitoringError(f"counter {name!r}: increment must be >= 0, got {amount}")
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest sampled value."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self.gauges.get(name, default)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot (scorecards, exports, dashboards)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def rows(self) -> list[list[str]]:
        """Dashboard rows: every counter and gauge, name-sorted."""
        rows = [
            [name, f"{value:g}", "counter"]
            for name, value in sorted(self.counters.items())
        ]
        rows += [
            [name, f"{value:g}", "gauge"]
            for name, value in sorted(self.gauges.items())
        ]
        rows += [
            [name, f"n={h.count} mean={h.mean:g} max={h.maximum:g}", "histogram"]
            for name, h in sorted(self.histograms.items())
        ]
        return rows

    def render(self) -> str:
        """Text digest used by ``FlightRecorder``-less summaries."""
        lines = ["telemetry:"]
        for name, value, kind in self.rows():
            lines.append(f"  {name:<36} {value:>24}  [{kind}]")
        return "\n".join(lines)

"""JSONL export / import of flight-recorder data.

One line per record, merged into simulated-time order::

    {"type": "event",    "time": 120, "layer": "ingestion", "kind": "scale.up", ...}
    {"type": "decision", "time": 120, "loop": "ingestion", "sensed": 83.1, ...}
    {"type": "profile",  "ticks": 7200, ...}

The format round-trips: :func:`read_jsonl` rebuilds the same
:class:`~repro.observability.events.Event` and
:class:`~repro.observability.decisions.ControlDecision` records that
were written, so traces can be archived and re-analysed offline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.core.errors import MonitoringError
from repro.observability.decisions import ControlDecision
from repro.observability.events import Event

_DECISION_FIELDS = (
    "time",
    "loop",
    "sensed",
    "state_before",
    "capacity_before",
    "raw_command",
    "applied_command",
    "reference",
    "error",
    "gain",
    "memory_recalled",
    "memory_gain",
)


def event_to_row(event: Event) -> dict[str, object]:
    return {
        "type": "event",
        "time": event.time,
        "seq": event.seq,
        "layer": event.layer,
        "kind": event.kind,
        "payload": dict(event.payload),
    }


def decision_to_row(decision: ControlDecision) -> dict[str, object]:
    row: dict[str, object] = {"type": "decision"}
    for name in _DECISION_FIELDS:
        row[name] = getattr(decision, name)
    row["clamped"] = decision.clamped
    row["acted"] = decision.acted
    return row


def write_jsonl(
    path: str | Path,
    events: Sequence[Event] = (),
    decisions: Sequence[ControlDecision] = (),
    profile: dict[str, object] | None = None,
) -> int:
    """Write events and decisions (time-ordered) plus an optional final
    profile line; returns the number of lines written."""
    rows = [event_to_row(e) for e in events] + [decision_to_row(d) for d in decisions]
    rows.sort(key=lambda row: row["time"])  # stable: same-time rows keep input order
    if profile is not None:
        rows.append({"type": "profile", **profile})
    with open(path, "w") as f:
        for row in rows:
            f.write(json.dumps(row) + "\n")
    return len(rows)


def recorder_to_jsonl(recorder, path: str | Path) -> int:
    """Export a :class:`FlightRecorder`'s full contents as JSONL."""
    return write_jsonl(
        path,
        events=recorder.bus.events,
        decisions=recorder.decisions.decisions,
        profile=recorder.profiler.as_dict() if recorder.profiler is not None else None,
    )


def read_jsonl(path: str | Path) -> dict[str, object]:
    """Parse a trace file back into typed records.

    Returns ``{"events": [Event, ...], "decisions": [ControlDecision,
    ...], "profile": dict | None}``.
    """
    events: list[Event] = []
    decisions: list[ControlDecision] = []
    profile: dict[str, object] | None = None
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise MonitoringError(f"{path}:{lineno}: invalid JSONL: {exc}") from None
            kind = row.get("type")
            if kind == "event":
                events.append(
                    Event(
                        time=int(row["time"]),
                        layer=str(row["layer"]),
                        kind=str(row["kind"]),
                        payload=dict(row.get("payload", {})),
                        seq=int(row.get("seq", 0)),
                    )
                )
            elif kind == "decision":
                decisions.append(
                    ControlDecision(
                        **{name: row.get(name) for name in _DECISION_FIELDS}
                    )
                )
            elif kind == "profile":
                profile = {k: v for k, v in row.items() if k != "type"}
            else:
                raise MonitoringError(f"{path}:{lineno}: unknown record type {kind!r}")
    events.sort(key=lambda e: e.seq)
    return {"events": events, "decisions": decisions, "profile": profile}

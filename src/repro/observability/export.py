"""JSONL export / import of flight-recorder data.

One line per record, merged into simulated-time order::

    {"type": "event",    "time": 120, "layer": "ingestion", "kind": "scale.up", ...}
    {"type": "decision", "time": 120, "loop": "ingestion", "sensed": 83.1, ...}
    {"type": "profile",  "ticks": 7200, ...}

The format round-trips: :func:`read_jsonl` rebuilds the same
:class:`~repro.observability.events.Event` and
:class:`~repro.observability.decisions.ControlDecision` records that
were written, so traces can be archived and re-analysed offline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.core.errors import MonitoringError
from repro.observability.decisions import ControlDecision
from repro.observability.events import Event

_DECISION_FIELDS = (
    "time",
    "loop",
    "sensed",
    "state_before",
    "capacity_before",
    "raw_command",
    "applied_command",
    "reference",
    "error",
    "gain",
    "memory_recalled",
    "memory_gain",
    "trace",
)


def event_to_row(event: Event) -> dict[str, object]:
    row: dict[str, object] = {
        "type": "event",
        "time": event.time,
        "seq": event.seq,
        "layer": event.layer,
        "kind": event.kind,
        "payload": dict(event.payload),
    }
    if event.trace is not None:
        row["trace"] = event.trace
        row["span"] = event.span
    return row


def decision_to_row(decision: ControlDecision) -> dict[str, object]:
    row: dict[str, object] = {"type": "decision"}
    for name in _DECISION_FIELDS:
        row[name] = getattr(decision, name)
    row["clamped"] = decision.clamped
    row["acted"] = decision.acted
    return row


def write_jsonl(
    path: str | Path,
    events: Sequence[Event] = (),
    decisions: Sequence[ControlDecision] = (),
    profile: dict[str, object] | None = None,
) -> int:
    """Write events and decisions (time-ordered) plus an optional final
    profile line; returns the number of lines written."""
    rows = [event_to_row(e) for e in events] + [decision_to_row(d) for d in decisions]
    rows.sort(key=lambda row: row["time"])  # stable: same-time rows keep input order
    if profile is not None:
        rows.append({"type": "profile", **profile})
    with open(path, "w") as f:
        for row in rows:
            f.write(json.dumps(row) + "\n")
    return len(rows)


def recorder_to_jsonl(recorder, path: str | Path) -> int:
    """Export a :class:`FlightRecorder`'s full contents as JSONL."""
    return write_jsonl(
        path,
        events=recorder.bus.events,
        decisions=recorder.decisions.decisions,
        profile=recorder.profiler.as_dict() if recorder.profiler is not None else None,
    )


def to_chrome_trace(recorder, path: str | Path | None = None) -> dict[str, object]:
    """Export a recorder as a Chrome trace-event file (Perfetto-ready).

    One metadata thread per flow layer; every bus event becomes an
    instant event (``ph: "i"``) at its simulated second (microsecond
    timebase, 1 simulated second = 1 ms on the viewer's default
    millisecond display), and every causal trace becomes a duration
    event (``ph: "X"``) spanning first to last stamped event — so a
    MAPE-loop pass or a fault's whole chain reads as one bar with its
    constituent events dotted along it. With ``path`` set, the dict is
    also written there as JSON.
    """
    events = recorder.bus.events
    layers: dict[str, int] = {}
    for event in events:
        layers.setdefault(event.layer, len(layers) + 1)
    rows: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "flower-flow"},
        }
    ]
    for layer, tid in layers.items():
        rows.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": layer},
            }
        )
    for trace_id in recorder.bus.traces():
        stamped = recorder.bus.for_trace(trace_id)
        start = min(e.time for e in stamped)
        end = max(e.time for e in stamped)
        rows.append(
            {
                "name": trace_id,
                "cat": "trace",
                "ph": "X",
                "ts": start * 1_000_000,
                # Zero-duration bars are invisible; give single-event
                # traces one simulated second of width.
                "dur": max(1, end - start) * 1_000_000,
                "pid": 1,
                "tid": layers[stamped[0].layer],
                "args": {"events": len(stamped)},
            }
        )
    for event in events:
        args: dict[str, object] = {str(k): v for k, v in event.payload.items()}
        if event.trace is not None:
            args["trace"] = event.trace
            args["span"] = event.span
        rows.append(
            {
                "name": event.kind,
                "cat": event.layer,
                "ph": "i",
                "ts": event.time * 1_000_000,
                "pid": 1,
                "tid": layers[event.layer],
                "s": "t",
                "args": args,
            }
        )
    document = {"traceEvents": rows, "displayTimeUnit": "ms"}
    if path is not None:
        with open(path, "w") as f:
            json.dump(document, f)
    return document


def read_jsonl(path: str | Path) -> dict[str, object]:
    """Parse a trace file back into typed records.

    Returns ``{"events": [Event, ...], "decisions": [ControlDecision,
    ...], "profile": dict | None}``.
    """
    events: list[Event] = []
    decisions: list[ControlDecision] = []
    profile: dict[str, object] | None = None
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise MonitoringError(f"{path}:{lineno}: invalid JSONL: {exc}") from None
            kind = row.get("type")
            if kind == "event":
                events.append(
                    Event(
                        time=int(row["time"]),
                        layer=str(row["layer"]),
                        kind=str(row["kind"]),
                        payload=dict(row.get("payload", {})),
                        seq=int(row.get("seq", 0)),
                        trace=row.get("trace"),
                        span=int(row.get("span", 0)),
                    )
                )
            elif kind == "decision":
                decisions.append(
                    ControlDecision(
                        **{name: row.get(name) for name in _DECISION_FIELDS}
                    )
                )
            elif kind == "profile":
                profile = {k: v for k, v in row.items() if k != "type"}
            else:
                raise MonitoringError(f"{path}:{lineno}: unknown record type {kind!r}")
    events.sort(key=lambda e: e.seq)
    return {"events": events, "decisions": decisions, "profile": profile}

"""Opt-in wall-clock profiling of the simulation engine's tick loop.

The engine "routinely executes hundreds of thousands of ticks inside
the benchmark suite", so knowing where those ticks spend their time is
the difference between guessing and measuring when optimising the hot
path. The :class:`TickProfiler` accumulates, per component and per
periodic task, cumulative wall-clock seconds and call counts, plus a
log-bucketed histogram of whole-tick durations.

The profiler is attached to :class:`~repro.simulation.engine
.SimulationEngine` via its ``profiler`` field; with no profiler the
engine runs its original allocation-free loop, so the disabled cost is
one attribute check per *run*, not per tick.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Mapping

from repro.core.errors import MonitoringError

#: Upper bounds (seconds) of the tick-duration histogram buckets; the
#: final bucket is the overflow (> last bound).
HISTOGRAM_BOUNDS: tuple[float, ...] = (
    2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 5e-2, 1e-1,
)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


class TickProfiler:
    """Per-component / per-task cumulative timing and a tick histogram."""

    def __init__(self) -> None:
        self.component_seconds: dict[str, float] = {}
        self.component_calls: dict[str, int] = {}
        self.task_seconds: dict[str, float] = {}
        self.task_calls: dict[str, int] = {}
        #: Per-flow attribution in fleet runs: which flow's spans
        #: consume the batched executor's time. Empty outside fleet
        #: batching (the single-flow pipeline is already one component).
        self.flow_seconds: dict[str, float] = {}
        self.flow_calls: dict[str, int] = {}
        self.tick_count = 0
        #: Batched spans executed (0 on a pure per-tick run) — the
        #: marker that distinguishes span-batched from per-tick
        #: profiles in archived exports.
        self.span_count = 0
        self.tick_seconds_total = 0.0
        self.tick_seconds_max = 0.0
        self.histogram = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    # ------------------------------------------------------------------
    # Recording (called from the engine's instrumented loop)
    # ------------------------------------------------------------------
    def record_component(self, name: str, elapsed: float) -> None:
        self.component_seconds[name] = self.component_seconds.get(name, 0.0) + elapsed
        self.component_calls[name] = self.component_calls.get(name, 0) + 1

    def record_task(self, name: str, elapsed: float) -> None:
        self.task_seconds[name] = self.task_seconds.get(name, 0.0) + elapsed
        self.task_calls[name] = self.task_calls.get(name, 0) + 1

    def record_flow(self, name: str, elapsed: float) -> None:
        """Attribute a slice of a fleet executor's span to one flow.

        Flow time is a *breakdown* of the executor component's time,
        not an addition to it: ``instrumented_seconds`` intentionally
        excludes it, or the executor's work would count twice.
        """
        self.flow_seconds[name] = self.flow_seconds.get(name, 0.0) + elapsed
        self.flow_calls[name] = self.flow_calls.get(name, 0) + 1

    def record_tick(self, elapsed: float) -> None:
        self.tick_count += 1
        self.tick_seconds_total += elapsed
        if elapsed > self.tick_seconds_max:
            self.tick_seconds_max = elapsed
        self.histogram[bisect_left(HISTOGRAM_BOUNDS, elapsed)] += 1

    def record_span(self, ticks: int, elapsed: float) -> None:
        """Account a whole span of ``ticks`` ticks that took ``elapsed``.

        Span execution times the span as a unit, so per-tick durations
        are attributed at the span's mean: ``tick_count`` and the
        histogram advance by ``ticks`` (keeping ``sum(histogram) ==
        tick_count``), and the max tracks the mean-per-tick — the
        per-tick resolution inside a span is intentionally given up for
        the speed of not calling ``perf_counter`` twice per tick.
        """
        if ticks <= 0:
            return
        self.span_count += 1
        self.tick_count += ticks
        self.tick_seconds_total += elapsed
        mean = elapsed / ticks
        if mean > self.tick_seconds_max:
            self.tick_seconds_max = mean
        self.histogram[bisect_left(HISTOGRAM_BOUNDS, mean)] += ticks

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def instrumented_seconds(self) -> float:
        """Total time attributed to components and tasks.

        Always at most :attr:`tick_seconds_total` (each tick's duration
        wraps its components' and tasks' durations); the difference is
        the engine's own loop overhead plus hooks.
        """
        return sum(self.component_seconds.values()) + sum(self.task_seconds.values())

    def mean_tick_seconds(self) -> float:
        return self.tick_seconds_total / self.tick_count if self.tick_count else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot, used by the JSONL exporter."""
        return {
            "ticks": self.tick_count,
            "spans": self.span_count,
            "tick_seconds_total": self.tick_seconds_total,
            "tick_seconds_max": self.tick_seconds_max,
            "components": {
                name: {"seconds": seconds, "calls": self.component_calls[name]}
                for name, seconds in self.component_seconds.items()
            },
            "tasks": {
                name: {"seconds": seconds, "calls": self.task_calls[name]}
                for name, seconds in self.task_seconds.items()
            },
            "flows": {
                name: {"seconds": seconds, "calls": self.flow_calls[name]}
                for name, seconds in self.flow_seconds.items()
            },
            "histogram_bounds": list(HISTOGRAM_BOUNDS),
            "histogram": list(self.histogram),
        }

    def summary(self) -> str:
        """Text report: per-component/task totals and the tick histogram."""
        lines = [
            f"ticks: {self.tick_count}  "
            f"total {_format_seconds(self.tick_seconds_total)}  "
            f"mean {_format_seconds(self.mean_tick_seconds())}  "
            f"max {_format_seconds(self.tick_seconds_max)}"
        ]
        entries: list[tuple[str, str, float, int]] = [
            ("component", name, seconds, self.component_calls[name])
            for name, seconds in self.component_seconds.items()
        ] + [
            ("task", name, seconds, self.task_calls[name])
            for name, seconds in self.task_seconds.items()
        ] + [
            ("flow", name, seconds, self.flow_calls[name])
            for name, seconds in self.flow_seconds.items()
        ]
        for kind, name, seconds, calls in sorted(entries, key=lambda e: -e[2]):
            share = 100.0 * seconds / self.tick_seconds_total if self.tick_seconds_total else 0.0
            lines.append(
                f"  {kind:<9} {name:<28} {_format_seconds(seconds):>10} "
                f"({share:4.1f}%)  {calls} calls"
            )
        populated = [
            (bound, count)
            for bound, count in zip((*HISTOGRAM_BOUNDS, float("inf")), self.histogram)
            if count
        ]
        if populated:
            lines.append("  tick-time histogram (upper bound: ticks):")
            for bound, count in populated:
                label = _format_seconds(bound) if bound != float("inf") else "overflow"
                lines.append(f"    <= {label:>8}: {count}")
        return "\n".join(lines)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TickProfiler":
        """Rebuild a profiler snapshot from :meth:`as_dict` output."""
        profiler = cls()
        profiler.tick_count = int(data.get("ticks", 0))
        profiler.span_count = int(data.get("spans", 0))
        profiler.tick_seconds_total = float(data.get("tick_seconds_total", 0.0))
        profiler.tick_seconds_max = float(data.get("tick_seconds_max", 0.0))
        for name, entry in dict(data.get("components", {})).items():
            profiler.component_seconds[name] = float(entry["seconds"])
            profiler.component_calls[name] = int(entry["calls"])
        for name, entry in dict(data.get("tasks", {})).items():
            profiler.task_seconds[name] = float(entry["seconds"])
            profiler.task_calls[name] = int(entry["calls"])
        for name, entry in dict(data.get("flows", {})).items():
            profiler.flow_seconds[name] = float(entry["seconds"])
            profiler.flow_calls[name] = int(entry["calls"])
        histogram = list(data.get("histogram", []))
        if histogram:
            # A snapshot from a different bucket layout cannot be
            # loaded into this one — dropping it silently would report
            # an all-zero histogram against a non-zero tick count.
            if len(histogram) != len(profiler.histogram):
                raise MonitoringError(
                    f"profile histogram has {len(histogram)} buckets, "
                    f"expected {len(profiler.histogram)} "
                    f"(mismatched HISTOGRAM_BOUNDS?)"
                )
            profiler.histogram = [int(c) for c in histogram]
        return profiler

"""Declarative scenarios: the DSL, the curated catalog, and the gate.

A :class:`Scenario` declares one evaluation case — workload pattern ×
chaos schedule × SLO targets × budget × controller style × exactness —
as validated pure data with lossless JSON round-trips, the way the
chaos DSL declares faults. :mod:`repro.scenarios.catalog` curates nine
named scenarios; :func:`run_catalog` runs any set of them on the
deterministic parallel runner and folds the per-scenario scorecards
into a :class:`CatalogMatrix`, whose committed serialisation
(``results/SCORECARD_catalog.json``) the CI ``catalog-gate`` job diffs
on every change. External traces enter through the ``trace`` pattern
kind, replayed bit-exactly by
:class:`~repro.workload.generators.TracePattern`.
"""

from repro.scenarios.catalog import (
    CATALOG_NAMES,
    CATALOG_SEED,
    VARIANT_DURATIONS,
    catalog,
    catalog_scenario,
)
from repro.scenarios.runner import (
    CatalogEntry,
    CatalogMatrix,
    run_catalog,
    run_scenario,
)
from repro.scenarios.spec import PatternSpec, Scenario, SLOTargets

__all__ = [
    "PatternSpec",
    "Scenario",
    "SLOTargets",
    "CATALOG_NAMES",
    "CATALOG_SEED",
    "VARIANT_DURATIONS",
    "catalog",
    "catalog_scenario",
    "CatalogEntry",
    "CatalogMatrix",
    "run_catalog",
    "run_scenario",
]

"""The curated scenario catalog: the manager's standing exam.

Nine named scenarios crossing workload shape × fault schedule × SLO ×
budget × controller style, each defined relative to its horizon so the
same scenario exists in two variants: ``smoke`` (2 simulated hours —
the CI ``catalog-gate`` workload) and ``full`` (a day or more — the
offline evaluation). Fault windows and workload landmarks are fractions
of the horizon, so both variants exercise the same story at different
scales.

Every scenario is pure data (:class:`~repro.scenarios.spec.Scenario`);
the committed per-scenario scorecard matrix in
``results/SCORECARD_catalog.json`` pins the smoke variant's numbers as
a regression gate.
"""

from __future__ import annotations

from repro.chaos.schedule import ChaosSchedule, FaultKind, FaultSpec
from repro.core.errors import ConfigurationError
from repro.scenarios.spec import PatternSpec, Scenario, SLOTargets

#: Horizon (simulated seconds) per catalog variant.
VARIANT_DURATIONS = {"smoke": 2 * 3600, "full": 24 * 3600}

#: Scenarios that only show their shape over several days get a longer
#: full-variant horizon.
_LONG_FULL = {"seasonal-drift": 3 * 24 * 3600, "weekend-retail": 7 * 24 * 3600}


def _flash_crowd_throttle_storm(d: int, seed: int) -> Scenario:
    return Scenario(
        name="flash-crowd-throttle-storm",
        description="A page goes viral exactly while storage is throttling: "
                    "the flash crowd lands inside a throttle-storm window.",
        workload=PatternSpec("sum", inner=(
            PatternSpec("constant", {"value": 900.0}),
            PatternSpec("flash_crowd", {"peak": 2600.0, "at": 3 * d // 8,
                                        "rise_seconds": max(60, d // 60),
                                        "decay_seconds": max(300, d // 12)}),
        )),
        duration=d,
        seed=seed,
        controller="adaptive",
        budget_usd_per_hour=3.0,
        chaos=ChaosSchedule(faults=(
            FaultSpec(FaultKind.THROTTLE_STORM, start=3 * d // 8,
                      duration=d // 8, intensity=0.8),
        ), seed=seed, name="flash-crowd-throttle-storm"),
    )


def _seasonal_drift(d: int, seed: int) -> Scenario:
    return Scenario(
        name="seasonal-drift",
        description="Demand drifts upward all horizon long while a faster "
                    "cycle rides on top — the operating point the gain "
                    "memory was calibrated for slowly stops existing.",
        workload=PatternSpec("product", inner=(
            PatternSpec("ramp", {"start_rate": 700.0, "end_rate": 1900.0,
                                 "t0": 0, "t1": d}),
            PatternSpec("sinusoid", {"mean": 1.0, "amplitude": 0.35,
                                     "period": max(1, d // 6), "phase": 0}),
        )),
        duration=d,
        seed=seed,
        controller="quasi",
        budget_usd_per_hour=3.0,
    )


def _cascading_brownouts(d: int, seed: int) -> Scenario:
    return Scenario(
        name="cascading-brownouts",
        description="Faults walk down the flow: an ingestion brownout, a "
                    "stuck analytics rebalance, then a storage throttle "
                    "storm, each landing before the previous recovery "
                    "settles.",
        workload=PatternSpec("sinusoid", {"mean": 1600.0, "amplitude": 900.0,
                                          "period": d, "phase": d // 4}),
        duration=d,
        seed=seed,
        controller="adaptive",
        budget_usd_per_hour=3.5,
        chaos=ChaosSchedule(faults=(
            FaultSpec(FaultKind.SHARD_BROWNOUT, start=d // 4,
                      duration=d // 8, intensity=0.6),
            FaultSpec(FaultKind.REBALANCE_FAIL, start=3 * d // 8,
                      duration=d // 16),
            FaultSpec(FaultKind.THROTTLE_STORM, start=d // 2,
                      duration=d // 8, intensity=0.7),
            FaultSpec(FaultKind.SHARD_BROWNOUT, start=5 * d // 8,
                      duration=d // 12, intensity=0.4),
        ), seed=seed, name="cascading-brownouts"),
    )


def _key_skew_reshard(d: int, seed: int) -> Scenario:
    return Scenario(
        name="key-skew-reshard",
        description="Adversarial hot keys (zipf 1.6) under a bursty ramp "
                    "while resharding runs 3x slow — capacity arrives, the "
                    "split that spreads it does not.",
        workload=PatternSpec("bursty", {"bursts_per_hour": 2.0, "multiplier": 2.5,
                                        "duration_seconds": 300}, inner=(
            PatternSpec("ramp", {"start_rate": 700.0, "end_rate": 2000.0,
                                 "t0": d // 8, "t1": 7 * d // 8}),
        )),
        duration=d,
        seed=seed,
        controller="adaptive",
        key_skew=1.6,
        budget_usd_per_hour=3.5,
        chaos=ChaosSchedule(faults=(
            FaultSpec(FaultKind.RESHARD_STALL, start=d // 3,
                      duration=d // 6, intensity=3.0),
            FaultSpec(FaultKind.RESHARD_STALL, start=2 * d // 3,
                      duration=d // 8, intensity=2.0),
        ), seed=seed, name="key-skew-reshard"),
    )


def _diurnal_sensor_dropout(d: int, seed: int) -> Scenario:
    return Scenario(
        name="diurnal-sensor-dropout",
        description="The evening ramp with the instruments failing: sensors "
                    "go blind during the climb, then report two-minute-old "
                    "data near the peak.",
        workload=PatternSpec("diurnal", {"mean": 1500.0, "amplitude": 1100.0,
                                         "peak_hour": 20.0}),
        duration=d,
        seed=seed,
        controller="adaptive",
        budget_usd_per_hour=3.5,
        chaos=ChaosSchedule(faults=(
            FaultSpec(FaultKind.METRIC_DROPOUT, start=d // 3, duration=d // 24),
            FaultSpec(FaultKind.METRIC_DELAY, start=5 * d // 8,
                      duration=d // 12, intensity=120.0),
        ), seed=seed, name="diurnal-sensor-dropout"),
    )


def _noisy_neighbor_squeeze(d: int, seed: int) -> Scenario:
    return Scenario(
        name="noisy-neighbor-squeeze",
        description="Contention as weather: log-normal demand noise while "
                    "neighbors brown out shards, throttle the table, and "
                    "get capacity updates rejected.",
        workload=PatternSpec("noisy", {"sigma": 0.25, "interval": 120}, inner=(
            PatternSpec("sinusoid", {"mean": 1800.0, "amplitude": 1000.0,
                                     "period": d, "phase": d // 4}),
        )),
        duration=d,
        seed=seed,
        controller="rule",
        slo=SLOTargets(utilization_band=85.0, max_violation_pct=40.0),
        budget_usd_per_hour=4.0,
        chaos=ChaosSchedule(faults=(
            FaultSpec(FaultKind.SHARD_BROWNOUT, start=d // 4,
                      duration=d // 6, intensity=0.35),
            FaultSpec(FaultKind.THROTTLE_STORM, start=9 * d // 20,
                      duration=d // 6, intensity=0.45),
            FaultSpec(FaultKind.UPDATE_REJECT, start=7 * d // 10,
                      duration=d // 12),
        ), seed=seed, name="noisy-neighbor-squeeze"),
    )


def _step_surge_worker_crash(d: int, seed: int) -> Scenario:
    return Scenario(
        name="step-surge-worker-crash",
        description="A step surge holds for half the horizon and a worker "
                    "crashes at its midpoint — the fixed-gain baseline's "
                    "worst day.",
        workload=PatternSpec("step", {"base": 800.0, "level": 2200.0,
                                      "at": d // 3, "until": 3 * d // 4}),
        duration=d,
        seed=seed,
        controller="fixed",
        slo=SLOTargets(utilization_band=85.0, max_violation_pct=35.0),
        budget_usd_per_hour=3.5,
        chaos=ChaosSchedule(faults=(
            FaultSpec(FaultKind.WORKER_CRASH, start=d // 2, intensity=1.0),
        ), seed=seed, name="step-surge-worker-crash"),
    )


def _trace_replay_daily(d: int, seed: int) -> Scenario:
    return Scenario(
        name="trace-replay-daily",
        description="An imported external trace (CSV, irregular sampling "
                    "with gaps) replayed bit-exactly through the grid API.",
        workload=PatternSpec("trace", {"csv": "sample_daily.csv", "scale": 1.0}),
        duration=d,
        seed=seed,
        controller="adaptive",
    )


def _weekend_retail(d: int, seed: int) -> Scenario:
    return Scenario(
        name="weekend-retail",
        description="A retail diurnal cycle with busy weekends: the weekly "
                    "shape squeezes the controllers through seven different "
                    "days.",
        workload=PatternSpec("weekly", {"day_factors": [0.9, 0.8, 0.8, 0.85,
                                                        1.0, 1.5, 1.6]}, inner=(
            PatternSpec("diurnal", {"mean": 1200.0, "amplitude": 800.0,
                                    "peak_hour": 19.0}),
        )),
        duration=d,
        seed=seed,
        controller="adaptive",
        budget_usd_per_hour=3.0,
    )


_BUILDERS = (
    _flash_crowd_throttle_storm,
    _seasonal_drift,
    _cascading_brownouts,
    _key_skew_reshard,
    _diurnal_sensor_dropout,
    _noisy_neighbor_squeeze,
    _step_surge_worker_crash,
    _trace_replay_daily,
    _weekend_retail,
)

#: Every catalog scenario name, in catalog order.
CATALOG_NAMES = tuple(
    builder(VARIANT_DURATIONS["smoke"], 7).name for builder in _BUILDERS
)

#: Default seed for catalog runs (matches the scorecard smoke seed).
CATALOG_SEED = 7


def catalog(variant: str = "smoke", seed: int = CATALOG_SEED) -> dict[str, Scenario]:
    """Every catalog scenario at the given variant's horizon, by name."""
    if variant not in VARIANT_DURATIONS:
        raise ConfigurationError(
            f"unknown catalog variant {variant!r}; one of: "
            f"{', '.join(sorted(VARIANT_DURATIONS))}"
        )
    scenarios = {}
    for builder in _BUILDERS:
        duration = VARIANT_DURATIONS[variant]
        probe = builder(duration, seed)
        if variant == "full" and probe.name in _LONG_FULL:
            probe = builder(_LONG_FULL[probe.name], seed)
        scenarios[probe.name] = probe
    return scenarios


def catalog_scenario(name: str, variant: str = "smoke",
                     seed: int = CATALOG_SEED) -> Scenario:
    """One catalog scenario by name."""
    scenarios = catalog(variant, seed=seed)
    if name not in scenarios:
        raise ConfigurationError(
            f"unknown catalog scenario {name!r}; one of: {', '.join(CATALOG_NAMES)}"
        )
    return scenarios[name]

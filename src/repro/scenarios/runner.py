"""Running scenarios and gating the catalog's scorecard matrix.

:func:`run_scenario` compiles one :class:`~repro.scenarios.spec.Scenario`
into a managed run and condenses it to a
:class:`~repro.analysis.scorecard.RunScorecard` (scored against the
scenario's own SLO band, wall-clock fields zeroed so the card is a pure
function of the spec). :func:`run_catalog` fans a set of scenarios over
the deterministic process-parallel runner — results are byte-identical
at any ``jobs`` because every card is already machine-independent — and
folds them into a :class:`CatalogMatrix`: the committed
``results/SCORECARD_catalog.json`` artifact the CI ``catalog-gate`` job
diffs, per scenario and per field, against a fresh run.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.runner import Scenario as SweepCase
from repro.analysis.runner import run_scenarios
from repro.analysis.scorecard import RunScorecard, _require_same_exactness
from repro.core.errors import ConfigurationError
from repro.scenarios.spec import Scenario


def run_scenario(scenario: Scenario, *, fast: bool = False) -> RunScorecard:
    """Run one scenario and condense it into a deterministic scorecard.

    ``fast`` overrides the spec onto the approximate workload path; the
    card then carries ``exact=False`` and refuses to gate against exact
    baselines. Wall-clock fields are zeroed: same spec, same card bytes,
    on any machine at any parallelism.
    """
    manager = scenario.build_manager(exact=False if fast else None)
    result = manager.run(scenario.duration)
    card = RunScorecard.from_result(
        scenario.name, result,
        slo_band=scenario.slo.utilization_band, seed=scenario.seed,
    )
    return card.without_wall_clock()


def _run_catalog_entry(spec: dict, fast: bool) -> RunScorecard:
    """Module-level sweep worker (picklable by reference)."""
    return run_scenario(Scenario.from_dict(spec), fast=fast)


@dataclass(frozen=True)
class CatalogEntry:
    """One scenario's row in the matrix: its card plus the verdicts
    only the spec can compute (SLO tolerance, budget compliance)."""

    card: RunScorecard
    #: Worst per-layer SLO violation rate within the spec's tolerance.
    slo_ok: bool
    #: Cost within ``budget_usd_per_hour * hours``; None when the
    #: scenario declares no budget.
    within_budget: bool | None

    @classmethod
    def from_card(cls, scenario: Scenario, card: RunScorecard) -> "CatalogEntry":
        worst = max(card.slo_violation_pct.values(), default=0.0)
        budget = scenario.budget_usd_per_hour
        return cls(
            card=card,
            slo_ok=worst <= scenario.slo.max_violation_pct,
            within_budget=(
                None if budget is None
                else card.total_cost <= budget * card.duration_seconds / 3600.0
            ),
        )

    def to_dict(self) -> dict:
        return {
            "slo_ok": self.slo_ok,
            "within_budget": self.within_budget,
            "card": self.card.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CatalogEntry":
        return cls(
            card=RunScorecard.from_dict(data["card"]),
            slo_ok=bool(data.get("slo_ok", False)),
            within_budget=(
                None if data.get("within_budget") is None
                else bool(data["within_budget"])
            ),
        )


@dataclass(frozen=True)
class CatalogMatrix:
    """The per-scenario scorecard matrix: the catalog's regression gate.

    One :class:`CatalogEntry` per scenario, plus the variant and
    workload exactness the matrix was produced under. Serialises to the
    committed ``results/SCORECARD_catalog.json`` baseline;
    :meth:`compare` walks the union of both sides' scenarios so a
    scenario added, removed, or renamed is drift, not silence.
    """

    variant: str
    exact: bool = True
    entries: dict[str, CatalogEntry] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Identification in mixed-exactness errors (duck-types cards)."""
        return f"catalog[{self.variant}]"

    def to_dict(self) -> dict:
        return {
            "kind": "scenario-catalog",
            "variant": self.variant,
            "exact": self.exact,
            "scenarios": {
                name: entry.to_dict() for name, entry in sorted(self.entries.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping) -> "CatalogMatrix":
        if data.get("kind") != "scenario-catalog":
            raise ConfigurationError(
                f"not a scenario-catalog matrix (kind={data.get('kind')!r})"
            )
        return cls(
            variant=str(data.get("variant", "smoke")),
            exact=bool(data.get("exact", True)),
            entries={
                str(name): CatalogEntry.from_dict(entry)
                for name, entry in data.get("scenarios", {}).items()
            },
        )

    @classmethod
    def from_json_file(cls, path: str | Path) -> "CatalogMatrix":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def restrict(self, names) -> "CatalogMatrix":
        """A copy holding only the named scenarios.

        The CLI gates a partial run (``scenario run NAME --check``)
        against the committed baseline restricted to the same names, so
        the scenarios that were not run do not read as removed. A name
        absent from this matrix stays absent — the compare then reports
        it as baseline-absent drift rather than hiding the typo.
        """
        wanted = set(names)
        return dataclasses.replace(
            self,
            entries={n: e for n, e in self.entries.items() if n in wanted},
        )

    # ------------------------------------------------------------------
    # The regression gate
    # ------------------------------------------------------------------
    def compare(self, baseline: "CatalogMatrix", rel_tol: float = 1e-9) -> list[str]:
        """Drift messages vs a committed baseline; empty means green.

        Matrix-level fields first (variant), then every scenario's
        verdicts and card through the single-run comparison with the
        scenario name prefixed. Mixed exact/approximate matrices raise,
        exactly like single-card comparisons.
        """
        _require_same_exactness(self, baseline)
        drifts: list[str] = []
        if self.variant != baseline.variant:
            drifts.append(f"variant: baseline {baseline.variant!r}, got {self.variant!r}")
        for name in sorted(set(baseline.entries) | set(self.entries)):
            mine = self.entries.get(name)
            theirs = baseline.entries.get(name)
            if mine is None or theirs is None:
                drifts.append(
                    f"scenarios.{name}: baseline "
                    f"{'present' if theirs else 'absent'}, got "
                    f"{'present' if mine else 'absent'}"
                )
                continue
            for verdict in ("slo_ok", "within_budget"):
                want, got = getattr(theirs, verdict), getattr(mine, verdict)
                if want != got:
                    drifts.append(f"{name}.{verdict}: baseline {want!r}, got {got!r}")
            drifts.extend(f"{name}.{d}" for d in mine.card.compare(theirs.card, rel_tol))
        return drifts

    def summary(self) -> str:
        """One-line-per-scenario matrix rendering (the CLI's output)."""
        exactness = "" if self.exact else ", APPROXIMATE fast workload path"
        lines = [
            f"scenario catalog [{self.variant}] — "
            f"{len(self.entries)} scenarios{exactness}",
            f"  {'scenario':<28} {'cost $':>9} {'worst slo%':>10} "
            f"{'slo':>4} {'budget':>7} {'mttr':>12} {'inv':>4}",
        ]
        for name, entry in sorted(self.entries.items()):
            card = entry.card
            worst = max(card.slo_violation_pct.values(), default=0.0)
            recovered = sum(1 for v in card.mttr_by_fault.values() if v is not None)
            mttr = (
                f"{recovered}/{len(card.mttr_by_fault)} rec"
                if card.mttr_by_fault else "-"
            )
            budget = (
                "-" if entry.within_budget is None
                else ("ok" if entry.within_budget else "OVER")
            )
            lines.append(
                f"  {name:<28} {card.total_cost:>9.4f} {worst:>10.2f} "
                f"{'ok' if entry.slo_ok else 'VIOL':>4} {budget:>7} {mttr:>12} "
                f"{'ok' if card.invariants_ok else 'BAD':>4}"
            )
        return "\n".join(lines)


def run_catalog(
    scenarios: Mapping[str, Scenario] | Sequence[Scenario],
    *,
    variant: str = "smoke",
    jobs: int = 1,
    fast: bool = False,
) -> CatalogMatrix:
    """Run scenarios on the deterministic parallel runner; fold the
    cards into a :class:`CatalogMatrix`.

    Every scenario carries its own seed and every card is wall-clock
    free, so the matrix JSON is byte-identical at any ``jobs``.
    """
    ordered = (
        list(scenarios.values()) if isinstance(scenarios, Mapping) else list(scenarios)
    )
    cases = [
        SweepCase(
            name=scenario.name,
            fn=_run_catalog_entry,
            kwargs={"spec": scenario.to_dict(), "fast": fast},
        )
        for scenario in ordered
    ]
    cards = run_scenarios(cases, jobs=jobs)
    return CatalogMatrix(
        variant=variant,
        exact=not fast and all(s.exact for s in ordered),
        entries={
            scenario.name: CatalogEntry.from_card(scenario, card)
            for scenario, card in zip(ordered, cards)
        },
    )

"""The scenario DSL: workload × faults × SLO × budget, as pure data.

A :class:`Scenario` declares one complete evaluation case — a workload
shape (:class:`PatternSpec`), an optional
:class:`~repro.chaos.schedule.ChaosSchedule`, SLO targets, a cost
budget, the controller style, initial capacities, and workload
exactness — with no behaviour of its own. Like the chaos DSL it
round-trips losslessly through plain dicts/JSON (``parse(serialize(s))
== s``, pinned by hypothesis in ``tests/test_scenarios_property.py``),
and every field is validated at construction: an invalid spec raises
:class:`ConfigurationError` naming the offending field.

:meth:`Scenario.build_manager` is the only bridge to behaviour: it
compiles the spec into a ready-to-run
:class:`~repro.core.manager.FlowElasticityManager`. Stochastic pattern
nodes (``bursty``, ``noisy``) derive their RNG stream from the scenario
seed and the node's *path* in the spec tree, so editing one branch of a
workload never reshuffles the randomness of its siblings.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from importlib import resources
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.analysis.runner import derive_scenario_seed
from repro.chaos.schedule import ChaosSchedule
from repro.core.config import CONTROLLER_FACTORIES
from repro.core.errors import ConfigurationError
from repro.workload.generators import (
    BurstyRate,
    CompositeRate,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    NoisyRate,
    RampRate,
    RatePattern,
    SinusoidalRate,
    StepRate,
    TracePattern,
    WeeklyRate,
)
from repro.workload.traces import Trace


def _reject(where: str, field_name: str, problem: str) -> ConfigurationError:
    """The DSL's one error shape: always names the offending field."""
    return ConfigurationError(f"scenario spec: {where}.{field_name} {problem}")


def _as_float(where: str, name: str, value, *, minimum: float | None = None,
              maximum: float | None = None, exclusive_min: bool = False) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _reject(where, name, f"must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise _reject(where, name, f"must be finite, got {value!r}")
    if minimum is not None:
        if exclusive_min and value <= minimum:
            raise _reject(where, name, f"must be > {minimum}, got {value}")
        if not exclusive_min and value < minimum:
            raise _reject(where, name, f"must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise _reject(where, name, f"must be <= {maximum}, got {value}")
    return value


def _as_int(where: str, name: str, value, *, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _reject(where, name, f"must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise _reject(where, name, f"must be >= {minimum}, got {value}")
    return int(value)


# ----------------------------------------------------------------------
# Pattern specs
# ----------------------------------------------------------------------

#: ``kind -> (validator, children)`` where ``children`` is the exact
#: child-count a node takes, or ``"+"`` for one-or-more. Validators
#: take ``(params, where)`` and return the normalised params mapping.
_PATTERN_KINDS: dict[str, tuple[Callable[[Mapping, str], dict], int | str]] = {}


def _pattern_kind(kind: str, children: int | str = 0):
    def register(validator):
        _PATTERN_KINDS[kind] = (validator, children)
        return validator
    return register


@_pattern_kind("constant")
def _check_constant(p: Mapping, where: str) -> dict:
    return {"value": _as_float(where, "value", p.get("value"), minimum=0.0)}


@_pattern_kind("step")
def _check_step(p: Mapping, where: str) -> dict:
    out = {
        "base": _as_float(where, "base", p.get("base"), minimum=0.0),
        "level": _as_float(where, "level", p.get("level"), minimum=0.0),
        "at": _as_int(where, "at", p.get("at"), minimum=0),
    }
    until = p.get("until")
    if until is not None:
        until = _as_int(where, "until", until)
        if until <= out["at"]:
            raise _reject(where, "until", f"must be after at={out['at']}, got {until}")
    out["until"] = until
    return out


@_pattern_kind("ramp")
def _check_ramp(p: Mapping, where: str) -> dict:
    out = {
        "start_rate": _as_float(where, "start_rate", p.get("start_rate"), minimum=0.0),
        "end_rate": _as_float(where, "end_rate", p.get("end_rate"), minimum=0.0),
        "t0": _as_int(where, "t0", p.get("t0"), minimum=0),
        "t1": _as_int(where, "t1", p.get("t1")),
    }
    if out["t1"] <= out["t0"]:
        raise _reject(where, "t1", f"must be after t0={out['t0']}, got {out['t1']}")
    return out


@_pattern_kind("sinusoid")
def _check_sinusoid(p: Mapping, where: str) -> dict:
    return {
        "mean": _as_float(where, "mean", p.get("mean"), minimum=0.0),
        "amplitude": _as_float(where, "amplitude", p.get("amplitude"), minimum=0.0),
        "period": _as_int(where, "period", p.get("period"), minimum=1),
        "phase": _as_int(where, "phase", p.get("phase", 0)),
    }


@_pattern_kind("diurnal")
def _check_diurnal(p: Mapping, where: str) -> dict:
    return {
        "mean": _as_float(where, "mean", p.get("mean"), minimum=0.0),
        "amplitude": _as_float(where, "amplitude", p.get("amplitude"), minimum=0.0),
        "peak_hour": _as_float(where, "peak_hour", p.get("peak_hour", 20.0),
                               minimum=0.0, maximum=24.0),
    }


@_pattern_kind("flash_crowd")
def _check_flash_crowd(p: Mapping, where: str) -> dict:
    return {
        "peak": _as_float(where, "peak", p.get("peak"), minimum=0.0),
        "at": _as_int(where, "at", p.get("at"), minimum=0),
        "rise_seconds": _as_int(where, "rise_seconds", p.get("rise_seconds", 60), minimum=1),
        "decay_seconds": _as_int(where, "decay_seconds", p.get("decay_seconds", 600), minimum=1),
    }


@_pattern_kind("weekly", children=1)
def _check_weekly(p: Mapping, where: str) -> dict:
    factors = p.get("day_factors")
    if not isinstance(factors, (list, tuple)) or len(factors) != 7:
        raise _reject(where, "day_factors", f"must be a list of 7 numbers, got {factors!r}")
    return {
        "day_factors": [
            _as_float(where, f"day_factors[{i}]", f, minimum=0.0)
            for i, f in enumerate(factors)
        ]
    }


@_pattern_kind("bursty", children=1)
def _check_bursty(p: Mapping, where: str) -> dict:
    return {
        "bursts_per_hour": _as_float(where, "bursts_per_hour",
                                     p.get("bursts_per_hour", 0.5), minimum=0.0),
        "multiplier": _as_float(where, "multiplier", p.get("multiplier", 2.5), minimum=1.0),
        "duration_seconds": _as_int(where, "duration_seconds",
                                    p.get("duration_seconds", 300), minimum=1),
    }


@_pattern_kind("noisy", children=1)
def _check_noisy(p: Mapping, where: str) -> dict:
    return {
        "sigma": _as_float(where, "sigma", p.get("sigma", 0.1), minimum=0.0),
        "interval": _as_int(where, "interval", p.get("interval", 60), minimum=1),
    }


@_pattern_kind("sum", children="+")
def _check_sum(p: Mapping, where: str) -> dict:
    return {}


@_pattern_kind("product", children="+")
def _check_product(p: Mapping, where: str) -> dict:
    return {}


@_pattern_kind("trace")
def _check_trace(p: Mapping, where: str) -> dict:
    csv = p.get("csv")
    points = p.get("points")
    if (csv is None) == (points is None):
        raise _reject(where, "csv", "or .points: exactly one must be set")
    out: dict = {"scale": _as_float(where, "scale", p.get("scale", 1.0), exclusive_min=True,
                                    minimum=0.0)}
    if csv is not None:
        if not isinstance(csv, str) or not csv:
            raise _reject(where, "csv", f"must be a non-empty path string, got {csv!r}")
        out["csv"] = csv
        out["points"] = None
    else:
        if not isinstance(points, (list, tuple)) or not points:
            raise _reject(where, "points", f"must be a non-empty list of [time, value] pairs, "
                                           f"got {points!r}")
        normalised = []
        last_t: int | None = None
        for i, pair in enumerate(points):
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise _reject(where, f"points[{i}]", f"must be a [time, value] pair, got {pair!r}")
            t = _as_int(where, f"points[{i}].time", pair[0], minimum=0)
            v = _as_float(where, f"points[{i}].value", pair[1], minimum=0.0)
            if last_t is not None and t <= last_t:
                raise _reject(where, f"points[{i}].time",
                              f"must be strictly increasing, got {t} after {last_t}")
            normalised.append([t, v])
            last_t = t
        out["csv"] = None
        out["points"] = normalised
    return out


#: Where ``trace`` specs with a bare (relative) ``csv`` filename are
#: resolved first; falls back to the working directory.
def _data_dir() -> Path:
    return Path(str(resources.files("repro.scenarios") / "data"))


@dataclass(frozen=True, eq=True)
class PatternSpec:
    """One node of a declarative workload tree (see module docstring).

    ``kind`` selects a :class:`~repro.workload.generators.RatePattern`;
    ``params`` are its validated, normalised knobs; ``inner`` holds the
    child specs of wrapper/composite kinds (``weekly``, ``bursty``,
    ``noisy`` take exactly one; ``sum``/``product`` one or more).
    """

    kind: str
    params: dict = field(default_factory=dict)
    inner: tuple["PatternSpec", ...] = ()

    def __post_init__(self) -> None:
        self._validate("workload")

    def _validate(self, where: str) -> None:
        if self.kind not in _PATTERN_KINDS:
            raise _reject(where, "kind",
                          f"must be one of {sorted(_PATTERN_KINDS)}, got {self.kind!r}")
        validator, children = _PATTERN_KINDS[self.kind]
        object.__setattr__(self, "inner", tuple(self.inner))
        for child in self.inner:
            if not isinstance(child, PatternSpec):
                raise _reject(where, "inner", f"entries must be PatternSpec, got {child!r}")
        if children == "+":
            if not self.inner:
                raise _reject(where, "inner",
                              f"{self.kind!r} needs at least one child pattern")
        elif len(self.inner) != children:
            raise _reject(where, "inner",
                          f"{self.kind!r} takes exactly {children} child pattern(s), "
                          f"got {len(self.inner)}")
        if not isinstance(self.params, Mapping):
            raise _reject(where, "params", f"must be a mapping, got {self.params!r}")
        unknown = sorted(set(self.params) - set(_param_names(self.kind)))
        if unknown:
            raise _reject(where, unknown[0],
                          f"is not a parameter of pattern kind {self.kind!r}")
        object.__setattr__(self, "params", validator(self.params, where))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, **self.params}
        if self.inner:
            out["inner"] = [child.to_dict() for child in self.inner]
        return out

    @classmethod
    def from_dict(cls, data, where: str = "workload") -> "PatternSpec":
        if not isinstance(data, Mapping):
            raise _reject(where, "kind", f"pattern must be a mapping, got {data!r}")
        kind = data.get("kind")
        if kind not in _PATTERN_KINDS:
            raise _reject(where, "kind",
                          f"must be one of {sorted(_PATTERN_KINDS)}, got {kind!r}")
        inner = tuple(
            cls.from_dict(child, where=f"{where}.inner[{i}]")
            for i, child in enumerate(data.get("inner", ()))
        )
        params = {k: v for k, v in data.items() if k not in ("kind", "inner")}
        return cls(kind=kind, params=params, inner=inner)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def build(self, seed: int, horizon: int, where: str = "workload") -> RatePattern:
        """Compile into a concrete :class:`RatePattern`.

        ``seed`` and ``horizon`` come from the enclosing scenario;
        stochastic nodes derive an independent RNG stream from
        ``(seed, where)`` so the draw is a pure function of the spec
        path, never of evaluation order.
        """
        p = self.params
        children = [
            child.build(seed, horizon, where=f"{where}.inner[{i}]")
            for i, child in enumerate(self.inner)
        ]
        if self.kind == "constant":
            return ConstantRate(p["value"])
        if self.kind == "step":
            return StepRate(p["base"], p["level"], p["at"], p["until"])
        if self.kind == "ramp":
            return RampRate(p["start_rate"], p["end_rate"], p["t0"], p["t1"])
        if self.kind == "sinusoid":
            return SinusoidalRate(p["mean"], p["amplitude"], p["period"], p["phase"])
        if self.kind == "diurnal":
            return DiurnalRate(p["mean"], p["amplitude"], p["peak_hour"])
        if self.kind == "flash_crowd":
            return FlashCrowdRate(p["peak"], p["at"], p["rise_seconds"], p["decay_seconds"])
        if self.kind == "weekly":
            return WeeklyRate(children[0], p["day_factors"])
        if self.kind == "bursty":
            return BurstyRate(
                children[0], self._rng(seed, where), horizon,
                bursts_per_hour=p["bursts_per_hour"], multiplier=p["multiplier"],
                duration_seconds=p["duration_seconds"],
            )
        if self.kind == "noisy":
            return NoisyRate(
                children[0], self._rng(seed, where), horizon,
                sigma=p["sigma"], interval=p["interval"],
            )
        if self.kind == "sum":
            return CompositeRate(children, mode="sum")
        if self.kind == "product":
            return CompositeRate(children, mode="product")
        if self.kind == "trace":
            return TracePattern(self._load_trace(where), scale=p["scale"])
        raise _reject(where, "kind", f"unbuildable pattern kind {self.kind!r}")  # pragma: no cover

    def _load_trace(self, where: str) -> Trace:
        if self.params["points"] is not None:
            return Trace("inline", ((t, v) for t, v in self.params["points"]))
        csv = self.params["csv"]
        path = Path(csv)
        if not path.is_absolute():
            candidate = _data_dir() / csv
            if candidate.exists():
                path = candidate
        if not path.exists():
            raise _reject(where, "csv",
                          f"file {csv!r} not found (looked in the scenario data "
                          f"directory and {Path.cwd()})")
        return Trace.from_csv(path)

    @staticmethod
    def _rng(seed: int, where: str) -> np.random.Generator:
        return np.random.default_rng(derive_scenario_seed(seed, f"pattern:{where}"))


def _param_names(kind: str) -> tuple[str, ...]:
    """The parameter names a pattern kind accepts (for unknown-key
    rejection without re-running its validator)."""
    return {
        "constant": ("value",),
        "step": ("base", "level", "at", "until"),
        "ramp": ("start_rate", "end_rate", "t0", "t1"),
        "sinusoid": ("mean", "amplitude", "period", "phase"),
        "diurnal": ("mean", "amplitude", "peak_hour"),
        "flash_crowd": ("peak", "at", "rise_seconds", "decay_seconds"),
        "weekly": ("day_factors",),
        "bursty": ("bursts_per_hour", "multiplier", "duration_seconds"),
        "noisy": ("sigma", "interval"),
        "sum": (),
        "product": (),
        "trace": ("csv", "points", "scale"),
    }[kind]


# ----------------------------------------------------------------------
# SLO targets
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SLOTargets:
    """What "healthy" means for a scenario run.

    ``utilization_band`` is the per-layer utilisation ceiling (%) the
    scorecard scores violations against; ``max_violation_pct`` is the
    worst per-layer violation rate (%) the scenario tolerates before
    its ``slo_ok`` verdict flips.
    """

    utilization_band: float = 85.0
    max_violation_pct: float = 15.0

    def __post_init__(self) -> None:
        band = _as_float("slo", "utilization_band", self.utilization_band,
                         minimum=0.0, maximum=100.0, exclusive_min=True)
        worst = _as_float("slo", "max_violation_pct", self.max_violation_pct,
                          minimum=0.0, maximum=100.0)
        object.__setattr__(self, "utilization_band", band)
        object.__setattr__(self, "max_violation_pct", worst)

    def to_dict(self) -> dict:
        return {
            "utilization_band": self.utilization_band,
            "max_violation_pct": self.max_violation_pct,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SLOTargets":
        unknown = sorted(set(data) - {"utilization_band", "max_violation_pct"})
        if unknown:
            raise _reject("slo", unknown[0], "is not a recognised SLO field")
        return cls(
            utilization_band=data.get("utilization_band", 85.0),
            max_violation_pct=data.get("max_violation_pct", 15.0),
        )


# ----------------------------------------------------------------------
# The scenario itself
# ----------------------------------------------------------------------

_SCENARIO_FIELDS = frozenset({
    "name", "description", "workload", "duration", "seed", "controller",
    "reference", "control_period", "capacity", "slo", "budget_usd_per_hour",
    "chaos", "exact", "key_skew",
})

_CAPACITY_FIELDS = ("shards", "vms", "write_units")


@dataclass(frozen=True)
class Scenario:
    """One declarative evaluation case (see module docstring)."""

    name: str
    workload: PatternSpec
    duration: int
    description: str = ""
    seed: int = 7
    controller: str = "adaptive"
    reference: float = 60.0
    control_period: int = 60
    shards: int = 2
    vms: int = 2
    write_units: int = 300
    slo: SLOTargets = SLOTargets()
    budget_usd_per_hour: float | None = None
    chaos: ChaosSchedule | None = None
    #: Click-stream page-popularity skew (zipf exponent); 1.0 is the
    #: generator default, higher is more adversarial hot-keying.
    key_skew: float = 1.0
    exact: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise _reject("scenario", "name", f"must be a non-empty string, got {self.name!r}")
        if any(c.isspace() or c == "/" for c in self.name):
            raise _reject("scenario", "name",
                          f"must not contain whitespace or '/', got {self.name!r}")
        if not isinstance(self.description, str):
            raise _reject("scenario", "description",
                          f"must be a string, got {self.description!r}")
        if not isinstance(self.workload, PatternSpec):
            raise _reject("scenario", "workload",
                          f"must be a PatternSpec, got {self.workload!r}")
        _as_int("scenario", "duration", self.duration, minimum=1)
        _as_int("scenario", "seed", self.seed, minimum=0)
        if self.controller not in CONTROLLER_FACTORIES:
            raise _reject("scenario", "controller",
                          f"must be one of {sorted(CONTROLLER_FACTORIES)}, "
                          f"got {self.controller!r}")
        object.__setattr__(self, "reference", _as_float(
            "scenario", "reference", self.reference,
            minimum=0.0, maximum=100.0, exclusive_min=True))
        _as_int("scenario", "control_period", self.control_period, minimum=1)
        if self.control_period > self.duration:
            raise _reject("scenario", "control_period",
                          f"must not exceed duration={self.duration}, "
                          f"got {self.control_period}")
        for name in _CAPACITY_FIELDS:
            _as_int("scenario", f"capacity.{name}", getattr(self, name), minimum=1)
        if not isinstance(self.slo, SLOTargets):
            raise _reject("scenario", "slo", f"must be SLOTargets, got {self.slo!r}")
        if self.budget_usd_per_hour is not None:
            object.__setattr__(self, "budget_usd_per_hour", _as_float(
                "scenario", "budget_usd_per_hour", self.budget_usd_per_hour,
                minimum=0.0, exclusive_min=True))
        if self.chaos is not None:
            if not isinstance(self.chaos, ChaosSchedule):
                raise _reject("scenario", "chaos",
                              f"must be a ChaosSchedule, got {self.chaos!r}")
            for spec in self.chaos.faults:
                if spec.start >= self.duration:
                    raise _reject("scenario", "chaos",
                                  f"fault {spec.kind.value}@{spec.start} starts at or "
                                  f"after duration={self.duration} and would never fire")
        object.__setattr__(self, "key_skew", _as_float(
            "scenario", "key_skew", self.key_skew, minimum=0.0))
        if not isinstance(self.exact, bool):
            raise _reject("scenario", "exact", f"must be a boolean, got {self.exact!r}")

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "workload": self.workload.to_dict(),
            "duration": self.duration,
            "seed": self.seed,
            "controller": self.controller,
            "reference": self.reference,
            "control_period": self.control_period,
            "capacity": {name: getattr(self, name) for name in _CAPACITY_FIELDS},
            "slo": self.slo.to_dict(),
            "budget_usd_per_hour": self.budget_usd_per_hour,
            "chaos": self.chaos.to_dict() if self.chaos is not None else None,
            "key_skew": self.key_skew,
            "exact": self.exact,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        if not isinstance(data, Mapping):
            raise _reject("scenario", "spec", f"must be a mapping, got {data!r}")
        unknown = sorted(set(data) - _SCENARIO_FIELDS)
        if unknown:
            raise _reject("scenario", unknown[0], "is not a recognised scenario field")
        if "workload" not in data:
            raise _reject("scenario", "workload", "is required")
        if "duration" not in data:
            raise _reject("scenario", "duration", "is required")
        capacity = data.get("capacity", {})
        if not isinstance(capacity, Mapping):
            raise _reject("scenario", "capacity", f"must be a mapping, got {capacity!r}")
        unknown = sorted(set(capacity) - set(_CAPACITY_FIELDS))
        if unknown:
            raise _reject("scenario", f"capacity.{unknown[0]}",
                          "is not a recognised capacity field")
        chaos = data.get("chaos")
        if chaos is not None and not isinstance(chaos, ChaosSchedule):
            try:
                chaos = ChaosSchedule.from_dict(chaos)
            except (TypeError, KeyError, ValueError) as exc:
                raise _reject("scenario", "chaos", f"is not a valid chaos schedule: {exc}")
        slo = data.get("slo")
        if slo is None:
            slo = SLOTargets()
        elif not isinstance(slo, SLOTargets):
            if not isinstance(slo, Mapping):
                raise _reject("scenario", "slo", f"must be a mapping, got {slo!r}")
            slo = SLOTargets.from_dict(slo)
        return cls(
            name=data.get("name", ""),
            description=data.get("description", ""),
            workload=PatternSpec.from_dict(data["workload"]),
            duration=data["duration"],
            seed=data.get("seed", 7),
            controller=data.get("controller", "adaptive"),
            reference=data.get("reference", 60.0),
            control_period=data.get("control_period", 60),
            shards=capacity.get("shards", 2),
            vms=capacity.get("vms", 2),
            write_units=capacity.get("write_units", 300),
            slo=slo,
            budget_usd_per_hour=data.get("budget_usd_per_hour"),
            chaos=chaos,
            key_skew=data.get("key_skew", 1.0),
            exact=data.get("exact", True),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"scenario spec: invalid JSON: {exc}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def build_manager(self, *, exact: bool | None = None):
        """Compile into a ready-to-run flow manager.

        ``exact`` overrides the spec's workload path (the CLI's
        ``--fast``); the run result and its scorecard then carry the
        effective exactness, so a fast run can never gate against an
        exact baseline.
        """
        # Imported here: repro.core.builder transitively imports the
        # analysis layer — a cycle at module-import time only.
        from repro.cloud.dynamodb import DynamoDBConfig
        from repro.cloud.storm import StormConfig
        from repro.core.builder import FlowBuilder
        from repro.workload.clickstream import ClickStreamConfig

        pattern = self.workload.build(self.seed, self.duration)
        # Same service calibration as the smoke scorecard scenarios
        # (scorecard.py): load-bound analytics VMs and a short burst
        # bucket so injected faults surface observable symptoms.
        builder = (
            FlowBuilder(f"scenario-{self.name}", seed=self.seed)
            .ingestion(shards=self.shards)
            .analytics(vms=self.vms, storm=StormConfig(records_per_vm_per_second=1000))
            .storage(write_units=self.write_units, config=DynamoDBConfig(burst_seconds=10))
            .workload(pattern, clickstream=ClickStreamConfig(zipf_exponent=self.key_skew))
            .control_all(style=self.controller, reference=self.reference,
                         period=self.control_period)
            .exact(self.exact if exact is None else exact)
            .observe()
        )
        if self.chaos is not None:
            builder.chaos(self.chaos)
        return builder.build()

"""Region-level shared resources: one account, many flows.

A single flow's services enforce only their *own* limits (a stream's
``max_shards``, a fleet's ``max_instances``). Real accounts add a layer
above that: every flow in a region draws shards, instances and
provisioned throughput from one shared pool, and AWS rejects the
launch / reshard / ``UpdateTable`` that would exceed the account limit
no matter how reasonable it looks to the flow that asked.

:class:`RegionContext` models exactly that layer. Services attach to a
region with a flow id; their capacity-*increase* paths then ask the
region for headroom first and raise
:class:`~repro.core.errors.RegionCapacityError` when the account is
full. The error is truthful on both axes — it *is* a capacity error,
and it *is* transient (another flow scaling down frees the headroom) —
so each flow's existing retry + circuit-breaker actuator stack absorbs
region denials with no special cases.

Accounting rules (the region-resource contract, see DESIGN.md):

* usage is **committed** capacity: what the account has promised, not
  what is serving yet. A booting instance, an in-flight reshard target
  and a pending ``UpdateTable`` target all count in full from the
  moment they are accepted — otherwise two flows could both be granted
  the last headroom during the actuation latency window;
* accounting is **pure**: every query sums the registered services'
  committed capacity at call time. The region keeps no usage counters
  that could drift from service state, so a chaos-killed instance or
  an expired reshard frees headroom the instant the service reflects
  it;
* decreases always succeed — the region only gates increases;
* admission is all-or-nothing: a denied request changes nothing (no
  partial grants), and the denial is counted per flow and resource.

The region also models **noisy-neighbor contention** on the shared EC2
pool: when the flows' combined provisioned instances push pool
utilization past ``contention_threshold``, every cluster's per-VM
throughput degrades linearly (up to ``contention_slope`` at a full
pool). The factor is a pure function of committed instance counts,
which change only at control/chaos boundaries — never inside a span —
so span-batched execution stays bit-identical to the per-tick loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError, RegionCapacityError


@dataclass(frozen=True)
class RegionLimits:
    """Account-level limits shared by every flow in the region.

    Attributes
    ----------
    max_instances:
        Size of the shared EC2 capacity pool (account instance limit).
    max_total_shards:
        Account-wide Kinesis shard limit, summed over all streams.
    max_total_write_units / max_total_read_units:
        Account-wide DynamoDB provisioned throughput, summed over all
        tables, per dimension.
    contention_threshold:
        Pool-utilization fraction above which noisy-neighbor contention
        sets in (1.0 disables contention entirely).
    contention_slope:
        Fraction of per-VM throughput lost at a 100% full pool; the
        loss ramps linearly from the threshold to the full pool.
    """

    max_instances: int = 256
    max_total_shards: int = 1024
    max_total_write_units: int = 80_000
    max_total_read_units: int = 80_000
    contention_threshold: float = 0.8
    contention_slope: float = 0.3

    def __post_init__(self) -> None:
        if self.max_instances < 1 or self.max_total_shards < 1:
            raise ConfigurationError("region instance/shard limits must be >= 1")
        if self.max_total_write_units < 1 or self.max_total_read_units < 1:
            raise ConfigurationError("region throughput limits must be >= 1")
        if not 0.0 < self.contention_threshold <= 1.0:
            raise ConfigurationError(
                f"contention_threshold must be in (0, 1], got {self.contention_threshold}"
            )
        if not 0.0 <= self.contention_slope < 1.0:
            raise ConfigurationError(
                f"contention_slope must be in [0, 1), got {self.contention_slope}"
            )


class RegionContext:
    """Shared capacity pool and account limits for a set of flows.

    Services self-register through their ``attach_region`` methods;
    flows never talk to the region directly. All accounting queries are
    pure reads over the registered services (see the module docstring
    for the contract).
    """

    def __init__(self, limits: RegionLimits | None = None, name: str = "sim-region-1") -> None:
        self.name = name
        self.limits = limits or RegionLimits()
        self._fleets: dict[str, object] = {}
        self._streams: dict[str, object] = {}
        self._tables: dict[str, object] = {}
        #: Denials per (flow_id, resource): resource is one of
        #: "instances", "shards", "write_units", "read_units".
        self.denial_counts: dict[tuple[str, str], int] = {}
        #: Bumped by the services on every committed-capacity change;
        #: keys the memoized accounting sums below.
        self.capacity_version = 0
        self._flow_ids_cache: list[str] | None = None
        #: resource -> (capacity_version, value). Committed capacity is
        #: time-independent between mutations — ``committed_*()`` take
        #: no clock, and terminations stamp a past ``terminated_at`` —
        #: and every mutation path bumps the version, so a version hit
        #: is exact at any ``now``.
        self._sum_cache: dict[str, tuple[int, int]] = {}

    def note_capacity_change(self) -> None:
        """Invalidate the memoized accounting sums.

        Services call this from every path that changes *committed*
        capacity: fleet scale/failure, reshard requests, and table
        capacity updates. Ripening a pending target does not change the
        committed value (the target already counted in full), so the
        apply paths need no bump.
        """
        self.capacity_version += 1

    # ------------------------------------------------------------------
    # Registration (called by the services' attach_region methods)
    # ------------------------------------------------------------------
    def register_fleet(self, flow_id: str, fleet) -> None:
        if flow_id in self._fleets:
            raise ConfigurationError(f"flow {flow_id!r} already registered an EC2 fleet")
        self._fleets[flow_id] = fleet
        self._flow_ids_cache = None
        self.note_capacity_change()

    def register_stream(self, flow_id: str, stream) -> None:
        if flow_id in self._streams:
            raise ConfigurationError(f"flow {flow_id!r} already registered a stream")
        self._streams[flow_id] = stream
        self._flow_ids_cache = None
        self.note_capacity_change()

    def register_table(self, flow_id: str, table) -> None:
        if flow_id in self._tables:
            raise ConfigurationError(f"flow {flow_id!r} already registered a table")
        self._tables[flow_id] = table
        self._flow_ids_cache = None
        self.note_capacity_change()

    @property
    def flow_ids(self) -> list[str]:
        """Every flow id that registered at least one service."""
        if self._flow_ids_cache is None:
            ids = set(self._fleets) | set(self._streams) | set(self._tables)
            self._flow_ids_cache = sorted(ids)
        return self._flow_ids_cache

    # ------------------------------------------------------------------
    # Pure accounting queries
    # ------------------------------------------------------------------
    def instances_in_use(self, now: int) -> int:
        """Committed instances across all fleets (booting ones count)."""
        cached = self._sum_cache.get("instances")
        if cached is not None and cached[0] == self.capacity_version:
            return cached[1]
        value = sum(fleet.provisioned_count(now) for fleet in self._fleets.values())
        self._sum_cache["instances"] = (self.capacity_version, value)
        return value

    def shards_in_use(self, now: int) -> int:
        """Committed shards across all streams (in-flight targets count)."""
        cached = self._sum_cache.get("shards")
        if cached is not None and cached[0] == self.capacity_version:
            return cached[1]
        value = sum(stream.committed_shards() for stream in self._streams.values())
        self._sum_cache["shards"] = (self.capacity_version, value)
        return value

    def write_units_in_use(self, now: int) -> int:
        """Committed write units across all tables (pending targets count)."""
        cached = self._sum_cache.get("write_units")
        if cached is not None and cached[0] == self.capacity_version:
            return cached[1]
        value = sum(table.committed_write_units() for table in self._tables.values())
        self._sum_cache["write_units"] = (self.capacity_version, value)
        return value

    def read_units_in_use(self, now: int) -> int:
        """Committed read units across all tables (pending targets count)."""
        cached = self._sum_cache.get("read_units")
        if cached is not None and cached[0] == self.capacity_version:
            return cached[1]
        value = sum(table.committed_read_units() for table in self._tables.values())
        self._sum_cache["read_units"] = (self.capacity_version, value)
        return value

    def headroom(self, now: int) -> dict[str, int]:
        """Remaining account headroom per resource at ``now``."""
        return {
            "instances": self.limits.max_instances - self.instances_in_use(now),
            "shards": self.limits.max_total_shards - self.shards_in_use(now),
            "write_units": self.limits.max_total_write_units - self.write_units_in_use(now),
            "read_units": self.limits.max_total_read_units - self.read_units_in_use(now),
        }

    def pool_utilization(self, now: int) -> float:
        """Committed fraction of the shared EC2 pool in [0, ∞)."""
        return self.instances_in_use(now) / self.limits.max_instances

    def contention_factor(self, now: int) -> float:
        """Per-VM throughput multiplier under the current pool load.

        1.0 at or below ``contention_threshold`` utilization, ramping
        linearly down to ``1 - contention_slope`` at a 100% committed
        pool. Pure: safe to call from the data path, and constant
        between control/chaos boundaries (committed instance counts
        only change there), so spans see a single value.
        """
        threshold = self.limits.contention_threshold
        slope = self.limits.contention_slope
        if slope == 0.0 or threshold >= 1.0:
            return 1.0
        utilization = self.pool_utilization(now)
        if utilization <= threshold:
            return 1.0
        over = min(1.0, (utilization - threshold) / (1.0 - threshold))
        return 1.0 - slope * over

    # ------------------------------------------------------------------
    # Admission (called by the services' capacity-increase paths)
    # ------------------------------------------------------------------
    def admit_instances(self, flow_id: str, fleet, desired: int, now: int) -> None:
        """Gate a fleet scale-up to ``desired`` committed instances."""
        others = self.instances_in_use(now) - fleet.provisioned_count(now)
        if others + desired > self.limits.max_instances:
            self._deny(
                flow_id, "instances", desired - fleet.provisioned_count(now),
                self.limits.max_instances - others,
            )

    def admit_shards(self, flow_id: str, stream, target: int, now: int) -> None:
        """Gate a reshard up to ``target`` committed shards."""
        others = self.shards_in_use(now) - stream.committed_shards()
        if others + target > self.limits.max_total_shards:
            self._deny(
                flow_id, "shards", target - stream.committed_shards(),
                self.limits.max_total_shards - others,
            )

    def admit_write_units(self, flow_id: str, table, target: int, now: int) -> None:
        """Gate a provisioned-write increase to ``target`` units."""
        others = self.write_units_in_use(now) - table.committed_write_units()
        if others + target > self.limits.max_total_write_units:
            self._deny(
                flow_id, "write_units", target - table.committed_write_units(),
                self.limits.max_total_write_units - others,
            )

    def admit_read_units(self, flow_id: str, table, target: int, now: int) -> None:
        """Gate a provisioned-read increase to ``target`` units."""
        others = self.read_units_in_use(now) - table.committed_read_units()
        if others + target > self.limits.max_total_read_units:
            self._deny(
                flow_id, "read_units", target - table.committed_read_units(),
                self.limits.max_total_read_units - others,
            )

    def _deny(self, flow_id: str, resource: str, asked: int, available: int) -> None:
        key = (flow_id, resource)
        self.denial_counts[key] = self.denial_counts.get(key, 0) + 1
        raise RegionCapacityError(
            f"region {self.name!r}: flow {flow_id!r} asked for {asked} more "
            f"{resource} but only {max(0, available)} remain in the account"
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def total_denials(self, flow_id: str | None = None) -> int:
        """Denials across resources, optionally for one flow."""
        return sum(
            count
            for (fid, _resource), count in self.denial_counts.items()
            if flow_id is None or fid == flow_id
        )

    def denials_by_flow(self) -> dict[str, dict[str, int]]:
        """``{flow_id: {resource: denials}}``, sorted for stable output."""
        out: dict[str, dict[str, int]] = {}
        for (flow_id, resource), count in sorted(self.denial_counts.items()):
            out.setdefault(flow_id, {})[resource] = count
        return out

"""Simulated Amazon DynamoDB table (the storage layer).

Models the behaviours an elasticity controller has to cope with:
provisioned read/write capacity units, throttling above provision, a
burst-credit bucket (unused capacity from the trailing five minutes can
absorb short spikes, as in the real service), a delay before capacity
updates take effect, and an optional cooldown between capacity
*decreases* (the real service historically limited decreases per day).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import CapacityError, ConfigurationError, TransientAPIError
from repro.simulation.clock import SimClock

#: CloudWatch namespace used by the table's metrics.
NAMESPACE = "AWS/DynamoDB"


@dataclass(frozen=True)
class DynamoDBConfig:
    """Table limits and capacity-update behaviour."""

    min_write_units: int = 1
    max_write_units: int = 40000
    min_read_units: int = 1
    max_read_units: int = 40000
    burst_seconds: int = 300
    update_delay_seconds: int = 30
    decrease_cooldown_seconds: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.min_write_units <= self.max_write_units:
            raise ConfigurationError("need 1 <= min_write_units <= max_write_units")
        if not 1 <= self.min_read_units <= self.max_read_units:
            raise ConfigurationError("need 1 <= min_read_units <= max_read_units")
        if self.burst_seconds < 0:
            raise ConfigurationError("burst_seconds must be non-negative")
        if self.update_delay_seconds < 0:
            raise ConfigurationError("update_delay_seconds must be non-negative")
        if self.decrease_cooldown_seconds < 0:
            raise ConfigurationError("decrease_cooldown_seconds must be non-negative")


@dataclass(frozen=True)
class WriteResult:
    """Outcome of a batched write: accepted vs throttled units."""

    accepted_units: int
    throttled_units: int


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a batched read: accepted vs throttled units."""

    accepted_units: int
    throttled_units: int


class SimDynamoDBTable:
    """A provisioned-throughput table with burst credits."""

    def __init__(
        self,
        name: str = "page-aggregates",
        write_units: int = 10,
        read_units: int = 10,
        config: DynamoDBConfig | None = None,
    ) -> None:
        self.name = name
        # Metric dimensions are immutable for the table's lifetime;
        # built once instead of per emit call.
        self._dims = {"TableName": name}
        self._dims_key = (("TableName", name),)
        self.config = config or DynamoDBConfig()
        if not self.config.min_write_units <= write_units <= self.config.max_write_units:
            raise CapacityError(
                f"write_units={write_units} outside "
                f"[{self.config.min_write_units}, {self.config.max_write_units}]"
            )
        if not self.config.min_read_units <= read_units <= self.config.max_read_units:
            raise CapacityError(
                f"read_units={read_units} outside "
                f"[{self.config.min_read_units}, {self.config.max_read_units}]"
            )
        self._write_units = int(write_units)
        self._read_units = int(read_units)
        self._pending_write_target: int | None = None
        self._pending_ready_at = 0
        # Causal traces of the decisions that commanded the in-flight
        # updates; pinned onto the eventual capacity.applied events.
        self._pending_write_trace: str | None = None
        self._pending_read_trace: str | None = None
        self._last_decrease_at: int | None = None
        self._pending_read_target: int | None = None
        self._pending_read_ready_at = 0
        self._last_read_decrease_at: int | None = None
        # Burst buckets hold unused capacity-units (capped), one per
        # throughput dimension, as in the real service.
        self._burst_bucket = 0.0
        self._read_burst_bucket = 0.0
        # Per-tick counters.
        self._tick_consumed = 0
        self._tick_throttled = 0
        self._tick_read_consumed = 0
        self._tick_read_throttled = 0
        # Lifetime conservation counter (never reset; audited by the
        # invariant checker against the analytics layer's write stream).
        self.total_write_accepted = 0
        # Fault-injection state (chaos harness). A throttle storm scales
        # down the *usable* capacity while provision — and billing —
        # stay unchanged; an update-reject window makes capacity-update
        # API calls raise ``TransientAPIError``.
        self._degradation_factor = 1.0
        self._updates_failing = False
        # Flight-recorder hooks (off unless attach_bus() is called).
        self._bus = None
        self._bus_layer = "storage"
        self._throttle_since: dict[str, int | None] = {"write": None, "read": None}
        self._throttle_units: dict[str, int] = {"write": 0, "read": 0}
        # Region-level accounting (multi-flow runs; see cloud/region.py).
        self._region = None
        self._region_flow_id: str | None = None

    def attach_bus(self, bus, layer: str = "storage") -> None:
        """Publish capacity-update and throttle-episode events to a
        flight recorder; without a bus the table records nothing."""
        self._bus = bus
        self._bus_layer = layer

    def attach_region(self, region, flow_id: str) -> None:
        """Draw this table's provisioned throughput from a shared
        account limit.

        Capacity *increases* then require account headroom:
        :meth:`update_write_capacity` / :meth:`update_read_capacity`
        raise :class:`~repro.core.errors.RegionCapacityError` when the
        target would exceed the region's total for that dimension.
        Decreases are never gated.
        """
        region.register_table(flow_id, self)
        self._region = region
        self._region_flow_id = flow_id

    def committed_write_units(self) -> int:
        """Write units the account has committed to this table.

        The pending update target when one exists (a ripe-but-unapplied
        target becomes the provision on the next capacity query), else
        the current provision. Pure — never applies pending state or
        publishes events — so the region can sum it across tables from
        any flow's admission check.
        """
        if self._pending_write_target is not None:
            return self._pending_write_target
        return self._write_units

    def committed_read_units(self) -> int:
        """Read units the account has committed to this table (see
        :meth:`committed_write_units`)."""
        if self._pending_read_target is not None:
            return self._pending_read_target
        return self._read_units

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def set_throttle_storm(self, capacity_lost: float) -> None:
        """Degrade usable throughput by ``capacity_lost`` (in (0, 1)).

        Models a partition-level throttling storm: requests beyond the
        degraded rate are rejected even though the table's provisioned
        (and billed) capacity is unchanged.
        """
        if not 0.0 < capacity_lost < 1.0:
            raise ConfigurationError(
                f"throttle storm capacity_lost must be in (0, 1), got {capacity_lost}"
            )
        self._degradation_factor = 1.0 - capacity_lost

    def clear_throttle_storm(self) -> None:
        self._degradation_factor = 1.0

    def fail_updates(self) -> None:
        """Make capacity-update calls raise :class:`TransientAPIError`."""
        self._updates_failing = True

    def restore_updates(self) -> None:
        self._updates_failing = False

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def write_capacity(self, now: int) -> int:
        """Provisioned write units effective at ``now``."""
        if self._pending_write_target is not None and now >= self._pending_ready_at:
            self._write_units = self._pending_write_target
            self._pending_write_target = None
            if self._bus is not None:
                self._bus.publish(
                    now, self._bus_layer, "capacity.applied",
                    {"dimension": "write", "units": self._write_units},
                    trace=self._pending_write_trace,
                )
            self._pending_write_trace = None
        return self._write_units

    def read_capacity(self, now: int) -> int:
        """Provisioned read units effective at ``now``."""
        if self._pending_read_target is not None and now >= self._pending_read_ready_at:
            self._read_units = self._pending_read_target
            self._pending_read_target = None
            if self._bus is not None:
                self._bus.publish(
                    now, self._bus_layer, "capacity.applied",
                    {"dimension": "read", "units": self._read_units},
                    trace=self._pending_read_trace,
                )
            self._pending_read_trace = None
        return self._read_units

    def effective_write_capacity(self, now: int) -> int:
        """Usable write units/second at ``now``: provision scaled by any
        active throttling storm. Equals :meth:`write_capacity` outside
        fault windows."""
        capacity = self.write_capacity(now)
        if self._degradation_factor != 1.0:
            capacity = int(capacity * self._degradation_factor)
        return capacity

    def effective_read_capacity(self, now: int) -> int:
        """Usable read units/second at ``now`` (see
        :meth:`effective_write_capacity`)."""
        capacity = self.read_capacity(now)
        if self._degradation_factor != 1.0:
            capacity = int(capacity * self._degradation_factor)
        return capacity

    def next_capacity_event(self, now: int) -> int | None:
        """Earliest future time either throughput dimension changes.

        The span scheduler's horizon: the sooner of the pending write
        and read capacity updates completing after ``now``. ``None``
        when both dimensions are stable (updates already ripe at ``now``
        are applied by the next capacity call, i.e. at span start).
        """
        best: int | None = None
        if self._pending_write_target is not None and self._pending_ready_at > now:
            best = self._pending_ready_at
        if self._pending_read_target is not None and self._pending_read_ready_at > now:
            if best is None or self._pending_read_ready_at < best:
                best = self._pending_read_ready_at
        return best

    def read_updating(self, now: int) -> bool:
        return self._pending_read_target is not None and now < self._pending_read_ready_at

    def update_read_capacity(self, target: int, now: int) -> int:
        """Request a new provisioned read capacity.

        Same semantics as :meth:`update_write_capacity`: clamped to the
        table limits, rejected while an update is in flight, and
        decrease-rate-limited by the cooldown (the two throughput
        dimensions update independently, as in the real service).
        """
        if self._updates_failing:
            raise TransientAPIError(
                f"table {self.name!r}: UpdateTable(read) failed transiently (injected fault)"
            )
        current = self.read_capacity(now)
        target = max(self.config.min_read_units, min(self.config.max_read_units, int(target)))
        if self.read_updating(now):
            return self._pending_read_target  # type: ignore[return-value]
        if target == current:
            return current
        if target < current:
            cooldown = self.config.decrease_cooldown_seconds
            if (
                cooldown
                and self._last_read_decrease_at is not None
                and now - self._last_read_decrease_at < cooldown
            ):
                return current
            self._last_read_decrease_at = now
        elif self._region is not None:
            # All-or-nothing admission: raises RegionCapacityError (and
            # schedules nothing) without account headroom.
            self._region.admit_read_units(self._region_flow_id, self, target, now)
        self._pending_read_target = target
        self._pending_read_ready_at = now + self.config.update_delay_seconds
        if self._region is not None:
            self._region.note_capacity_change()
        if self._bus is not None:
            self._pending_read_trace = self._bus.active_trace
            self._bus.publish(
                now, self._bus_layer, "capacity.update",
                {"dimension": "read", "from": current, "to": target,
                 "ready_at": self._pending_read_ready_at},
            )
        return target

    def updating(self, now: int) -> bool:
        return self._pending_write_target is not None and now < self._pending_ready_at

    def update_write_capacity(self, target: int, now: int) -> int:
        """Request a new provisioned write capacity.

        Returns the clamped target actually scheduled. Requests while an
        update is in flight are ignored (the in-flight target is
        returned); decreases during the decrease cooldown are ignored
        (current capacity is returned).
        """
        if self._updates_failing:
            raise TransientAPIError(
                f"table {self.name!r}: UpdateTable(write) failed transiently (injected fault)"
            )
        current = self.write_capacity(now)
        target = max(self.config.min_write_units, min(self.config.max_write_units, int(target)))
        if self.updating(now):
            return self._pending_write_target  # type: ignore[return-value]
        if target == current:
            return current
        if target < current:
            cooldown = self.config.decrease_cooldown_seconds
            if (
                cooldown
                and self._last_decrease_at is not None
                and now - self._last_decrease_at < cooldown
            ):
                return current
            self._last_decrease_at = now
        elif self._region is not None:
            # All-or-nothing admission: raises RegionCapacityError (and
            # schedules nothing) without account headroom.
            self._region.admit_write_units(self._region_flow_id, self, target, now)
        self._pending_write_target = target
        self._pending_ready_at = now + self.config.update_delay_seconds
        if self._region is not None:
            self._region.note_capacity_change()
        if self._bus is not None:
            self._pending_write_trace = self._bus.active_trace
            self._bus.publish(
                now, self._bus_layer, "capacity.update",
                {"dimension": "write", "from": current, "to": target,
                 "ready_at": self._pending_ready_at},
            )
        return target

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def write(self, units: int, clock: SimClock) -> WriteResult:
        """Consume ``units`` of write capacity this tick.

        Up to the provisioned rate is always accepted; excess draws from
        the burst bucket; anything beyond that is throttled. Unused
        provisioned capacity refills the bucket, capped at
        ``burst_seconds`` worth of the current provision.
        """
        if units < 0:
            raise ConfigurationError("units must be non-negative")
        now = clock.now
        # Acceptance and bucket refill run off the *effective* (fault-
        # degraded) rate; the bucket cap stays at provisioned level,
        # since banked credits are a property of what was paid for.
        provisioned = self.effective_write_capacity(now) * clock.tick_seconds
        accepted = min(units, provisioned)
        excess = units - accepted
        if excess > 0 and self._burst_bucket > 0:
            from_burst = int(min(excess, self._burst_bucket))
            accepted += from_burst
            excess -= from_burst
            self._burst_bucket -= from_burst
        unused = max(0, provisioned - units)
        bucket_cap = self.config.burst_seconds * self.write_capacity(now)
        self._burst_bucket = min(bucket_cap, self._burst_bucket + unused)
        self._tick_consumed += accepted
        self.total_write_accepted += accepted
        self._tick_throttled += excess
        return WriteResult(accepted_units=accepted, throttled_units=excess)

    def read(self, units: int, clock: SimClock) -> ReadResult:
        """Consume ``units`` of read capacity this tick.

        Mirrors :meth:`write`: up to the provisioned read rate is always
        accepted, excess draws from the read burst bucket, the remainder
        throttles, and unused provision refills the bucket.
        """
        if units < 0:
            raise ConfigurationError("units must be non-negative")
        now = clock.now
        provisioned = self.effective_read_capacity(now) * clock.tick_seconds
        accepted = min(units, provisioned)
        excess = units - accepted
        if excess > 0 and self._read_burst_bucket > 0:
            from_burst = int(min(excess, self._read_burst_bucket))
            accepted += from_burst
            excess -= from_burst
            self._read_burst_bucket -= from_burst
        unused = max(0, provisioned - units)
        bucket_cap = self.config.burst_seconds * self.read_capacity(now)
        self._read_burst_bucket = min(bucket_cap, self._read_burst_bucket + unused)
        self._tick_read_consumed += accepted
        self._tick_read_throttled += excess
        return ReadResult(accepted_units=accepted, throttled_units=excess)

    @property
    def burst_balance(self) -> float:
        """Write capacity-units currently banked in the burst bucket."""
        return self._burst_bucket

    @property
    def read_burst_balance(self) -> float:
        """Read capacity-units currently banked in the read burst bucket."""
        return self._read_burst_bucket

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def emit_metrics(self, cloudwatch, clock: SimClock) -> None:
        now = clock.now
        dims = self._dims_key
        # Utilization runs off the effective rate so the sensed signal
        # saturates when a throttling storm shrinks usable capacity —
        # exactly what pushes an adaptive controller to scale up.
        provisioned = self.effective_write_capacity(now) * clock.tick_seconds
        utilization = 100.0 * self._tick_consumed / provisioned if provisioned else 0.0
        cloudwatch.put_metric_data(
            NAMESPACE, "ConsumedWriteCapacityUnits", self._tick_consumed, now, dims
        )
        cloudwatch.put_metric_data(NAMESPACE, "WriteThrottleEvents", self._tick_throttled, now, dims)
        cloudwatch.put_metric_data(
            NAMESPACE, "ProvisionedWriteCapacityUnits", self.write_capacity(now), now, dims
        )
        cloudwatch.put_metric_data(NAMESPACE, "WriteUtilization", utilization, now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "BurstBalance", self._burst_bucket, now, dims)
        read_provisioned = self.effective_read_capacity(now) * clock.tick_seconds
        read_utilization = (
            100.0 * self._tick_read_consumed / read_provisioned if read_provisioned else 0.0
        )
        cloudwatch.put_metric_data(
            NAMESPACE, "ConsumedReadCapacityUnits", self._tick_read_consumed, now, dims
        )
        cloudwatch.put_metric_data(
            NAMESPACE, "ReadThrottleEvents", self._tick_read_throttled, now, dims
        )
        cloudwatch.put_metric_data(
            NAMESPACE, "ProvisionedReadCapacityUnits", self.read_capacity(now), now, dims
        )
        cloudwatch.put_metric_data(NAMESPACE, "ReadUtilization", read_utilization, now, dims)
        if self._bus is not None:
            self._track_throttle_episode(now, "write", self._tick_throttled)
            self._track_throttle_episode(now, "read", self._tick_read_throttled)
        self._tick_consumed = 0
        self._tick_throttled = 0
        self._tick_read_consumed = 0
        self._tick_read_throttled = 0

    def emit_metrics_span(
        self,
        cloudwatch,
        times: list[int],
        consumed: list[int],
        throttled: list[int],
        utilization: list[float],
        burst: list[float],
        read_consumed: list[int],
        read_throttled: list[int],
        read_utilization: list[float],
        write_capacity: int,
        read_capacity: int,
    ) -> None:
        """Columnar :meth:`emit_metrics` for a whole span of ticks.

        Provisioned capacities are constant inside a span (a pending
        update completing is a span boundary), so they arrive as scalars
        and broadcast per tick. Throttle-episode tracking replays tick
        by tick — write then read per tick, matching the per-tick loop —
        when a bus is attached.
        """
        dims = self._dims_key
        batch = cloudwatch.put_metric_data_batch
        count = len(times)
        batch(NAMESPACE, "ConsumedWriteCapacityUnits", times, consumed, dims)
        batch(NAMESPACE, "WriteThrottleEvents", times, throttled, dims)
        batch(NAMESPACE, "ProvisionedWriteCapacityUnits", times, [write_capacity] * count, dims)
        batch(NAMESPACE, "WriteUtilization", times, utilization, dims)
        batch(NAMESPACE, "BurstBalance", times, burst, dims)
        batch(NAMESPACE, "ConsumedReadCapacityUnits", times, read_consumed, dims)
        batch(NAMESPACE, "ReadThrottleEvents", times, read_throttled, dims)
        batch(NAMESPACE, "ProvisionedReadCapacityUnits", times, [read_capacity] * count, dims)
        batch(NAMESPACE, "ReadUtilization", times, read_utilization, dims)
        if self._bus is not None:
            # A fully quiet span with no episode open in either
            # dimension replays to nothing — skip the per-tick loop.
            if (
                self._throttle_since["write"] is None
                and self._throttle_since["read"] is None
                and not any(throttled)
                and not any(read_throttled)
            ):
                return
            track = self._track_throttle_episode
            for t, tick_throttled, tick_read_throttled in zip(times, throttled, read_throttled):
                track(int(t), "write", int(tick_throttled))
                track(int(t), "read", int(tick_read_throttled))

    def _track_throttle_episode(self, now: int, dimension: str, throttled: int) -> None:
        """Coalesce per-tick throttling into start/end events per
        throughput dimension (same pattern as the Kinesis stream)."""
        since = self._throttle_since[dimension]
        if throttled:
            if since is None:
                self._throttle_since[dimension] = now
                self._throttle_units[dimension] = 0
                self._bus.publish(
                    now, self._bus_layer, "throttle",
                    {"dimension": dimension, "units": throttled},
                )
            self._throttle_units[dimension] += throttled
        elif since is not None:
            self._bus.publish(
                now, self._bus_layer, "throttle.end",
                {"dimension": dimension, "units": self._throttle_units[dimension],
                 "since": since},
            )
            self._throttle_since[dimension] = None
            self._throttle_units[dimension] = 0

"""Simulated Apache Storm cluster on EC2 (the analytics layer).

The CPU model is deliberately affine in the per-VM record rate, because
the paper's own dependency model (Eq. 2: ``CPU ~ 0.0002 * WriteCapacity
+ 4.8``) asserts exactly that linearity — the intercept is the idle CPU
of the topology and the slope is per-record processing cost. Defaults
are calibrated so a one-VM cluster reproduces Eq. 2's coefficients when
the rate is measured in records/minute.

The cluster pulls records from an upstream Kinesis stream, queues what
it cannot process ("pending tuples"), and emits windowed aggregates
(one storage write per distinct key per window) downstream — which is
why storage-layer write volume tracks the number of *distinct* pages
rather than raw click volume, matching the paper's observation that
Kinesis and DynamoDB write capacities were uncorrelated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cloud.ec2 import SimEC2Fleet
from repro.cloud.kinesis import SimKinesisStream  # noqa: F401 - part of the data path API
from repro.core.errors import ConfigurationError
from repro.simulation.clock import SimClock

#: CloudWatch namespace used by the cluster's metrics.
NAMESPACE = "Custom/Storm"


@dataclass(frozen=True)
class BoltSpec:
    """One bolt of a topology: its parallelism and per-executor rate."""

    name: str
    records_per_executor_per_second: int
    executors: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("bolt name must be non-empty")
        if self.records_per_executor_per_second <= 0:
            raise ConfigurationError(f"bolt {self.name!r}: per-executor rate must be positive")
        if self.executors <= 0:
            raise ConfigurationError(f"bolt {self.name!r}: executors must be positive")

    @property
    def capacity(self) -> int:
        """Records/second at full parallelism."""
        return self.records_per_executor_per_second * self.executors


@dataclass(frozen=True)
class TopologyConfig:
    """An explicit Storm topology, for the fixed-parallelism model.

    Real Storm assigns a topology's executors to worker slots once;
    adding VMs does **not** add throughput until the topology is
    *rebalanced*, and rebalancing briefly deactivates the spouts. With
    a topology configured, the cluster models exactly that: capacity is
    the bottleneck bolt's executor throughput, executors are packed
    into ``executor_slots_per_vm * running VMs`` slots (scaling down
    proportionally when slots are short), and every change in the
    running VM count triggers a rebalance window during which nothing
    is processed.
    """

    bolts: tuple[BoltSpec, ...]
    executor_slots_per_vm: int = 4
    rebalance_seconds: int = 30

    def __post_init__(self) -> None:
        if not self.bolts:
            raise ConfigurationError("a topology needs at least one bolt")
        names = [bolt.name for bolt in self.bolts]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate bolt names: {names}")
        if self.executor_slots_per_vm <= 0:
            raise ConfigurationError("executor_slots_per_vm must be positive")
        if self.rebalance_seconds < 0:
            raise ConfigurationError("rebalance_seconds must be non-negative")

    @property
    def total_executors(self) -> int:
        return sum(bolt.executors for bolt in self.bolts)

    def capacity_with_slots(self, slots: int) -> int:
        """Bottleneck throughput when only ``slots`` executor slots exist.

        When the requested executors exceed the available slots, every
        bolt's parallelism is reduced proportionally (Storm packs
        multiple executors per slot at reduced efficiency; the linear
        model keeps the bottleneck structure).
        """
        if slots <= 0:
            return 0
        scale = min(1.0, slots / self.total_executors)
        return int(min(bolt.capacity * scale for bolt in self.bolts))


@dataclass(frozen=True)
class StormConfig:
    """Topology performance model.

    Attributes
    ----------
    records_per_vm_per_second:
        Record rate at which one VM saturates (CPU -> 100%).
    cpu_idle_percent:
        Cluster CPU with zero input (supervisors, acker threads, JVM).
    poll_factor:
        How much faster than its processing capacity the spout may pull
        from Kinesis, to drain stream backlog after under-provisioning.
    window_seconds:
        Tumbling-window length of the aggregation bolt; one storage
        write is emitted per distinct key per window flush.
    cpu_noise_std:
        Std-dev of the Gaussian measurement noise on reported CPU.
    """

    records_per_vm_per_second: int = 8000
    cpu_idle_percent: float = 4.8
    poll_factor: float = 1.5
    window_seconds: int = 10
    cpu_noise_std: float = 0.8

    def __post_init__(self) -> None:
        if self.records_per_vm_per_second <= 0:
            raise ConfigurationError("records_per_vm_per_second must be positive")
        if not 0.0 <= self.cpu_idle_percent < 100.0:
            raise ConfigurationError("cpu_idle_percent must be in [0, 100)")
        if self.poll_factor < 1.0:
            raise ConfigurationError("poll_factor must be >= 1")
        if self.window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if self.cpu_noise_std < 0:
            raise ConfigurationError("cpu_noise_std must be non-negative")

    @property
    def cpu_slope_per_record_per_second(self) -> float:
        """CPU percentage points per (record/second) of per-VM load."""
        return (100.0 - self.cpu_idle_percent) / self.records_per_vm_per_second


class SimStormCluster:
    """Storm topology over an EC2 fleet, pulling from Kinesis."""

    def __init__(
        self,
        fleet: SimEC2Fleet,
        config: StormConfig | None = None,
        rng: np.random.Generator | None = None,
        name: str = "clickstream-topology",
        distinct_estimator: "Callable[[int], float] | None" = None,
        topology: TopologyConfig | None = None,
    ) -> None:
        self.name = name
        # Metric dimensions are immutable for the cluster's lifetime;
        # built once instead of per emit call.
        self._dims = {"Topology": name}
        self._dims_key = (("Topology", name),)
        self.fleet = fleet
        self.config = config or StormConfig()
        self.topology = topology
        self._last_running_vms: int | None = None
        self._rebalancing_until = 0
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Maps a window's record count to its expected distinct-key
        # count (the aggregation model). When absent, the per-tick
        # distinct_keys passed to pull_and_process are averaged instead.
        self._distinct_estimator = distinct_estimator
        self._pending_records = 0
        self._window_keys = 0.0
        self._window_records = 0
        self._window_elapsed = 0
        # Per-tick observables, flushed by emit_metrics().
        self._tick_processed = 0
        self._tick_cpu = self.config.cpu_idle_percent
        self._tick_writes_emitted = 0
        # Lifetime conservation counters (never reset; audited by the
        # invariant checker against the stream and the storage table).
        self.total_processed = 0
        self.total_writes_emitted = 0
        # Flight-recorder hooks (off unless attach_bus() is called).
        self._bus = None
        self._bus_layer = "analytics"
        # Noisy-neighbor contention source (multi-flow runs only).
        self._region = None

    def attach_bus(self, bus, layer: str = "analytics") -> None:
        """Publish topology rebalance events to a flight recorder."""
        self._bus = bus
        self._bus_layer = layer

    def attach_region(self, region) -> None:
        """Subject this cluster to the region's shared-pool contention.

        Processing capacity is scaled by the region's
        ``contention_factor`` — a pure function of the flows' combined
        committed instance counts, constant between control/chaos
        boundaries, so span execution stays bit-identical. The fleet
        registers itself with the region separately; the cluster only
        *reads* the contention signal.
        """
        self._region = region

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def pull_and_process(
        self, stream: SimKinesisStream, distinct_keys: int, clock: SimClock
    ) -> int:
        """Run one tick of the topology.

        Pulls up to ``poll_factor`` times the processing capacity from
        the stream, processes what capacity allows (the rest queues as
        pending tuples), folds ``distinct_keys`` into the current
        aggregation window, and returns the storage writes emitted by
        any window flush this tick.
        """
        if distinct_keys < 0:
            raise ConfigurationError("distinct_keys must be non-negative")
        now = clock.now
        vms = self.fleet.running_count(now)
        capacity = self._capacity_this_tick(vms, now) * clock.tick_seconds
        poll_limit = int(capacity * self.config.poll_factor)
        pulled = stream.get_records(max(0, poll_limit - self._pending_records), clock)
        self._pending_records += pulled
        processed = min(self._pending_records, capacity)
        self._pending_records -= processed
        self._tick_processed = processed
        self.total_processed += processed

        # CPU: affine in the capacity fraction in use (which reduces to
        # "affine in per-VM record rate" for the homogeneous model),
        # saturating at 100 when tuples are left pending, plus noise.
        if vms > 0:
            idle = self.config.cpu_idle_percent
            if capacity > 0:
                cpu = idle + (100.0 - idle) * (processed / capacity)
            else:
                cpu = idle  # workers up but paused (rebalance)
            if self._pending_records > 0:
                cpu = 100.0
        else:
            cpu = 0.0
        noise = float(self._rng.normal(0.0, self.config.cpu_noise_std)) if self.config.cpu_noise_std else 0.0
        self._tick_cpu = float(min(100.0, max(0.0, cpu + noise)))

        # Windowed aggregation: one storage write per distinct key per
        # tumbling window. With a distinct estimator the key count is
        # derived from the whole window's record volume (saturating at
        # the hot-page set); otherwise the per-tick counts are averaged.
        self._window_keys += distinct_keys
        self._window_records += processed
        self._window_elapsed += clock.tick_seconds
        writes = 0
        if self._window_elapsed >= self.config.window_seconds:
            if self._distinct_estimator is not None:
                expected = self._distinct_estimator(self._window_records)
                writes = int(self._rng.poisson(expected)) if expected > 0 else 0
            else:
                ticks_in_window = max(1, self._window_elapsed // clock.tick_seconds)
                writes = int(round(self._window_keys / ticks_in_window))
            self._window_keys = 0.0
            self._window_records = 0
            self._window_elapsed = 0
        self._tick_writes_emitted = writes
        self.total_writes_emitted += writes
        return writes

    def _capacity_this_tick(self, vms: int, now: int) -> int:
        """Records/second available this tick, handling rebalances.

        Without a topology: VM count times the per-VM rate. With one:
        the bottleneck-bolt throughput under the current slot count —
        and zero while a rebalance (triggered by any change in the
        running VM count) is in flight.
        """
        if self.topology is None:
            if now < self._rebalancing_until:
                return 0  # forced (injected) rebalance window
            return self._contended(vms * self.config.records_per_vm_per_second, now)
        if self._last_running_vms is None:
            self._last_running_vms = vms
        elif vms != self._last_running_vms:
            previous = self._last_running_vms
            self._last_running_vms = vms
            self._rebalancing_until = now + self.topology.rebalance_seconds
            if self._bus is not None:
                # The VM-count change may surface ticks after the
                # actuation that caused it (boot latency); the fleet
                # carries that decision's trace forward. The rebalance
                # consumes it — cleared so a later count change that
                # sets no trace of its own cannot inherit a stale one.
                trace = getattr(self.fleet, "last_change_trace", None)
                self._bus.publish(
                    now,
                    self._bus_layer,
                    "rebalance",
                    {"from_vms": previous, "to_vms": vms, "until": self._rebalancing_until},
                    trace=trace,
                )
                if trace is not None:
                    self.fleet.last_change_trace = None
        if now < self._rebalancing_until:
            return 0
        slots = vms * self.topology.executor_slots_per_vm
        return self._contended(self.topology.capacity_with_slots(slots), now)

    def _contended(self, capacity: int, now: int) -> int:
        """Scale capacity by the region's noisy-neighbor factor."""
        if self._region is None:
            return capacity
        factor = self._region.contention_factor(now)
        if factor == 1.0:
            return capacity
        return int(capacity * factor)

    def force_rebalance(self, now: int, duration: int) -> int:
        """Inject a failed/stuck rebalance: pause processing until
        ``now + duration``.

        Extends any rebalance already in flight rather than shortening
        it. Works with or without an explicit topology (the paper's
        homogeneous model also stops processing while Storm redeploys).
        Returns the time the window ends.
        """
        if duration <= 0:
            raise ConfigurationError(f"rebalance duration must be positive, got {duration}")
        until = max(self._rebalancing_until, now + duration)
        self._rebalancing_until = until
        if self._bus is not None:
            self._bus.publish(
                now, self._bus_layer, "rebalance",
                {"forced": True, "until": until},
            )
        return until

    def rebalancing(self, now: int) -> bool:
        """Whether a (topology or forced) rebalance is in flight at ``now``."""
        return now < self._rebalancing_until

    def next_capacity_event(self, now: int) -> int | None:
        """Earliest future time the cluster's own capacity will change.

        The only internal event is a rebalance window ending (VM-count
        changes come from the fleet and are reported by its own
        ``next_capacity_event``). ``None`` when no rebalance is in
        flight past ``now``.
        """
        if now < self._rebalancing_until:
            return self._rebalancing_until
        return None

    def next_window_flush(self, now: int, tick_seconds: int) -> int:
        """The tick at which the current aggregation window will flush.

        Span execution draws its CPU-noise normals in flush-bounded
        segments of this length, so each segment's batched draws and
        the flush's Poisson draw interleave in the same bitstream order
        as the per-tick loop: one normal per tick, then the flush draw
        on the segment's last tick. (Flushes themselves do not bound
        spans.)
        """
        remaining = self.config.window_seconds - self._window_elapsed
        ticks = -(-remaining // tick_seconds)
        if ticks < 1:
            ticks = 1
        return now + ticks * tick_seconds

    @property
    def pending_records(self) -> int:
        """Tuples pulled from the stream but not yet processed."""
        return self._pending_records

    def processing_capacity(self, now: int) -> int:
        """Records/second the cluster can process at ``now``."""
        return self._capacity_this_tick(self.fleet.running_count(now), now)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def emit_metrics(self, cloudwatch, clock: SimClock) -> None:
        now = clock.now
        dims = self._dims_key
        cloudwatch.put_metric_data(NAMESPACE, "CPUUtilization", self._tick_cpu, now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "ProcessedRecords", self._tick_processed, now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "PendingTuples", self._pending_records, now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "RunningVMs", self.fleet.running_count(now), now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "ProvisionedVMs", self.fleet.provisioned_count(now), now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "EmittedWrites", self._tick_writes_emitted, now, dims)

    def emit_metrics_span(
        self,
        cloudwatch,
        times: list[int],
        cpu: list[float],
        processed: list[int],
        pending: list[int],
        writes: list[int],
        running_vms: int,
        provisioned_vms: int,
    ) -> None:
        """Columnar :meth:`emit_metrics` for a whole span of ticks.

        VM counts are constant inside a span (any change is a span
        boundary), so they arrive as scalars and broadcast per tick.
        """
        dims = self._dims_key
        batch = cloudwatch.put_metric_data_batch
        count = len(times)
        batch(NAMESPACE, "CPUUtilization", times, cpu, dims)
        batch(NAMESPACE, "ProcessedRecords", times, processed, dims)
        batch(NAMESPACE, "PendingTuples", times, pending, dims)
        batch(NAMESPACE, "RunningVMs", times, [running_vms] * count, dims)
        batch(NAMESPACE, "ProvisionedVMs", times, [provisioned_vms] * count, dims)
        batch(NAMESPACE, "EmittedWrites", times, writes, dims)

"""Simulated AWS Auto Scaling: alarm-driven scaling policies.

The paper's reference [1] — "almost all the auto-scaling systems
offered by cloud providers such as Amazon use simple rule-based
techniques that quickly trigger in response to predefined threshold
violations". This module models that service faithfully, as opposed to
the loop-driven :class:`~repro.control.rule_based.RuleBasedController`:
a **CloudWatch alarm** moves to ALARM, which triggers a **scaling
policy** (change-in-capacity, percent-change, or exact-capacity)
against an actuator, subject to a cooldown.

It exists both as a baseline to compare Flower against and as a
building block for users who want provider-style scaling on any of the
simulated services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cloud.cloudwatch import MetricAlarm, SimCloudWatch
from repro.control.base import Actuator
from repro.core.errors import ConfigurationError


class AdjustmentType(Enum):
    """How a policy's ``adjustment`` is interpreted (AWS semantics)."""

    CHANGE_IN_CAPACITY = "ChangeInCapacity"
    PERCENT_CHANGE_IN_CAPACITY = "PercentChangeInCapacity"
    EXACT_CAPACITY = "ExactCapacity"


@dataclass(frozen=True)
class ScalingPolicy:
    """One scaling action, fired when its alarm is in ALARM.

    Attributes
    ----------
    name:
        Policy identifier, used in the activity log.
    adjustment:
        Magnitude; sign gives the direction for the relative types.
    adjustment_type:
        AWS adjustment semantics; percent changes round away from zero
        with ``min_adjustment_magnitude`` as the floor, as the real
        service does.
    cooldown:
        Seconds after this policy fires during which it will not fire
        again.
    """

    name: str
    adjustment: float
    adjustment_type: AdjustmentType = AdjustmentType.CHANGE_IN_CAPACITY
    cooldown: int = 300
    min_adjustment_magnitude: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("policy name must be non-empty")
        if self.cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")
        if self.min_adjustment_magnitude < 1:
            raise ConfigurationError("min_adjustment_magnitude must be >= 1")
        if (
            self.adjustment_type is AdjustmentType.EXACT_CAPACITY
            and self.adjustment < 0
        ):
            raise ConfigurationError("exact capacity must be non-negative")

    def target_capacity(self, current: float) -> float:
        """The capacity this policy would command from ``current``."""
        if self.adjustment_type is AdjustmentType.EXACT_CAPACITY:
            return self.adjustment
        if self.adjustment_type is AdjustmentType.CHANGE_IN_CAPACITY:
            return current + self.adjustment
        # Percent change, rounded away from zero, floored at the
        # minimum adjustment magnitude.
        delta = current * self.adjustment / 100.0
        magnitude = max(self.min_adjustment_magnitude, abs(delta))
        return current + (magnitude if self.adjustment >= 0 else -magnitude)


@dataclass(frozen=True)
class ScalingActivity:
    """One executed scaling action, for the activity history."""

    time: int
    policy: str
    alarm: str
    capacity_before: float
    capacity_after: float


@dataclass
class AutoScaler:
    """Binds alarms to policies over one actuator.

    Call :meth:`evaluate` periodically (e.g. from a
    :class:`~repro.simulation.engine.PeriodicTask`); it re-evaluates all
    attached alarms against CloudWatch and executes the policies whose
    alarm is in ALARM and whose cooldown has expired.
    """

    cloudwatch: SimCloudWatch
    actuator: Actuator
    _bindings: list[tuple[MetricAlarm, ScalingPolicy]] = field(default_factory=list)
    _last_fired: dict[str, int] = field(default_factory=dict)
    activities: list[ScalingActivity] = field(default_factory=list)

    def attach(self, alarm: MetricAlarm, policy: ScalingPolicy) -> None:
        """Bind a policy to an alarm (one alarm may drive many policies)."""
        if any(existing.name == policy.name for _a, existing in self._bindings):
            raise ConfigurationError(f"duplicate policy name {policy.name!r}")
        self._bindings.append((alarm, policy))

    def evaluate(self, now: int) -> list[ScalingActivity]:
        """Evaluate alarms and execute triggered policies.

        Returns the activities executed at this evaluation. Policies
        attached to the same alarm fire independently; each respects its
        own cooldown.
        """
        executed: list[ScalingActivity] = []
        for alarm, policy in self._bindings:
            if alarm.evaluate(self.cloudwatch, now) != "ALARM":
                continue
            last = self._last_fired.get(policy.name)
            if last is not None and now - last < policy.cooldown:
                continue
            before = self.actuator.get(now)
            after = self.actuator.apply(policy.target_capacity(before), now)
            self._last_fired[policy.name] = now
            activity = ScalingActivity(
                time=now,
                policy=policy.name,
                alarm=alarm.name,
                capacity_before=before,
                capacity_after=after,
            )
            executed.append(activity)
        self.activities.extend(executed)
        return executed

"""Simulated CloudWatch: a namespaced time-series metric store.

Flower's sensor module "periodically collects live data from multiple
sources such as CloudWatch" (Sec. 3.3). In this reproduction every
simulated service pushes its per-tick measurements here, and sensors
read them back aggregated over a monitoring window — the same indirect
path a real deployment uses, so monitoring delay and aggregation
effects are part of the control loop.

Complexity contract (see DESIGN.md "Metric-store complexity contract"):
appends are O(1) amortized, window reads are O(log n + window) via
bisect over the strictly time-ordered series, and period aggregation is
a single left-to-right pass over the located slice. Aggregation order
is pinned left-to-right (append order), so the switch from per-period
re-scans to the single pass does not move ``Average``/``Sum`` results
by a ULP. Reads are additionally memoized per series version: co-located
alarms, sensors and collectors asking for the same (window, statistic)
within one control period aggregate once.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.errors import MonitoringError

#: Named statistics supported by :meth:`SimCloudWatch.get_metric_statistics`.
#: Percentile statistics (``p0`` .. ``p100``, e.g. ``p50``, ``p99``,
#: ``p99.9``) are also supported; use :func:`validate_statistic` to
#: check an arbitrary statistic string.
SUPPORTED_STATISTICS = ("Average", "Sum", "Maximum", "Minimum", "SampleCount")

#: Strict percentile shape: ``p`` then plain decimal digits with an
#: optional fractional part. ``float()`` is too permissive here — it
#: accepts whitespace, underscores, signs, exponents and ``nan``, so
#: ``"p 50"`` and ``"p1_0"`` would silently parse as p50/p10.
_PERCENTILE_RE = re.compile(r"p(\d{1,3})(?:\.(\d+))?\Z")


def validate_statistic(statistic: str) -> str:
    """Validate a statistic name; returns it unchanged if supported.

    Accepts the named statistics in :data:`SUPPORTED_STATISTICS` plus
    CloudWatch-style percentiles ``pXX[.X]`` with the value in [0, 100]
    (e.g. ``p99``, ``p99.9``). The percentile digits must be literal —
    no whitespace, signs, underscores or exponents. Raises
    :class:`MonitoringError` otherwise — at construction time for
    sensors and alarms, so a typo fails fast instead of on the first
    control period.
    """
    if statistic in SUPPORTED_STATISTICS:
        return statistic
    if statistic.startswith("p"):
        match = _PERCENTILE_RE.match(statistic)
        if match is not None and float(statistic[1:]) <= 100.0:
            return statistic
        raise MonitoringError(
            f"bad percentile statistic {statistic!r}: want pXX[.X] with "
            f"the value in [0, 100]"
        )
    raise MonitoringError(
        f"unsupported statistic {statistic!r}; supported: "
        f"{', '.join(SUPPORTED_STATISTICS)} or pXX percentiles"
    )


#: Memo sentinel for "the window held no datapoints" — distinct from any
#: float so a legitimate NaN aggregate is never confused with emptiness.
_EMPTY_WINDOW = object()


def _dimension_key(
    dimensions: dict[str, str] | tuple[tuple[str, str], ...] | None,
) -> tuple[tuple[str, str], ...]:
    """Canonical series key for a dimensions mapping.

    Accepts an already-canonical key tuple unchanged, so hot emitters
    (the services' per-tick and span paths) can compute their key once
    at construction instead of re-sorting the same one-entry dict on
    every datapoint.
    """
    if not dimensions:
        return ()
    if type(dimensions) is tuple:
        return dimensions
    return tuple(sorted(dimensions.items()))


def _aggregate(values: list[float], statistic: str) -> float:
    if statistic == "Average":
        return sum(values) / len(values)
    if statistic == "Sum":
        return float(sum(values))
    if statistic == "Maximum":
        return float(max(values))
    if statistic == "Minimum":
        return float(min(values))
    if statistic == "SampleCount":
        return float(len(values))
    if statistic.startswith("p"):
        return _percentile(values, float(statistic[1:]))
    raise MonitoringError(f"unsupported statistic {statistic!r}")


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise MonitoringError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    # One-product form: monotone in floating point (never escapes the
    # bracketing values).
    return ordered[low] + weight * (ordered[high] - ordered[low])


class _Series:
    """A single metric stream: time-ordered (t, value) pairs, columnar.

    Storage is a pair of growable numpy arrays (``int64`` times,
    ``float64`` values) so whole spans of datapoints land in one
    :meth:`extend` — the columnar write path the span scheduler uses —
    while :meth:`append` keeps the scalar per-tick path. The
    time-ordered invariant (enforced on both paths) is what makes
    O(log n) window location sound: both ends of a right-closed window
    ``(start, end]`` are found by binary search, and the located slice
    is already in append order, so aggregating it left-to-right matches
    the old full-scan filter bit for bit. Everything handed back out
    (windows, raw series, aggregation inputs) is converted to builtin
    ``int``/``float`` so numpy scalar types never leak into results.
    """

    __slots__ = ("_times", "_values", "_len", "version")

    def __init__(self) -> None:
        self._times = np.empty(16, dtype=np.int64)
        self._values = np.empty(16, dtype=np.float64)
        self._len = 0
        #: Bumped on every append/extend; read memos key on it, so a
        #: stale cached aggregate can never be served after new data
        #: lands.
        self.version = 0

    def __len__(self) -> int:
        return self._len

    @property
    def times(self) -> np.ndarray:
        """View of the recorded timestamps (do not mutate)."""
        return self._times[: self._len]

    @property
    def values(self) -> np.ndarray:
        """View of the recorded values (do not mutate)."""
        return self._values[: self._len]

    def _reserve(self, extra: int) -> None:
        need = self._len + extra
        capacity = self._times.shape[0]
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        times = np.empty(capacity, dtype=np.int64)
        values = np.empty(capacity, dtype=np.float64)
        times[: self._len] = self._times[: self._len]
        values[: self._len] = self._values[: self._len]
        self._times = times
        self._values = values

    def append(self, t: int, value: float) -> None:
        n = self._len
        if n and t < self._times[n - 1]:
            raise MonitoringError(
                f"metric datapoints must be time-ordered: "
                f"got t={t} after t={int(self._times[n - 1])}"
            )
        self._reserve(1)
        self._times[n] = t
        self._values[n] = value
        self._len = n + 1
        self.version += 1

    def extend(self, times: Sequence[int], values: Sequence[float]) -> None:
        """Append a whole time-ordered batch; one version bump.

        The columns are written straight into the reserved tail (one C
        conversion, no intermediate arrays) and validated in place; a
        rejected batch leaves ``_len`` untouched, so the garbage past
        the end is invisible and overwritten by the next append.
        """
        count = len(times)
        if count != len(values):
            raise MonitoringError(
                f"batch times/values must be equal length, "
                f"got {count} and {len(values)} datapoints"
            )
        if count == 0:
            return
        n = self._len
        self._reserve(count)
        ta = self._times
        try:
            ta[n : n + count] = times
            self._values[n : n + count] = values
        except (ValueError, TypeError) as exc:
            raise MonitoringError(
                f"batch times/values must be flat numeric columns: {exc}"
            ) from None
        seg = ta[n : n + count]
        if count > 1:
            disordered = seg[1:] < seg[:-1]
            if disordered.any():
                i = int(np.nonzero(disordered)[0][0])
                raise MonitoringError(
                    f"metric datapoints must be time-ordered: "
                    f"got t={int(seg[i + 1])} after t={int(seg[i])}"
                )
        if n and seg[0] < ta[n - 1]:
            raise MonitoringError(
                f"metric datapoints must be time-ordered: "
                f"got t={int(seg[0])} after t={int(ta[n - 1])}"
            )
        self._len = n + count
        self.version += 1

    def locate(self, start: int, end: int) -> tuple[int, int]:
        """Index range ``[lo, hi)`` of datapoints with start < t <= end."""
        t = self._times[: self._len]
        return (
            int(np.searchsorted(t, start, side="right")),
            int(np.searchsorted(t, end, side="right")),
        )

    def window(self, start: int, end: int) -> list[float]:
        """Values with start < t <= end (CloudWatch-style right-closed)."""
        lo, hi = self.locate(start, end)
        return self._values[lo:hi].tolist()


class SimCloudWatch:
    """Namespaced metric store with period aggregation and alarms."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, str, tuple[tuple[str, str], ...]], _Series] = defaultdict(
            _Series
        )
        self._alarms: list[MetricAlarm] = []
        # Per-series read memo: series key -> [version, {request: result}].
        # Entries are discarded wholesale when the series version moves,
        # so the memo holds at most one control period's worth of
        # distinct read shapes per series.
        self._read_memo: dict[tuple, list] = {}
        #: Opt-in deferred batch writes (fleet span batching). When
        #: set, :meth:`put_metric_data_batch` buffers the columns and
        #: every read path flushes them first, so readers always see
        #: exactly the series an eager store would hold. Off by
        #: default: single-flow and per-tick runs are unaffected.
        self.lazy_batches = False
        self._pending: dict[tuple, list[tuple[np.ndarray, np.ndarray]]] = {}
        # Monitoring-layer fault injection (chaos harness). A metric
        # delay makes sensors query a window ending ``delay`` seconds in
        # the past; a dropout makes sensor reads return no data at all.
        # Both affect only sensor *reads* — datapoints keep landing, so
        # recovery is instant when the fault clears.
        self.sensor_delay_seconds = 0
        self.sensor_dropout = False

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def put_metric_data(
        self,
        namespace: str,
        metric_name: str,
        value: float,
        timestamp: int,
        dimensions: dict[str, str] | None = None,
    ) -> None:
        """Record one datapoint. Timestamps must be non-decreasing per series."""
        key = (namespace, metric_name, _dimension_key(dimensions))
        if self._pending:
            self.flush_pending(key)
        self._series[key].append(timestamp, value)

    def put_metric_data_batch(
        self,
        namespace: str,
        metric_name: str,
        times: Sequence[int],
        values: Sequence[float],
        dimensions: dict[str, str] | None = None,
    ) -> None:
        """Record a whole time-ordered batch of datapoints in one call.

        This is the columnar write path for span execution: a span's
        worth of per-tick measurements lands as one array append, with
        one series-version bump, instead of one ``put_metric_data`` per
        tick. Batch order is append order — identical to issuing the
        scalar puts one at a time — so reads and memo semantics are
        unchanged.
        """
        key = (namespace, metric_name, _dimension_key(dimensions))
        if self.lazy_batches:
            # Touching the defaultdict creates the (empty) series
            # eagerly, so existence checks and list_metrics behave as
            # if the batch had landed; the columns land on first read.
            self._series[key]
            self._pending.setdefault(key, []).append((
                np.asarray(times, dtype=np.int64),
                np.asarray(values, dtype=np.float64),
            ))
            return
        self._series[key].extend(times, values)

    def flush_pending(self, key: tuple | None = None) -> None:
        """Land deferred batch writes (no-op when nothing is pending).

        With ``key``, only that series flushes — the read paths use
        this so a sensor polling one metric does not force every other
        buffered series to materialise mid-run; unread series keep
        accumulating parts and land as one extend when the run drains.

        Batches flush per series in put order, concatenated into one
        :meth:`_Series.extend`, so the stored columns — and the version
        counter the read memos key on — match an eager store that had
        extended once per span.
        """
        if not self._pending:
            return
        if key is not None:
            parts = self._pending.pop(key, None)
            if parts is None:
                return
            pending = {key: parts}
        else:
            pending, self._pending = self._pending, {}
        for key, parts in pending.items():
            if len(parts) == 1:
                times, values = parts[0]
            else:
                times = np.concatenate([p[0] for p in parts])
                values = np.concatenate([p[1] for p in parts])
            self._series[key].extend(times, values)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def list_metrics(self, namespace: str | None = None) -> list[tuple[str, str]]:
        """Return (namespace, metric_name) pairs, optionally filtered."""
        seen: dict[tuple[str, str], None] = {}
        for ns, name, _dims in self._series:
            if namespace is not None and ns != namespace:
                continue
            seen[(ns, name)] = None
        return list(seen)

    def get_metric_statistics(
        self,
        namespace: str,
        metric_name: str,
        start: int,
        end: int,
        period: int,
        statistic: str = "Average",
        dimensions: dict[str, str] | None = None,
    ) -> list[tuple[int, float]]:
        """Aggregate a metric into fixed periods.

        Returns ``(period_end, value)`` pairs for every period in
        ``(start, end]`` that contains at least one datapoint. Periods
        are right-aligned on ``end``: the latest period covers
        ``(end - period, end]``.

        Cost is one O(log n) window location plus a single left-to-right
        pass over the located slice, regardless of how many periods the
        range spans.
        """
        if period <= 0:
            raise MonitoringError(f"period must be positive, got {period}")
        if end <= start:
            raise MonitoringError(f"end ({end}) must be after start ({start})")
        validate_statistic(statistic)
        key = (namespace, metric_name, _dimension_key(dimensions))
        series = self._get_series_by_key(key, namespace, metric_name, dimensions)
        memo = self._memo_for(key, series)
        request = (start, end, period, statistic)
        cached = memo.get(request)
        if cached is not None:
            return list(cached)
        results: list[tuple[int, float]] = []
        lo, hi = series.locate(start, end)
        # Materialize the located slice as builtin ints/floats once:
        # aggregation then never sees numpy scalars.
        times = series.times[lo:hi].tolist()
        values = series.values[lo:hi].tolist()
        i, n = 0, hi - lo
        while i < n:
            # Right-aligned period containing times[i]: boundaries sit
            # at end - k*period, and the bucket is right-closed.
            period_end = end - (end - times[i]) // period * period
            j = bisect_right(times, period_end, i, n)
            results.append((period_end, _aggregate(values[i:j], statistic)))
            i = j
        memo[request] = results
        return list(results)

    def get_metric_value(
        self,
        namespace: str,
        metric_name: str,
        now: int,
        window: int,
        statistic: str = "Average",
        dimensions: dict[str, str] | None = None,
        default: float | None = None,
    ) -> float:
        """Single aggregated value over the trailing ``window`` seconds.

        This is what Flower's sensor module calls: one statistic over
        the monitoring window ending at ``now``. Raises if the window is
        empty and no ``default`` is given.
        """
        validate_statistic(statistic)
        key = (namespace, metric_name, _dimension_key(dimensions))
        if self._pending:
            self.flush_pending(key)
        if key not in self._series:
            if default is None:
                self._raise_unknown(namespace, metric_name, dimensions)
            return default
        series = self._series[key]
        memo = self._memo_for(key, series)
        request = (now - window, now, None, statistic)
        cached = memo.get(request)
        if cached is None:
            values = series.window(now - window, now)
            cached = _aggregate(values, statistic) if values else _EMPTY_WINDOW
            memo[request] = cached
        if cached is _EMPTY_WINDOW:
            if default is None:
                raise MonitoringError(
                    f"no datapoints for {namespace}/{metric_name} in ({now - window}, {now}]"
                )
            return default
        return cached

    def get_series(
        self,
        namespace: str,
        metric_name: str,
        dimensions: dict[str, str] | None = None,
    ) -> tuple[list[int], list[float]]:
        """Raw (times, values) of a metric series (copies)."""
        series = self._get_series(namespace, metric_name, dimensions)
        return series.times.tolist(), series.values.tolist()

    def _memo_for(self, key: tuple, series: _Series) -> dict:
        """The read memo for ``key``, reset whenever the series grows."""
        entry = self._read_memo.get(key)
        if entry is None or entry[0] != series.version:
            entry = [series.version, {}]
            self._read_memo[key] = entry
        return entry[1]

    def _get_series(
        self,
        namespace: str,
        metric_name: str,
        dimensions: dict[str, str] | None,
        allow_missing: bool = False,
    ) -> _Series | None:
        key = (namespace, metric_name, _dimension_key(dimensions))
        if self._pending:
            self.flush_pending(key)
        if key not in self._series:
            if allow_missing:
                return None
            self._raise_unknown(namespace, metric_name, dimensions)
        return self._series[key]

    def _get_series_by_key(
        self,
        key: tuple,
        namespace: str,
        metric_name: str,
        dimensions: dict[str, str] | None,
    ) -> _Series:
        if self._pending:
            self.flush_pending(key)
        if key not in self._series:
            self._raise_unknown(namespace, metric_name, dimensions)
        return self._series[key]

    def _raise_unknown(
        self, namespace: str, metric_name: str, dimensions: dict[str, str] | None
    ) -> None:
        known = ", ".join(f"{ns}/{name}" for ns, name in self.list_metrics()) or "<none>"
        raise MonitoringError(
            f"unknown metric {namespace}/{metric_name} "
            f"(dimensions={dict(_dimension_key(dimensions))}); known metrics: {known}"
        )

    # ------------------------------------------------------------------
    # Alarms
    # ------------------------------------------------------------------
    def put_alarm(self, alarm: "MetricAlarm") -> None:
        """Register an alarm; it is evaluated by :meth:`evaluate_alarms`."""
        self._alarms.append(alarm)

    @property
    def alarms(self) -> list["MetricAlarm"]:
        return list(self._alarms)

    def evaluate_alarms(self, now: int) -> list["MetricAlarm"]:
        """Evaluate all alarms at ``now``; return those in ALARM state."""
        return [alarm for alarm in self._alarms if alarm.evaluate(self, now) == "ALARM"]


_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


@dataclass
class MetricAlarm:
    """Threshold alarm over an aggregated metric, CloudWatch-style.

    The alarm goes to ALARM only when the statistic breaches the
    threshold for ``evaluation_periods`` consecutive periods, which is
    exactly the "rule-based techniques that quickly trigger in response
    to predefined threshold violations" the paper contrasts Flower with.

    Co-located alarms — several alarms (or an alarm plus a sensor) over
    the same series, window and statistic — aggregate once per control
    period: the store memoizes reads per series version, so evaluation
    cost does not multiply with the number of watchers.
    """

    name: str
    namespace: str
    metric_name: str
    threshold: float
    comparison: str = ">"
    statistic: str = "Average"
    period: int = 60
    evaluation_periods: int = 1
    dimensions: dict[str, str] | None = None
    on_alarm: Callable[[int], None] | None = None
    on_ok: Callable[[int], None] | None = None
    state: str = field(default="INSUFFICIENT_DATA", init=False)

    def __post_init__(self) -> None:
        if self.comparison not in _COMPARATORS:
            raise MonitoringError(
                f"alarm {self.name!r}: comparison must be one of {sorted(_COMPARATORS)}"
            )
        if self.evaluation_periods <= 0:
            raise MonitoringError(f"alarm {self.name!r}: evaluation_periods must be positive")
        validate_statistic(self.statistic)

    def evaluate(self, cloudwatch: SimCloudWatch, now: int) -> str:
        """Re-evaluate state at ``now`` and fire transition callbacks."""
        window = self.period * self.evaluation_periods
        try:
            datapoints = cloudwatch.get_metric_statistics(
                self.namespace, self.metric_name, now - window, now,
                self.period, self.statistic, self.dimensions,
            )
        except MonitoringError:
            # The metric has never been written: insufficient data, not
            # an error — services may emit their first datapoint after
            # the alarm is created, as in real CloudWatch.
            datapoints = []
        previous = self.state
        if len(datapoints) < self.evaluation_periods:
            self.state = "INSUFFICIENT_DATA"
        else:
            compare = _COMPARATORS[self.comparison]
            breached = all(compare(value, self.threshold) for _t, value in datapoints)
            self.state = "ALARM" if breached else "OK"
        if self.state != previous:
            if self.state == "ALARM" and self.on_alarm is not None:
                self.on_alarm(now)
            elif self.state == "OK" and self.on_ok is not None:
                self.on_ok(now)
        return self.state

"""Simulated Amazon Kinesis stream (the ingestion layer).

The capacity model is the one the paper itself leans on: "each Shard
supports up to 1,000 records/second for writes" (Sec. 3.1), plus the
1 MB/s per-shard payload limit. Writes beyond provisioned throughput
are throttled back to the producer (``ProvisionedThroughputExceeded``),
and resharding (split/merge) takes time proportional to the number of
shards touched — the actuation latency a controller must ride out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import CapacityError, ConfigurationError
from repro.simulation.clock import SimClock

#: CloudWatch namespace used by the stream's metrics.
NAMESPACE = "AWS/Kinesis"


@dataclass(frozen=True)
class KinesisConfig:
    """Stream limits and resharding behaviour.

    Attributes
    ----------
    records_per_shard_per_second / bytes_per_shard_per_second:
        Per-shard write limits (AWS: 1,000 records/s and 1 MiB/s).
    read_records_per_shard_per_second:
        Per-shard read limit (AWS allows 2 MB/s ~ 2x write rate).
    reshard_seconds_per_shard:
        Time to split or merge one shard; a change of N shards takes
        ``base_reshard_seconds + N * reshard_seconds_per_shard``.
    """

    records_per_shard_per_second: int = 1000
    bytes_per_shard_per_second: int = 1024 * 1024
    read_records_per_shard_per_second: int = 2000
    min_shards: int = 1
    max_shards: int = 512
    base_reshard_seconds: int = 30
    reshard_seconds_per_shard: int = 15
    #: Partition-key skew in [0, 1). Kinesis throttles per shard, not on
    #: the stream aggregate: with skewed keys the hottest shard receives
    #: ``skew + (1 - skew)/n`` of the traffic and becomes the throughput
    #: bottleneck, so adding shards helps sublinearly. 0 = perfectly
    #: distributed keys (aggregate behaviour).
    hash_key_skew: float = 0.0

    def __post_init__(self) -> None:
        if self.records_per_shard_per_second <= 0 or self.bytes_per_shard_per_second <= 0:
            raise ConfigurationError("per-shard write limits must be positive")
        if self.read_records_per_shard_per_second <= 0:
            raise ConfigurationError("per-shard read limit must be positive")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ConfigurationError(
                f"need 1 <= min_shards <= max_shards, got {self.min_shards}..{self.max_shards}"
            )
        if self.base_reshard_seconds < 0 or self.reshard_seconds_per_shard < 0:
            raise ConfigurationError("reshard latencies must be non-negative")
        if not 0.0 <= self.hash_key_skew < 1.0:
            raise ConfigurationError(
                f"hash_key_skew must be in [0, 1), got {self.hash_key_skew}"
            )

    def hot_shard_share(self, shards: int) -> float:
        """Traffic fraction landing on the hottest of ``shards`` shards."""
        return self.hash_key_skew + (1.0 - self.hash_key_skew) / shards


@dataclass(frozen=True)
class PutResult:
    """Outcome of a batched put: how much was accepted vs throttled."""

    accepted_records: int
    accepted_bytes: int
    throttled_records: int
    throttled_bytes: int


class SimKinesisStream:
    """A stream with shard-based write capacity and a consumer buffer.

    Records accepted by :meth:`put_records` enter an internal buffer;
    the analytics layer drains it through :meth:`get_records`. The
    buffer size is the stream backlog ("iterator age" in AWS terms) —
    it grows when the analytics layer is under-provisioned, which is
    how under-provisioning one layer becomes visible upstream.
    """

    def __init__(
        self,
        name: str = "clickstream",
        shards: int = 1,
        config: KinesisConfig | None = None,
    ) -> None:
        self.name = name
        # Metric dimensions are immutable for the stream's lifetime;
        # built once instead of per emit call.
        self._dims = {"StreamName": name}
        self._dims_key = (("StreamName", name),)
        self.config = config or KinesisConfig()
        if not self.config.min_shards <= shards <= self.config.max_shards:
            raise CapacityError(
                f"shards={shards} outside [{self.config.min_shards}, {self.config.max_shards}]"
            )
        self._shards = int(shards)
        self._reshard_target: int | None = None
        self._reshard_ready_at: int = 0
        # Causal trace of the decision that commanded the in-flight
        # reshard; pinned onto the eventual reshard.complete event.
        self._reshard_trace: str | None = None
        # Consumer-facing buffer of accepted-but-unread records.
        self._buffer_records = 0
        self._buffer_bytes = 0
        # Per-tick counters, flushed to metrics by emit_metrics().
        self._tick_accepted = 0
        self._tick_accepted_bytes = 0
        self._tick_throttled = 0
        self._tick_read = 0
        # Smoothed incoming rate (records/s), for the iterator-age
        # estimate: lag seconds ~= backlog / recent arrival rate.
        self._smoothed_rate = 0.0
        # Lifetime conservation counters (never reset; the invariant
        # checker audits them against the downstream layers).
        self.total_accepted_records = 0
        self.total_read_records = 0
        # Fault-injection state (chaos harness). A brownout removes a
        # fraction of write capacity; a reshard stall multiplies the
        # latency of reshard operations started while it is active.
        self._brownout_factor = 1.0
        self._reshard_stall_factor = 1.0
        # Flight-recorder hooks (off unless attach_bus() is called).
        self._bus = None
        self._bus_layer = "ingestion"
        self._throttle_since: int | None = None
        self._throttle_records = 0
        # Region-level accounting (multi-flow runs; see cloud/region.py).
        self._region = None
        self._region_flow_id: str | None = None

    def attach_region(self, region, flow_id: str) -> None:
        """Draw this stream's shards from a shared account limit.

        Upward reshards then require account headroom:
        :meth:`update_shard_count` raises
        :class:`~repro.core.errors.RegionCapacityError` when the target
        would exceed the region's total shard limit. Merges (downward
        reshards) are never gated.
        """
        region.register_stream(flow_id, self)
        self._region = region
        self._region_flow_id = flow_id

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_bus(self, bus, layer: str = "ingestion") -> None:
        """Publish reshard and throttle-episode events to a flight
        recorder; without a bus the stream records nothing."""
        self._bus = bus
        self._bus_layer = layer

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def set_brownout(self, capacity_lost: float) -> None:
        """Remove ``capacity_lost`` (a fraction in (0, 1)) of write capacity.

        Models a subset of shards browning out: provisioned shard count
        is unchanged (and still billed), but the usable write throughput
        drops until :meth:`clear_brownout`.
        """
        if not 0.0 < capacity_lost < 1.0:
            raise ConfigurationError(
                f"brownout capacity_lost must be in (0, 1), got {capacity_lost}"
            )
        self._brownout_factor = 1.0 - capacity_lost

    def clear_brownout(self) -> None:
        self._brownout_factor = 1.0

    def set_reshard_stall(self, factor: float) -> None:
        """Multiply the duration of reshards started while active."""
        if factor < 1.0:
            raise ConfigurationError(f"reshard stall factor must be >= 1, got {factor}")
        self._reshard_stall_factor = factor

    def clear_reshard_stall(self) -> None:
        self._reshard_stall_factor = 1.0

    def stall_inflight_reshard(self, now: int) -> int | None:
        """Extend an in-flight reshard by the current stall factor.

        Returns the new ready time, or ``None`` if no reshard was in
        flight. The remaining duration (not the elapsed part) is
        stretched, so a stall landing mid-reshard only delays what is
        left.
        """
        if self._reshard_target is None or self._reshard_ready_at <= now:
            return None
        remaining = self._reshard_ready_at - now
        self._reshard_ready_at = now + int(remaining * self._reshard_stall_factor)
        return self._reshard_ready_at

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def shard_count(self, now: int) -> int:
        """Effective shard count at ``now`` (resharding applies late)."""
        if self._reshard_target is not None and now >= self._reshard_ready_at:
            self._shards = self._reshard_target
            self._reshard_target = None
            if self._bus is not None:
                self._bus.publish(
                    now, self._bus_layer, "reshard.complete",
                    {"shards": self._shards}, trace=self._reshard_trace,
                )
            self._reshard_trace = None
        return self._shards

    def resharding(self, now: int) -> bool:
        """Whether a reshard operation is still in flight at ``now``."""
        return self._reshard_target is not None and now < self._reshard_ready_at

    def committed_shards(self) -> int:
        """Shards the account has committed to this stream.

        The in-flight reshard target when one exists (a ripe-but-
        unapplied target becomes the shard count on the next capacity
        query, so it counts too), else the current count. Pure — never
        applies pending state or publishes events — so the region can
        sum it across streams from any flow's admission check.
        """
        return self._shards if self._reshard_target is None else self._reshard_target

    def update_shard_count(self, target: int, now: int) -> int:
        """Start resharding toward ``target`` shards.

        Returns the clamped target. If a reshard is already in flight
        the request is ignored (AWS returns ``ResourceInUseException``)
        and the in-flight target is returned — controllers poll again
        on their next period.
        """
        current = self.shard_count(now)
        target = max(self.config.min_shards, min(self.config.max_shards, int(target)))
        if self.resharding(now):
            return self._reshard_target  # type: ignore[return-value]
        if target == current:
            return current
        if target > current and self._region is not None:
            # All-or-nothing admission: raises RegionCapacityError (and
            # schedules nothing) without account headroom.
            self._region.admit_shards(self._region_flow_id, self, target, now)
        delta = abs(target - current)
        duration = self.config.base_reshard_seconds + delta * self.config.reshard_seconds_per_shard
        if self._reshard_stall_factor != 1.0:
            duration = int(duration * self._reshard_stall_factor)
        self._reshard_target = target
        self._reshard_ready_at = now + duration
        if self._region is not None:
            self._region.note_capacity_change()
        if self._bus is not None:
            # The decision's trace context is active right now (the
            # actuator applied inside the control loop's step); capture
            # it so the completion event, published ticks later from
            # the data path, still joins the commanding chain.
            self._reshard_trace = self._bus.active_trace
            self._bus.publish(
                now,
                self._bus_layer,
                "reshard",
                {"from": current, "to": target, "ready_at": self._reshard_ready_at},
            )
        return target

    def next_capacity_event(self, now: int) -> int | None:
        """Earliest future time the stream's capacity will change.

        The span scheduler's horizon: a pending reshard completing after
        ``now``. ``None`` when capacity is stable (including a reshard
        already ripe at ``now`` — that one is applied by the very next
        capacity call, i.e. at the start of the next span).
        """
        if self._reshard_target is not None and self._reshard_ready_at > now:
            return self._reshard_ready_at
        return None

    def write_capacity_records(self, now: int) -> int:
        """Records/second the stream can currently absorb.

        With skewed partition keys the hottest shard saturates first, so
        the usable aggregate is the per-shard limit divided by the hot
        shard's traffic share — less than ``shards * limit`` unless keys
        are perfectly distributed.
        """
        shards = self.shard_count(now)
        limit = shards * self.config.records_per_shard_per_second
        if self.config.hash_key_skew:
            bottleneck = self.config.records_per_shard_per_second / self.config.hot_shard_share(shards)
            limit = min(limit, int(bottleneck))
        if self._brownout_factor != 1.0:
            limit = int(limit * self._brownout_factor)
        return limit

    def write_capacity_bytes(self, now: int) -> int:
        shards = self.shard_count(now)
        limit = shards * self.config.bytes_per_shard_per_second
        if self.config.hash_key_skew:
            bottleneck = self.config.bytes_per_shard_per_second / self.config.hot_shard_share(shards)
            limit = min(limit, int(bottleneck))
        if self._brownout_factor != 1.0:
            limit = int(limit * self._brownout_factor)
        return limit

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def put_records(self, records: int, payload_bytes: int, clock: SimClock) -> PutResult:
        """Offer a batch of records for this tick.

        Acceptance is limited by both the record-rate and byte-rate
        shard limits over the tick; the binding limit wins. Throttled
        records are returned to the caller (producers retry, as the
        Kinesis Producer Library does).
        """
        if records < 0 or payload_bytes < 0:
            raise ConfigurationError("records and payload_bytes must be non-negative")
        if records == 0:
            return PutResult(0, 0, 0, 0)
        now = clock.now
        record_cap = self.write_capacity_records(now) * clock.tick_seconds
        byte_cap = self.write_capacity_bytes(now) * clock.tick_seconds
        record_fraction = min(1.0, record_cap / records)
        byte_fraction = min(1.0, byte_cap / payload_bytes) if payload_bytes else 1.0
        fraction = min(record_fraction, byte_fraction)
        accepted = int(records * fraction)
        accepted_bytes = int(payload_bytes * fraction)
        self._buffer_records += accepted
        self._buffer_bytes += accepted_bytes
        self.total_accepted_records += accepted
        self._tick_accepted += accepted
        self._tick_accepted_bytes += accepted_bytes
        self._tick_throttled += records - accepted
        return PutResult(accepted, accepted_bytes, records - accepted, payload_bytes - accepted_bytes)

    def get_records(self, max_records: int, clock: SimClock) -> int:
        """Drain up to ``max_records`` from the buffer (consumer read).

        Also limited by the per-shard read throughput over the tick.
        Returns the number of records handed to the consumer.
        """
        if max_records < 0:
            raise ConfigurationError("max_records must be non-negative")
        now = clock.now
        read_cap = (
            self.shard_count(now)
            * self.config.read_records_per_shard_per_second
            * clock.tick_seconds
        )
        handed = min(max_records, self._buffer_records, read_cap)
        if self._buffer_records:
            self._buffer_bytes -= int(self._buffer_bytes * handed / self._buffer_records)
        self._buffer_records -= handed
        self.total_read_records += handed
        self._tick_read += handed
        return handed

    @property
    def backlog_records(self) -> int:
        """Records accepted but not yet read by the consumer."""
        return self._buffer_records

    def iterator_age_millis(self) -> float:
        """Estimated consumer lag (AWS's ``MillisBehindLatest``).

        How long the consumer would need, at the recent arrival rate,
        to catch up with the newest record: backlog divided by the
        smoothed incoming rate. Zero when the buffer is drained.
        """
        if self._buffer_records == 0:
            return 0.0
        rate = max(self._smoothed_rate, 1e-9)
        return 1000.0 * self._buffer_records / rate

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def emit_metrics(self, cloudwatch, clock: SimClock) -> None:
        """Flush this tick's counters to CloudWatch and reset them."""
        now = clock.now
        dims = self._dims_key
        capacity = self.write_capacity_records(now) * clock.tick_seconds
        # Utilization is accepted/capacity — the saturating signal real
        # dashboards show; overload beyond 100% is visible through the
        # throttle metric instead.
        utilization = 100.0 * self._tick_accepted / capacity if capacity else 0.0
        cloudwatch.put_metric_data(NAMESPACE, "IncomingRecords", self._tick_accepted, now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "IncomingBytes", self._tick_accepted_bytes, now, dims)
        cloudwatch.put_metric_data(
            NAMESPACE, "WriteProvisionedThroughputExceeded", self._tick_throttled, now, dims
        )
        cloudwatch.put_metric_data(NAMESPACE, "GetRecords.Records", self._tick_read, now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "ShardCount", self.shard_count(now), now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "WriteUtilization", utilization, now, dims)
        cloudwatch.put_metric_data(NAMESPACE, "BacklogRecords", self._buffer_records, now, dims)
        # EWMA over ~60 s of ticks, then the lag estimate.
        alpha = min(1.0, clock.tick_seconds / 60.0)
        tick_rate = self._tick_accepted / clock.tick_seconds
        self._smoothed_rate += alpha * (tick_rate - self._smoothed_rate)
        cloudwatch.put_metric_data(
            NAMESPACE, "MillisBehindLatest", self.iterator_age_millis(), now, dims
        )
        if self._bus is not None:
            self._track_throttle_episode(now, self._tick_throttled)
        self._tick_accepted = 0
        self._tick_accepted_bytes = 0
        self._tick_throttled = 0
        self._tick_read = 0

    def emit_metrics_span(
        self,
        cloudwatch,
        times: list[int],
        accepted: list[int],
        accepted_bytes: list[int],
        throttled: list[int],
        read: list[int],
        utilization: list[float],
        backlog: list[int],
        lag_ms: list[float],
        shard_count: int,
    ) -> None:
        """Columnar :meth:`emit_metrics` for a whole span of ticks.

        The caller (the pipeline's span executor) computed the per-tick
        columns with the exact per-tick arithmetic; this method lands
        them as batch appends — same values, same append order, one
        series-version bump per metric per span — and replays the
        throttle-episode tracking tick by tick when a bus is attached.
        Tick counters are assumed already folded into the columns, so
        unlike :meth:`emit_metrics` there is nothing to reset here.
        """
        dims = self._dims_key
        batch = cloudwatch.put_metric_data_batch
        batch(NAMESPACE, "IncomingRecords", times, accepted, dims)
        batch(NAMESPACE, "IncomingBytes", times, accepted_bytes, dims)
        batch(NAMESPACE, "WriteProvisionedThroughputExceeded", times, throttled, dims)
        batch(NAMESPACE, "GetRecords.Records", times, read, dims)
        batch(NAMESPACE, "ShardCount", times, [shard_count] * len(times), dims)
        batch(NAMESPACE, "WriteUtilization", times, utilization, dims)
        batch(NAMESPACE, "BacklogRecords", times, backlog, dims)
        batch(NAMESPACE, "MillisBehindLatest", times, lag_ms, dims)
        if self._bus is not None:
            # A fully quiet span with no episode open replays to
            # nothing: every track() call would be a no-op, so skip
            # the per-tick loop entirely.
            if self._throttle_since is None and not any(throttled):
                return
            track = self._track_throttle_episode
            for t, tick_throttled in zip(times, throttled):
                track(int(t), int(tick_throttled))

    def _track_throttle_episode(self, now: int, throttled: int) -> None:
        """Coalesce per-tick throttling into bounded start/end events.

        A sustained overload publishes two events (``throttle`` when it
        starts, ``throttle.end`` with totals when it clears) instead of
        one per tick, keeping traces readable and bounded.
        """
        if throttled:
            if self._throttle_since is None:
                self._throttle_since = now
                self._throttle_records = 0
                self._bus.publish(
                    now, self._bus_layer, "throttle", {"records": throttled}
                )
            self._throttle_records += throttled
        elif self._throttle_since is not None:
            self._bus.publish(
                now,
                self._bus_layer,
                "throttle.end",
                {"records": self._throttle_records, "since": self._throttle_since},
            )
            self._throttle_since = None
            self._throttle_records = 0

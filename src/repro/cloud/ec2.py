"""Simulated EC2 fleet.

Storm's analytics layer runs on EC2 instances. The behaviour that
matters to an elasticity controller is *actuation latency*: a launched
VM does not serve load until it has booted and joined the cluster, and
a terminating VM stops serving immediately but is still billed until
terminated. This module models exactly that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import CapacityError, ConfigurationError


class InstanceState(Enum):
    PENDING = "pending"
    RUNNING = "running"
    TERMINATED = "terminated"


@dataclass
class Instance:
    """One EC2 instance with its lifecycle timestamps."""

    instance_id: str
    launched_at: int
    ready_at: int
    terminated_at: int | None = None

    def state(self, now: int) -> InstanceState:
        if self.terminated_at is not None and now >= self.terminated_at:
            return InstanceState.TERMINATED
        if now >= self.ready_at:
            return InstanceState.RUNNING
        return InstanceState.PENDING

    def billable(self, now: int) -> bool:
        """Billing starts at launch and stops at termination."""
        if now < self.launched_at:
            return False
        return self.terminated_at is None or now < self.terminated_at


@dataclass(frozen=True)
class EC2Config:
    """Fleet-level configuration.

    Attributes
    ----------
    instance_type:
        Price-book resource key, e.g. ``"ec2.m4.large"``.
    boot_seconds:
        Launch-to-serving latency (boot + joining the Storm cluster).
    min_instances / max_instances:
        Service limits the actuator must respect.
    """

    instance_type: str = "ec2.m4.large"
    boot_seconds: int = 90
    min_instances: int = 1
    max_instances: int = 128

    def __post_init__(self) -> None:
        if self.boot_seconds < 0:
            raise ConfigurationError("boot_seconds must be non-negative")
        if not 1 <= self.min_instances <= self.max_instances:
            raise ConfigurationError(
                f"need 1 <= min_instances <= max_instances, got "
                f"{self.min_instances}..{self.max_instances}"
            )


@dataclass
class SimEC2Fleet:
    """A scalable group of identical instances."""

    config: EC2Config = field(default_factory=EC2Config)
    initial_instances: int = 1
    #: Causal trace of whatever last changed the fleet (a controller's
    #: actuation or an injected crash). The fleet has no event bus of
    #: its own; the Storm cluster reads this when the running VM count
    #: shift surfaces as a rebalance, pinning the rebalance event onto
    #: the decision (or fault) that caused it.
    last_change_trace: str | None = field(default=None, init=False)
    _instances: list[Instance] = field(default_factory=list, init=False)
    _ids: "itertools.count[int]" = field(default_factory=itertools.count, init=False)
    # Region-level accounting (multi-flow runs only; see cloud/region.py).
    _region: object | None = field(default=None, init=False)
    _region_flow_id: str | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not self.config.min_instances <= self.initial_instances <= self.config.max_instances:
            raise CapacityError(
                f"initial_instances={self.initial_instances} outside "
                f"[{self.config.min_instances}, {self.config.max_instances}]"
            )
        for _ in range(self.initial_instances):
            # Initial instances are ready immediately: the flow starts
            # from an already-provisioned steady state.
            self._instances.append(self._new_instance(launched_at=0, ready_at=0))

    def _new_instance(self, launched_at: int, ready_at: int) -> Instance:
        return Instance(f"i-{next(self._ids):06d}", launched_at, ready_at)

    def attach_region(self, region, flow_id: str) -> None:
        """Draw this fleet's instances from a shared region pool.

        Scale-ups then require account headroom: :meth:`set_desired`
        raises :class:`~repro.core.errors.RegionCapacityError` when the
        launch would exceed the region's instance limit. Scale-downs
        are never gated.
        """
        region.register_fleet(flow_id, self)
        self._region = region
        self._region_flow_id = flow_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def instances(self, now: int, state: InstanceState | None = None) -> list[Instance]:
        live = [i for i in self._instances if i.state(now) != InstanceState.TERMINATED]
        if state is None:
            return live
        return [i for i in live if i.state(now) == state]

    def running_count(self, now: int) -> int:
        """Instances actually serving load at ``now``."""
        return len(self.instances(now, InstanceState.RUNNING))

    def provisioned_count(self, now: int) -> int:
        """Instances launched or booting (the actuator's set-point view)."""
        return len(self.instances(now))

    def billable_count(self, now: int) -> int:
        return sum(1 for i in self._instances if i.billable(now))

    def next_capacity_event(self, now: int) -> int | None:
        """Earliest future time the running-instance count will change.

        The span scheduler's horizon: the next boot completing
        (``ready_at``) or, defensively, a termination scheduled in the
        future (the built-in actuators terminate at the current time,
        so in practice only boots appear here). ``None`` when the fleet
        is stable past ``now``.
        """
        best: int | None = None
        for instance in self._instances:
            terminated_at = instance.terminated_at
            if terminated_at is not None and terminated_at <= now:
                continue
            if instance.ready_at > now and (best is None or instance.ready_at < best):
                best = instance.ready_at
            if terminated_at is not None and terminated_at > now:
                if best is None or terminated_at < best:
                    best = terminated_at
        return best

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def fail_instance(self, instance_id: str, now: int) -> bool:
        """Kill one instance (hardware failure): it stops serving *and*
        being billed immediately, without a controller's involvement.

        Returns False if the instance is unknown or already terminated.
        """
        for instance in self._instances:
            if instance.instance_id == instance_id:
                if instance.state(now) == InstanceState.TERMINATED:
                    return False
                instance.terminated_at = now
                if self._region is not None:
                    self._region.note_capacity_change()
                return True
        return False

    def set_desired(self, desired: int, now: int) -> int:
        """Scale the fleet toward ``desired`` instances.

        Launches boot after ``config.boot_seconds``; terminations pick
        the newest instances first (they are least likely to hold warm
        state) and take effect immediately. Returns the clamped desired
        count actually applied.
        """
        desired = max(self.config.min_instances, min(self.config.max_instances, int(desired)))
        current = self.provisioned_count(now)
        if desired > current:
            if self._region is not None:
                # All-or-nothing admission: raises RegionCapacityError
                # (and launches nothing) without account headroom.
                self._region.admit_instances(self._region_flow_id, self, desired, now)
            for _ in range(desired - current):
                self._instances.append(
                    self._new_instance(launched_at=now, ready_at=now + self.config.boot_seconds)
                )
            if self._region is not None:
                self._region.note_capacity_change()
        elif desired < current:
            victims = sorted(
                self.instances(now), key=lambda i: i.launched_at, reverse=True
            )[: current - desired]
            for victim in victims:
                victim.terminated_at = now
            if self._region is not None:
                self._region.note_capacity_change()
        return desired

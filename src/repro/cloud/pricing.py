"""Cloud price books.

The paper's resource-share optimisation (Eq. 4) sums, over every layer
and every *cost dimension* ``d``, the resource amount times the unit
cost ``c_d``. A Kinesis shard, for instance, has two cost dimensions:
a shard-hour price and a per-million-PUT-payload-units price. This
module models unit prices per resource and per cost dimension, and
aggregates running cost for a simulation.

Default prices follow the 2017-era us-east-1 AWS price list that the
paper's demo would have been billed under; they are configuration, not
behaviour, and can be overridden.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class ResourcePrice:
    """Unit prices for one resource type across its cost dimensions.

    Attributes
    ----------
    resource:
        Resource name, e.g. ``"kinesis.shard"``.
    hourly:
        Price per resource-unit-hour (the capacity dimension).
    per_use:
        Price per usage unit (e.g. per million PUT payload units), used
        with a usage volume rather than a capacity level.
    """

    resource: str
    hourly: float
    per_use: float = 0.0
    use_unit: str = ""

    def __post_init__(self) -> None:
        if self.hourly < 0 or self.per_use < 0:
            raise ConfigurationError(f"{self.resource}: prices must be non-negative")

    def capacity_cost(self, units: float, seconds: float) -> float:
        """Cost of holding ``units`` of capacity for ``seconds``."""
        if units < 0 or seconds < 0:
            raise ConfigurationError("units and seconds must be non-negative")
        return self.hourly * units * (seconds / 3600.0)

    def usage_cost(self, volume: float) -> float:
        """Cost of consuming ``volume`` usage units."""
        if volume < 0:
            raise ConfigurationError("volume must be non-negative")
        return self.per_use * volume


#: 2017-era us-east-1 prices (USD). Sources: AWS public price pages as of
#: the paper's publication window.
DEFAULT_PRICES: dict[str, ResourcePrice] = {
    # Kinesis: $0.015 per shard-hour + $0.014 per million PUT payload units.
    "kinesis.shard": ResourcePrice("kinesis.shard", hourly=0.015, per_use=0.014e-6, use_unit="put_payload_unit"),
    # EC2 m4.large on-demand (the Storm worker type in the demo architecture).
    "ec2.m4.large": ResourcePrice("ec2.m4.large", hourly=0.10),
    "ec2.m4.xlarge": ResourcePrice("ec2.m4.xlarge", hourly=0.20),
    "ec2.c4.large": ResourcePrice("ec2.c4.large", hourly=0.10),
    # DynamoDB provisioned throughput: $0.00065 per WCU-hour, $0.00013 per RCU-hour.
    "dynamodb.wcu": ResourcePrice("dynamodb.wcu", hourly=0.00065),
    "dynamodb.rcu": ResourcePrice("dynamodb.rcu", hourly=0.00013),
}


class PriceBook:
    """Maps resource names to :class:`ResourcePrice` entries."""

    def __init__(self, prices: dict[str, ResourcePrice] | None = None) -> None:
        self._prices = dict(DEFAULT_PRICES if prices is None else prices)

    def price(self, resource: str) -> ResourcePrice:
        try:
            return self._prices[resource]
        except KeyError:
            known = ", ".join(sorted(self._prices)) or "<none>"
            raise ConfigurationError(
                f"no price for resource {resource!r}; known resources: {known}"
            ) from None

    def set_price(self, price: ResourcePrice) -> None:
        self._prices[price.resource] = price

    def hourly_rate(self, resource: str, units: float) -> float:
        """Dollars per hour of holding ``units`` of ``resource``."""
        return self.price(resource).hourly * units

    def capacity_cost(self, resource: str, units: float, seconds: float) -> float:
        return self.price(resource).capacity_cost(units, seconds)

    def resources(self) -> list[str]:
        return sorted(self._prices)


class CostMeter:
    """Accumulates capacity cost for one resource over a simulation.

    Call :meth:`accrue` once per tick with the capacity held during that
    tick; the meter integrates capacity-seconds and converts to dollars
    through the price book.
    """

    def __init__(self, book: PriceBook, resource: str) -> None:
        self._price = book.price(resource)
        self.resource = resource
        self._unit_seconds = 0.0
        self._usage_volume = 0.0

    def accrue(self, units: float, seconds: float) -> None:
        """Record holding ``units`` of capacity for ``seconds``."""
        if units < 0 or seconds < 0:
            raise ConfigurationError("units and seconds must be non-negative")
        self._unit_seconds += units * seconds

    def record_usage(self, volume: float) -> None:
        """Record per-use consumption (e.g. PUT payload units)."""
        if volume < 0:
            raise ConfigurationError("volume must be non-negative")
        self._usage_volume += volume

    @property
    def unit_hours(self) -> float:
        return self._unit_seconds / 3600.0

    @property
    def total_cost(self) -> float:
        """Dollars accrued so far (capacity plus usage dimensions)."""
        return (
            self._price.hourly * self.unit_hours
            + self._price.usage_cost(self._usage_volume)
        )

"""Simulated cloud managed services.

These modules replace the AWS services the Flower demo runs on
(Kinesis, Storm-on-EC2, DynamoDB, CloudWatch) with deterministic
discrete-time simulators that expose the same behaviours an elasticity
manager has to cope with: per-shard throughput limits, VM boot latency,
provisioned-capacity throttling, burst credits, capacity-change delays
and period-aggregated metrics.
"""

from repro.cloud.cloudwatch import (
    SUPPORTED_STATISTICS,
    MetricAlarm,
    SimCloudWatch,
    validate_statistic,
)
from repro.cloud.dynamodb import DynamoDBConfig, SimDynamoDBTable
from repro.cloud.ec2 import EC2Config, SimEC2Fleet
from repro.cloud.kinesis import KinesisConfig, SimKinesisStream
from repro.cloud.pricing import PriceBook, ResourcePrice
from repro.cloud.region import RegionContext, RegionLimits
from repro.cloud.storm import BoltSpec, SimStormCluster, StormConfig, TopologyConfig

__all__ = [
    "SimCloudWatch",
    "MetricAlarm",
    "SUPPORTED_STATISTICS",
    "validate_statistic",
    "SimKinesisStream",
    "KinesisConfig",
    "SimEC2Fleet",
    "EC2Config",
    "SimStormCluster",
    "StormConfig",
    "BoltSpec",
    "TopologyConfig",
    "SimDynamoDBTable",
    "DynamoDBConfig",
    "PriceBook",
    "ResourcePrice",
    "RegionContext",
    "RegionLimits",
]

"""Turns a :class:`ChaosSchedule` into service-state transitions.

The injector is an engine component registered *after* the pipeline
(faults observed at tick T take effect from T+1, exactly like real
infrastructure failing between polling intervals) and it is fully
span-compatible: each pending transition's due tick bounds the span,
so a fault lands at precisely the tick the per-tick reference loop
would apply it — span and tick runs stay bit-identical with chaos
enabled.

Worker crashes additionally clamp the *next* span to a single tick:
the fleet's ``next_capacity_event`` does not report past terminations,
so without the clamp the pipeline's capacity hoist would smear the
post-crash VM count (and any topology rebalance it triggers) across a
long span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.cloudwatch import SimCloudWatch
from repro.cloud.dynamodb import SimDynamoDBTable
from repro.cloud.ec2 import InstanceState, SimEC2Fleet
from repro.cloud.kinesis import SimKinesisStream
from repro.cloud.storm import SimStormCluster
from repro.chaos.schedule import POINT_FAULTS, ChaosSchedule, FaultKind, FaultSpec
from repro.observability.events import EventBus
from repro.simulation.clock import SimClock
from repro.simulation.rng import derive_rng


@dataclass(frozen=True)
class ChaosEvent:
    """One applied fault transition, for post-hoc inspection.

    ``phase`` is ``inject`` when a fault window opens (or a point fault
    fires) and ``clear`` when it closes. Seed-determinism tests compare
    whole lists of these for equality.

    ``trace`` is the fault's causal trace id
    (``fault:<kind>@<start>``) — shared by the inject and clear
    transitions and by every bus event the fault caused, so MTTR is
    attributable per fault. It derives from the schedule (not the
    apply tick), so span and per-tick runs produce identical events.
    """

    time: int
    fault: str
    layer: str
    phase: str
    detail: str = ""
    trace: str | None = None


@dataclass
class ChaosInjector:
    """Applies a schedule's transitions at their due ticks."""

    schedule: ChaosSchedule
    stream: SimKinesisStream
    cluster: SimStormCluster
    fleet: SimEC2Fleet
    table: SimDynamoDBTable
    cloudwatch: SimCloudWatch
    events: list[ChaosEvent] = field(default_factory=list)
    bus: EventBus | None = None

    def __post_init__(self) -> None:
        self._rng = derive_rng(self.schedule.seed, "chaos")
        # (time, clear-before-inject, spec order) — a window closing and
        # another opening at the same second apply in close-then-open
        # order, so back-to-back same-kind windows hand over cleanly.
        transitions: list[tuple[int, int, int, str, FaultSpec]] = []
        for index, spec in enumerate(self.schedule.faults):
            transitions.append((spec.start, 1, index, "inject", spec))
            if spec.kind not in POINT_FAULTS:
                transitions.append((spec.end, 0, index, "clear", spec))
        transitions.sort(key=lambda t: t[:3])
        self._transitions = transitions
        self._cursor = 0
        self._clamp_tick: int | None = None

    # ------------------------------------------------------------------
    # Engine component protocol (tick + span)
    # ------------------------------------------------------------------
    def on_tick(self, clock: SimClock) -> None:
        self._apply_due(clock.now)

    def span_horizon(self, now: int, limit: int, tick_seconds: int) -> int:
        if self._clamp_tick == now:
            # The tick after a worker crash runs alone (see module doc).
            return now + tick_seconds
        if self._cursor >= len(self._transitions):
            return limit
        t = self._transitions[self._cursor][0]
        if t <= now:
            due = now + tick_seconds
        else:
            due = now + tick_seconds * -(-(t - now) // tick_seconds)
        return min(limit, due)

    def run_span(self, clock: SimClock, span_end: int) -> None:
        # span_horizon bounded the span at the first due tick, so every
        # transition with time <= span_end lands exactly there — the
        # same tick the per-tick loop would apply it at.
        self._apply_due(span_end)

    def _apply_due(self, now: int) -> None:
        transitions = self._transitions
        n = len(transitions)
        while self._cursor < n and transitions[self._cursor][0] <= now:
            _, _, _, phase, spec = transitions[self._cursor]
            self._cursor += 1
            self._apply(phase, spec, now)

    # ------------------------------------------------------------------
    # Per-kind transitions
    # ------------------------------------------------------------------
    def _apply(self, phase: str, spec: FaultSpec, now: int) -> None:
        """Apply one transition inside the fault's causal trace context,
        so any event a service publishes while the fault lands (forced
        rebalances, stalled reshards) joins the fault's chain."""
        trace = f"fault:{spec.kind.value}@{spec.start}"
        if self.bus is not None:
            self.bus.begin_trace(trace)
        try:
            self._transition(phase, spec, now, trace)
        finally:
            if self.bus is not None:
                self.bus.end_trace()

    def _transition(self, phase: str, spec: FaultSpec, now: int, trace: str) -> None:
        kind = spec.kind
        detail = ""
        if kind is FaultKind.RESHARD_STALL:
            if phase == "inject":
                self.stream.set_reshard_stall(spec.intensity)
                extended = self.stream.stall_inflight_reshard(now)
                detail = f"factor={spec.intensity}" + (
                    f" inflight_ready_at={extended}" if extended is not None else ""
                )
            else:
                self.stream.clear_reshard_stall()
        elif kind is FaultKind.SHARD_BROWNOUT:
            if phase == "inject":
                self.stream.set_brownout(spec.intensity)
                detail = f"capacity_lost={spec.intensity}"
            else:
                self.stream.clear_brownout()
        elif kind is FaultKind.WORKER_CRASH:
            victims = self._crash_workers(int(spec.intensity), now)
            detail = "instances=" + ",".join(victims)
            if victims:
                # The crash changes the running VM count without any
                # controller involvement; the rebalance it triggers
                # belongs to the fault's chain, not a decision's.
                self.fleet.last_change_trace = trace
        elif kind is FaultKind.REBALANCE_FAIL:
            if phase == "inject":
                until = self.cluster.force_rebalance(now, spec.duration)
                detail = f"until={until}"
            # The cluster clears itself when the window lapses; the
            # clear transition only records the timeline event.
        elif kind is FaultKind.THROTTLE_STORM:
            if phase == "inject":
                self.table.set_throttle_storm(spec.intensity)
                detail = f"capacity_lost={spec.intensity}"
            else:
                self.table.clear_throttle_storm()
        elif kind is FaultKind.UPDATE_REJECT:
            if phase == "inject":
                self.table.fail_updates()
            else:
                self.table.restore_updates()
        elif kind is FaultKind.METRIC_DELAY:
            if phase == "inject":
                self.cloudwatch.sensor_delay_seconds = int(spec.intensity)
                detail = f"delay={int(spec.intensity)}"
            else:
                self.cloudwatch.sensor_delay_seconds = 0
        elif kind is FaultKind.METRIC_DROPOUT:
            self.cloudwatch.sensor_dropout = phase == "inject"
        self.events.append(
            ChaosEvent(
                time=now, fault=kind.value, layer=spec.layer, phase=phase,
                detail=detail, trace=trace,
            )
        )
        if self.bus is not None:
            payload: dict[str, object] = {"fault": kind.value}
            if spec.intensity:
                payload["intensity"] = spec.intensity
            if detail:
                payload["detail"] = detail
            self.bus.publish(
                now,
                spec.layer,
                "fault.inject" if phase == "inject" else "fault.clear",
                payload,
            )

    def _crash_workers(self, count: int, now: int) -> list[str]:
        """Kill ``count`` seeded-random running VMs; returns their ids."""
        running = self.fleet.instances(now, InstanceState.RUNNING)
        count = min(count, len(running))
        if count == 0:
            return []
        order = sorted(running, key=lambda i: (i.launched_at, i.instance_id))
        picks = self._rng.choice(len(order), size=count, replace=False)
        victims = [order[int(i)].instance_id for i in sorted(int(i) for i in picks)]
        for victim in victims:
            self.fleet.fail_instance(victim, now)
        self._clamp_tick = now
        return victims

"""Always-on run-time invariant checking for managed flows.

The simulator's whole value is that its numbers can be trusted; the
:class:`InvariantChecker` makes that a run-time property instead of a
test-suite hope. It registers as an engine component between the
pipeline and the chaos injector and, at every tick (per-tick mode) or
every span boundary (span mode), audits:

* **Conservation** — no record is created or destroyed between layers:
  generated = ingested + producer backlog + dropped; ingested = read +
  stream buffer; read = processed + pending tuples; emitted writes =
  stored + write backlog + dropped writes.
* **Capacity bounds** — every provisioned capacity (and in-flight
  target) sits inside its service's configured limits.
* **Cost additivity** — each meter's accumulated unit-seconds equal
  the checker's own independent integration of capacity x time, and
  the ingestion meter's usage volume equals the stream's accepted
  count (billing cannot drift from what the services actually did).
* **Controller-bound respect** — capacities applied by a bounded
  (resource-share) control loop never exceed its cap.

Checks are read-only: private counters are read directly so that a
check never applies pending capacity targets or publishes service
events, keeping span/tick equivalence intact. Violations don't abort
the run (unless ``strict``); they are counted, sampled, published as
``invariant.violation`` events, and surfaced on the run result.

The checker also runs a per-layer **MTTR probe**: each layer is
"degraded" while its backlog is non-empty (producer backlog, pending
tuples, write backlog); episodes of degradation are recorded so
recovery times under injected faults can be read straight off the run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.bounded import BoundedActuator
from repro.core.errors import SimulationError
from repro.simulation.clock import SimClock

#: Keep at most this many violation samples (counts are unbounded).
MAX_SAMPLES = 50
#: Publish at most this many ``invariant.violation`` events per invariant.
MAX_EVENTS_PER_INVARIANT = 10


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    time: int
    invariant: str
    detail: str


@dataclass(frozen=True)
class DegradedEpisode:
    """A contiguous window during which a layer's backlog was non-empty.

    ``end`` is ``None`` for an episode still open when the run stopped.
    """

    layer: str
    start: int
    end: int | None

    @property
    def duration(self) -> int | None:
        return None if self.end is None else self.end - self.start


@dataclass(frozen=True)
class InvariantReport:
    """Summary surfaced on :class:`~repro.core.manager.FlowRunResult`."""

    checks: int
    counts: dict[str, int]
    samples: tuple[Violation, ...]
    episodes: tuple[DegradedEpisode, ...]

    @property
    def total_violations(self) -> int:
        return sum(self.counts.values())

    @property
    def ok(self) -> bool:
        return not self.counts

    def mttr_seconds(self, layer: str) -> float | None:
        """Mean time-to-recover for ``layer``'s closed degradation
        episodes; ``None`` if the layer never degraded and recovered."""
        durations = [
            e.duration for e in self.episodes if e.layer == layer and e.duration is not None
        ]
        if not durations:
            return None
        return sum(durations) / len(durations)

    def describe(self) -> str:
        lines = [f"invariant checks: {self.checks}, violations: {self.total_violations}"]
        for name, count in sorted(self.counts.items()):
            lines.append(f"  {name}: {count}")
        for layer in ("ingestion", "analytics", "storage"):
            mttr = self.mttr_seconds(layer)
            if mttr is not None:
                lines.append(f"  mttr[{layer}]: {mttr:.0f}s")
        return "\n".join(lines)


class InvariantChecker:
    """Engine component auditing a managed flow's cross-layer state."""

    def __init__(
        self,
        *,
        pipeline,
        generator,
        stream,
        cluster,
        fleet,
        table,
        cost_meters,
        loops=None,
        check_controller_bounds: bool = True,
        bus=None,
        strict: bool = False,
    ) -> None:
        self._pipeline = pipeline
        self._generator = generator
        self._stream = stream
        self._cluster = cluster
        self._fleet = fleet
        self._table = table
        self._meters = cost_meters
        self._loops = dict(loops or {})
        self._check_controller_bounds = check_controller_bounds
        self._bus = bus
        self._strict = strict
        self.checks = 0
        self.counts: dict[str, int] = {}
        self.samples: list[Violation] = []
        self._published: dict[str, int] = {}
        # Independent cost integration (exact: integer-valued floats).
        self._last_time = 0
        self._expected_unit_seconds = {name: 0.0 for name in cost_meters}
        self._record_index = {name: 0 for name in self._loops}
        # MTTR probe state.
        self._degraded_since: dict[str, int | None] = {
            "ingestion": None, "analytics": None, "storage": None,
        }
        self._episodes: list[DegradedEpisode] = []

    # ------------------------------------------------------------------
    # Engine component protocol (tick + span)
    # ------------------------------------------------------------------
    def on_tick(self, clock: SimClock) -> None:
        self._check(clock.now)

    def span_horizon(self, now: int, limit: int, tick_seconds: int) -> int:
        return limit

    def run_span(self, clock: SimClock, span_end: int) -> None:
        self._check(span_end)

    def audit(self, now: int) -> None:
        """Run the checks at an executor-driven boundary.

        Batched fleet execution absorbs per-flow capacity events from
        the *global* span, so the engine no longer lands a component
        boundary on every capacity change. The fleet executor instead
        calls this at each flow's own sub-span boundaries — exactly the
        points where that flow's capacities change — which preserves
        the piecewise-constant assumption the cost integration below
        relies on.
        """
        self._check(now)

    # ------------------------------------------------------------------
    # The checks
    # ------------------------------------------------------------------
    def _check(self, now: int) -> None:
        self.checks += 1
        pipeline = self._pipeline
        stream = self._stream
        cluster = self._cluster
        table = self._table

        # Conservation: every record is in exactly one place.
        generated = self._generator.total_records
        ingested = stream.total_accepted_records
        balance = ingested + pipeline._producer_backlog_records + pipeline.dropped_records
        if generated != balance:
            self._violate(
                now, "conservation.ingestion",
                f"generated={generated} != accepted+backlog+dropped={balance}",
            )
        read = stream.total_read_records
        if ingested != read + stream._buffer_records:
            self._violate(
                now, "conservation.stream",
                f"accepted={ingested} != read+buffered={read + stream._buffer_records}",
            )
        processed = cluster.total_processed
        if read != processed + cluster._pending_records:
            self._violate(
                now, "conservation.analytics",
                f"read={read} != processed+pending={processed + cluster._pending_records}",
            )
        emitted = cluster.total_writes_emitted
        stored = table.total_write_accepted + pipeline._write_backlog + pipeline.dropped_writes
        if emitted != stored:
            self._violate(
                now, "conservation.storage",
                f"emitted={emitted} != stored+backlog+dropped={stored}",
            )

        # Capacity bounds (private reads: never applies pending targets).
        self._check_capacity_bounds(now)

        # Cost additivity: re-integrate capacity x time independently.
        interval = now - self._last_time
        self._last_time = now
        self._integrate_and_compare(now, interval)

        # Controller-bound respect for resource-share (bounded) loops.
        if self._check_controller_bounds:
            self._check_bounds(now)

        # MTTR probe: per-layer backlog occupancy transitions.
        self._probe(now, "ingestion", pipeline._producer_backlog_records > 0)
        self._probe(now, "analytics", cluster._pending_records > 0)
        self._probe(now, "storage", pipeline._write_backlog > 0)

    def _check_capacity_bounds(self, now: int) -> None:
        stream, table, fleet = self._stream, self._table, self._fleet
        cfg = stream.config
        for label, value in (("shards", stream._shards), ("reshard_target", stream._reshard_target)):
            if value is not None and not cfg.min_shards <= value <= cfg.max_shards:
                self._violate(
                    now, "bounds.ingestion",
                    f"{label}={value} outside [{cfg.min_shards}, {cfg.max_shards}]",
                )
        dcfg = table.config
        for label, value, low, high in (
            ("write_units", table._write_units, dcfg.min_write_units, dcfg.max_write_units),
            ("pending_write", table._pending_write_target, dcfg.min_write_units, dcfg.max_write_units),
            ("read_units", table._read_units, dcfg.min_read_units, dcfg.max_read_units),
            ("pending_read", table._pending_read_target, dcfg.min_read_units, dcfg.max_read_units),
        ):
            if value is not None and not low <= value <= high:
                self._violate(now, "bounds.storage", f"{label}={value} outside [{low}, {high}]")
        provisioned = fleet.provisioned_count(now)
        if provisioned > fleet.config.max_instances:
            # No minimum check: injected crashes legitimately drop the
            # fleet below min_instances until the controller restores it.
            self._violate(
                now, "bounds.analytics",
                f"provisioned={provisioned} above max {fleet.config.max_instances}",
            )

    def _integrate_and_compare(self, now: int, interval: int) -> None:
        # Capacities are constant between checks (every capacity change
        # lands on a check boundary: engine boundaries in sequential
        # mode, plus the fleet executor's per-flow ``audit`` calls in
        # batch mode), so end-of-interval values x length integrate
        # exactly; all quantities are integer-valued floats, so the
        # comparison is exact, not approximate.
        capacities = {
            "ingestion": self._stream._shards,
            "analytics": self._fleet.billable_count(now),
            "storage": self._table._write_units,
            "storage_reads": self._table._read_units,
        }
        expected = self._expected_unit_seconds
        for name, meter in self._meters.items():
            capacity = capacities.get(name)
            if capacity is None:
                continue
            expected[name] += capacity * interval
            if meter._unit_seconds != expected[name]:
                self._violate(
                    now, "cost.additivity",
                    f"{name}: meter={meter._unit_seconds} != integrated={expected[name]}",
                )
                # Resynchronize so one drift is one violation, not one
                # per subsequent check.
                expected[name] = meter._unit_seconds
        ingestion = self._meters.get("ingestion")
        if ingestion is not None and ingestion._usage_volume != self._stream.total_accepted_records:
            self._violate(
                now, "cost.usage",
                f"ingestion usage={ingestion._usage_volume} != "
                f"accepted={self._stream.total_accepted_records}",
            )

    def _check_bounds(self, now: int) -> None:
        for kind, loop in self._loops.items():
            actuator = loop.actuator
            if not isinstance(actuator, BoundedActuator):
                continue
            records = loop.records
            start = self._record_index[kind]
            cap = max(actuator.cap, actuator.floor)
            for record in records[start:]:
                if record.capacity_applied > cap + 1e-9:
                    self._violate(
                        now, "bounds.controller",
                        f"{loop.name}: applied {record.capacity_applied} above cap {cap}",
                    )
            self._record_index[kind] = len(records)

    def _probe(self, now: int, layer: str, degraded: bool) -> None:
        since = self._degraded_since[layer]
        if degraded and since is None:
            self._degraded_since[layer] = now
        elif not degraded and since is not None:
            self._episodes.append(DegradedEpisode(layer=layer, start=since, end=now))
            self._degraded_since[layer] = None

    def _violate(self, now: int, invariant: str, detail: str) -> None:
        if self._strict:
            raise SimulationError(f"invariant {invariant} violated at t={now}: {detail}")
        self.counts[invariant] = self.counts.get(invariant, 0) + 1
        if len(self.samples) < MAX_SAMPLES:
            self.samples.append(Violation(time=now, invariant=invariant, detail=detail))
        if self._bus is not None:
            published = self._published.get(invariant, 0)
            if published < MAX_EVENTS_PER_INVARIANT:
                self._published[invariant] = published + 1
                self._bus.publish(
                    now, "flow", "invariant.violation",
                    {"invariant": invariant, "detail": detail},
                )

    def report(self) -> InvariantReport:
        episodes = list(self._episodes)
        for layer, since in self._degraded_since.items():
            if since is not None:
                episodes.append(DegradedEpisode(layer=layer, start=since, end=None))
        return InvariantReport(
            checks=self.checks,
            counts=dict(self.counts),
            samples=tuple(self.samples),
            episodes=tuple(episodes),
        )

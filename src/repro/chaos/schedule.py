"""The chaos scenario DSL: what breaks, where, when, and how hard.

A :class:`ChaosSchedule` is a declarative list of :class:`FaultSpec`
entries plus a seed. It is pure data — validation happens here, and the
:class:`~repro.chaos.injector.ChaosInjector` turns it into state
transitions on the simulated services at run time. Schedules round-trip
through plain dicts/JSON so scenarios can live in files or CLI flags.

Fault windows are half-open ``[start, start + duration)``: the fault's
effects are active from the first tick at or after ``start`` and
cleared at the first tick at or after the end. Same-kind windows must
not overlap (each fault kind owns one knob on its service; overlapping
windows would silently overwrite each other's intensity).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import ConfigurationError


class FaultKind(str, Enum):
    """Every fault the chaos harness can inject."""

    #: Ingestion: in-flight and new reshards take ``intensity``× longer.
    RESHARD_STALL = "reshard-stall"
    #: Ingestion: a fraction ``intensity`` of write capacity browns out.
    SHARD_BROWNOUT = "shard-brownout"
    #: Analytics: ``intensity`` running VMs crash at ``start`` (point fault).
    WORKER_CRASH = "worker-crash"
    #: Analytics: a stuck rebalance pauses processing for ``duration``.
    REBALANCE_FAIL = "rebalance-fail"
    #: Storage: a fraction ``intensity`` of usable throughput throttles away.
    THROTTLE_STORM = "throttle-storm"
    #: Storage: capacity-update API calls fail transiently.
    UPDATE_REJECT = "update-reject"
    #: Monitoring: sensors see data ``intensity`` seconds old.
    METRIC_DELAY = "metric-delay"
    #: Monitoring: sensors see no data at all.
    METRIC_DROPOUT = "metric-dropout"


#: The flow layer each fault kind lands in (event/labeling taxonomy).
FAULT_LAYER: dict[FaultKind, str] = {
    FaultKind.RESHARD_STALL: "ingestion",
    FaultKind.SHARD_BROWNOUT: "ingestion",
    FaultKind.WORKER_CRASH: "analytics",
    FaultKind.REBALANCE_FAIL: "analytics",
    FaultKind.THROTTLE_STORM: "storage",
    FaultKind.UPDATE_REJECT: "storage",
    FaultKind.METRIC_DELAY: "monitoring",
    FaultKind.METRIC_DROPOUT: "monitoring",
}

#: Point faults fire once at ``start`` and have no window to clear.
POINT_FAULTS = frozenset({FaultKind.WORKER_CRASH})

#: Kinds whose intensity is a capacity *fraction* in (0, 1).
_FRACTION_KINDS = frozenset({FaultKind.SHARD_BROWNOUT, FaultKind.THROTTLE_STORM})

#: Kinds whose intensity must be >= 1 (a factor, a count, or seconds).
_SCALAR_KINDS = frozenset(
    {FaultKind.RESHARD_STALL, FaultKind.WORKER_CRASH, FaultKind.METRIC_DELAY}
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, window and intensity.

    ``intensity`` semantics depend on the kind — a capacity fraction in
    (0, 1) for brownouts and throttle storms, a latency factor > 1 for
    reshard stalls, a VM count for worker crashes, a staleness in
    seconds for metric delay, and unused for rebalance failures,
    update rejects and metric dropouts.
    """

    kind: FaultKind
    start: int
    duration: int = 0
    intensity: float = 0.0

    def __post_init__(self) -> None:
        kind = FaultKind(self.kind)
        object.__setattr__(self, "kind", kind)
        if self.start < 0:
            raise ConfigurationError(f"{kind.value}: start must be non-negative, got {self.start}")
        if kind in POINT_FAULTS:
            if self.duration != 0:
                raise ConfigurationError(
                    f"{kind.value} is a point fault; duration must be 0, got {self.duration}"
                )
        elif self.duration <= 0:
            raise ConfigurationError(
                f"{kind.value}: duration must be positive, got {self.duration}"
            )
        if kind in _FRACTION_KINDS and not 0.0 < self.intensity < 1.0:
            raise ConfigurationError(
                f"{kind.value}: intensity is a capacity fraction in (0, 1), "
                f"got {self.intensity}"
            )
        if kind in _SCALAR_KINDS and self.intensity < 1.0:
            raise ConfigurationError(
                f"{kind.value}: intensity must be >= 1, got {self.intensity}"
            )

    @property
    def end(self) -> int:
        """First second at which the fault is no longer active."""
        return self.start + self.duration

    @property
    def layer(self) -> str:
        return FAULT_LAYER[self.kind]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "start": self.start,
            "duration": self.duration,
            "intensity": self.intensity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=FaultKind(data["kind"]),
            start=int(data["start"]),
            duration=int(data.get("duration", 0)),
            intensity=float(data.get("intensity", 0.0)),
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, validated set of faults to inject into one run."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = field(default="chaos", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        by_kind: dict[FaultKind, list[FaultSpec]] = {}
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(f"faults must be FaultSpec instances, got {spec!r}")
            by_kind.setdefault(spec.kind, []).append(spec)
        for kind, specs in by_kind.items():
            if kind in POINT_FAULTS:
                continue
            specs = sorted(specs, key=lambda s: s.start)
            for earlier, later in zip(specs, specs[1:]):
                if later.start < earlier.end:
                    raise ConfigurationError(
                        f"overlapping {kind.value} windows: "
                        f"[{earlier.start}, {earlier.end}) and "
                        f"[{later.start}, {later.end})"
                    )

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def layers(self) -> set[str]:
        """Flow layers this schedule disturbs."""
        return {spec.layer for spec in self.faults}

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSchedule":
        return cls(
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", ())),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "chaos")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        return cls.from_dict(json.loads(text))

"""Post-hoc recovery-time (MTTR) analysis of chaos runs.

Given a finished run and the chaos events it recorded, measure how
long the disturbed layer's utilization took to settle back into a
healthy band after each injected fault — the recovery metric the MTTR
benchmark compares across controller styles. Monitoring-layer faults
have no utilization trace of their own and are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.flow import LayerKind

_LAYER_KIND = {
    "ingestion": LayerKind.INGESTION,
    "analytics": LayerKind.ANALYTICS,
    "storage": LayerKind.STORAGE,
}


@dataclass(frozen=True)
class RecoverySample:
    """How one layer recovered from one injected fault."""

    fault: str
    layer: str
    injected_at: int
    #: Seconds from injection until utilization settled into the band
    #: (and stayed there); ``None`` if it never recovered in the run.
    recovery_seconds: int | None

    @property
    def recovered(self) -> bool:
        return self.recovery_seconds is not None


def recovery_times(
    result,
    *,
    band_high: float = 90.0,
    hold_seconds: int = 300,
    period: int = 60,
) -> list[RecoverySample]:
    """One :class:`RecoverySample` per injected fault in the run.

    Recovery is defined as the layer's utilization settling into
    ``[0, band_high]`` for at least ``hold_seconds`` after the
    injection, measured on the ``period``-aggregated utilization trace
    (same machinery as the controller-shootout settling metric).
    """
    # Imported here: repro.analysis pulls in the run-summary store,
    # which imports the manager, which imports this package — a cycle
    # at module import time but not at call time.
    from repro.analysis.metrics import settling_time

    samples: list[RecoverySample] = []
    for event in result.chaos_events:
        if event.phase != "inject":
            continue
        kind = _LAYER_KIND.get(event.layer)
        if kind is None:
            continue  # monitoring faults: no layer utilization to settle
        trace = result.utilization_trace(kind, period=period)
        settle = settling_time(
            trace, 0.0, band_high, start=event.time, hold_seconds=hold_seconds
        )
        samples.append(
            RecoverySample(
                fault=event.fault,
                layer=event.layer,
                injected_at=event.time,
                recovery_seconds=settle,
            )
        )
    return samples

"""Cross-layer chaos harness.

Deterministic, seeded fault injection for every layer of a managed
flow — ingestion (Kinesis reshard stalls, shard brownouts), analytics
(Storm worker crashes, failed rebalances), storage (DynamoDB throttle
storms, rejected capacity updates) and monitoring (CloudWatch metric
delay/dropout) — plus the always-on :class:`InvariantChecker` that
audits conservation, capacity bounds, cost additivity and controller
bounds while the faults land, and MTTR probes for judging how fast
each controller style restores the flow.
"""

from repro.chaos.injector import ChaosEvent, ChaosInjector
from repro.chaos.invariants import InvariantChecker, InvariantReport, Violation
from repro.chaos.mttr import RecoverySample, recovery_times
from repro.chaos.schedule import FAULT_LAYER, ChaosSchedule, FaultKind, FaultSpec

__all__ = [
    "FAULT_LAYER",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "FaultKind",
    "FaultSpec",
    "InvariantChecker",
    "InvariantReport",
    "RecoverySample",
    "Violation",
    "recovery_times",
]

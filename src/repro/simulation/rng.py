"""Seeded random-number utilities.

Simulations need many independent random streams (workload arrivals,
record sizes, noise on CPU measurements, NSGA-II operators, ...). To
keep runs reproducible *and* streams statistically independent, every
stream is derived from a root seed plus a string label using
:class:`numpy.random.SeedSequence` entropy spawning.
"""

from __future__ import annotations

import zlib

import numpy as np


def derive_rng(seed: int, label: str = "") -> np.random.Generator:
    """Return an independent generator derived from ``seed`` and ``label``.

    Two calls with the same ``(seed, label)`` yield identical streams;
    different labels under the same seed yield statistically independent
    streams. The label is folded into the seed material via CRC32 so
    that human-readable stream names stay cheap.
    """
    label_entropy = zlib.crc32(label.encode("utf-8"))
    sequence = np.random.SeedSequence([int(seed), label_entropy])
    return np.random.default_rng(sequence)


def spawn_streams(seed: int, labels: list[str]) -> dict[str, np.random.Generator]:
    """Derive one independent generator per label from a root seed."""
    return {label: derive_rng(seed, label) for label in labels}

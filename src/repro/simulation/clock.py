"""Simulated clock.

The clock is the single source of time for a simulation. Time is kept
in integer *seconds* since the start of the run; components that want
coarser resolution (the engine tick may be 1 s, 10 s, 60 s ...) simply
advance by more than one second per tick.
"""

from __future__ import annotations

from repro.core.errors import SimulationError


class SimClock:
    """Integer-second simulation clock.

    Parameters
    ----------
    tick_seconds:
        How many simulated seconds elapse per engine tick. Must be a
        positive integer.
    start:
        Simulated second at which the clock starts (default 0).
    """

    def __init__(self, tick_seconds: int = 1, start: int = 0) -> None:
        if tick_seconds <= 0:
            raise SimulationError(f"tick_seconds must be positive, got {tick_seconds}")
        if start < 0:
            raise SimulationError(f"start must be non-negative, got {start}")
        self.tick_seconds = int(tick_seconds)
        self._now = int(start)
        self._ticks = 0

    @property
    def now(self) -> int:
        """Current simulated time in seconds."""
        return self._now

    @property
    def ticks(self) -> int:
        """Number of ticks elapsed since the clock was created."""
        return self._ticks

    @property
    def minutes(self) -> float:
        """Current simulated time in minutes."""
        return self._now / 60.0

    @property
    def hours(self) -> float:
        """Current simulated time in hours."""
        return self._now / 3600.0

    def advance(self) -> int:
        """Advance by one tick and return the new time."""
        self._now += self.tick_seconds
        self._ticks += 1
        return self._now

    def advance_to(self, t: int) -> int:
        """Advance directly to ``t``, counting the ticks in between.

        Used by span execution: after a span ``(now, t]`` has been
        processed in bulk, the clock jumps to the span end while
        :attr:`ticks` stays consistent with having advanced one tick at
        a time. ``t`` must lie ahead of the clock on the tick grid.
        """
        delta = t - self._now
        if delta <= 0:
            raise SimulationError(f"cannot advance clock backwards: now={self._now}, target={t}")
        if delta % self.tick_seconds != 0:
            raise SimulationError(
                f"target {t}s is not on the tick grid "
                f"(now={self._now}s, tick={self.tick_seconds}s)"
            )
        self._ticks += delta // self.tick_seconds
        self._now = t
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now}s, tick={self.tick_seconds}s)"

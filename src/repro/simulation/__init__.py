"""Deterministic discrete-time simulation substrate.

Everything in Flower's reproduction runs on simulated time: the cloud
service simulators, the workload generators and the controllers all
advance through :class:`~repro.simulation.engine.SimulationEngine`
ticks. No component reads the wall clock, which makes every experiment
reproducible tick-for-tick from a seed.
"""

from repro.simulation.clock import SimClock
from repro.simulation.engine import PeriodicTask, SimulationEngine
from repro.simulation.rng import derive_rng, spawn_streams

__all__ = [
    "SimClock",
    "SimulationEngine",
    "PeriodicTask",
    "derive_rng",
    "spawn_streams",
]

"""Discrete-time simulation engine.

The engine owns a :class:`~repro.simulation.clock.SimClock` and drives
two kinds of work:

* **components** — objects exposing ``on_tick(clock)`` that must run
  every tick, in registration order (workload generator, then the
  services downstream of it, then metric emission);
* **periodic tasks** — callbacks that run every ``interval`` simulated
  seconds (controller invocations, snapshot collection). A task's phase
  offsets its first firing so that, e.g., controllers can be staggered.

The run loop is deliberately simple and allocation-free per tick: this
engine routinely executes hundreds of thousands of ticks inside the
benchmark suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Protocol

from repro.core.errors import SimulationError
from repro.observability.profiler import TickProfiler
from repro.simulation.clock import SimClock


class TickComponent(Protocol):
    """Anything the engine advances once per tick."""

    def on_tick(self, clock: SimClock) -> None:  # pragma: no cover - protocol
        ...


class SpanComponent(Protocol):
    """A component that can process a whole span of ticks at once.

    Between control boundaries the flow's dynamics are a fixed-capacity
    recurrence, so a span-capable component batches the ticks
    ``(clock.now, span_end]`` in one call. The contract mirrors the
    per-tick loop exactly:

    * ``span_horizon(now, limit, tick_seconds)`` returns the latest
      span end the component can accept, at most ``limit``: the last
      tick before any internal state event (pending reshard/rebalance/
      warm-up completion) would change the recurrence's coefficients —
      except events landing on the very next tick, which the component
      resolves itself at span start — and exactly the tick of an
      aggregation-window flush, so a flush is always a span's last
      tick. The returned time must lie on the tick grid.
    * ``run_span(clock, span_end)`` executes ticks ``clock.now + dt ..
      span_end`` (inclusive) without advancing the clock; the engine
      advances it afterwards. Results must be bit-identical to calling
      ``on_tick`` once per tick.
    """

    def on_tick(self, clock: SimClock) -> None:  # pragma: no cover - protocol
        ...

    def span_horizon(
        self, now: int, limit: int, tick_seconds: int
    ) -> int:  # pragma: no cover - protocol
        ...

    def run_span(self, clock: SimClock, span_end: int) -> None:  # pragma: no cover - protocol
        ...


@dataclass
class PeriodicTask:
    """A callback fired every ``interval`` simulated seconds.

    Attributes
    ----------
    interval:
        Simulated seconds between firings; must be a positive multiple
        of the engine's tick length to fire exactly on ticks.
    callback:
        Called with the current simulated time (seconds).
    phase:
        Offset of the first firing from t=0. A task with interval 60 and
        phase 30 fires at t=30, 90, 150, ...
    name:
        Used in error messages and traces.
    """

    interval: int
    callback: Callable[[int], None]
    phase: int = 0
    name: str = "task"

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise SimulationError(f"task {self.name!r}: interval must be positive")
        if self.phase < 0:
            raise SimulationError(f"task {self.name!r}: phase must be non-negative")

    def due(self, now: int) -> bool:
        """Whether this task fires at simulated second ``now``."""
        if now < self.phase:
            return False
        return (now - self.phase) % self.interval == 0

    def next_due(self, now: int) -> int:
        """Earliest firing time strictly after ``now``.

        This is the task's contribution to the span boundary: the span
        starting just after ``now`` may extend at most to this time, so
        the firing lands exactly on a span end.
        """
        if now < self.phase:
            return self.phase
        return now + self.interval - (now - self.phase) % self.interval


@dataclass
class SimulationEngine:
    """Tick loop over registered components and periodic tasks."""

    clock: SimClock = field(default_factory=SimClock)
    #: Opt-in wall-clock profiler. ``None`` (the default) keeps the
    #: original allocation-free tick loop — the dispatch happens once
    #: per :meth:`run` call, not per tick.
    profiler: TickProfiler | None = None
    #: Batch quiet ticks into spans when every component supports the
    #: :class:`SpanComponent` protocol and no per-tick hooks are
    #: registered; otherwise :meth:`run` silently falls back to the
    #: per-tick reference loop. Disable to force the reference loop.
    span_execution: bool = True
    _components: list[TickComponent] = field(default_factory=list)
    _tasks: list[PeriodicTask] = field(default_factory=list)
    _tick_hooks: list[Callable[[int], None]] = field(default_factory=list)
    _stopped: bool = False
    _labels_cache: dict[int, str] | None = field(default=None, init=False, repr=False)
    #: Whether the most recent :meth:`run` used the span scheduler.
    #: Lets tests assert that registering a component (e.g. a fault
    #: injector) did not silently force the per-tick fallback.
    last_run_used_spans: bool = field(default=False, init=False)

    def add_component(self, component: TickComponent) -> None:
        """Register a component; components run in registration order."""
        self._components.append(component)
        self._labels_cache = None

    def replace_components(self, components: list[TickComponent]) -> None:
        """Swap the registered component list wholesale.

        Used by fleet batching to substitute one executor for the
        per-flow pipeline components it absorbs; ordering guarantees
        are the caller's responsibility (see :meth:`sort_components`).
        """
        self._components = list(components)
        self._labels_cache = None

    def _component_labels(self) -> dict[int, str]:
        """Profiler display labels, cached across :meth:`run` calls."""
        if self._labels_cache is None:
            self._labels_cache = {id(c): type(c).__name__ for c in self._components}
        return self._labels_cache

    def sort_components(self, key: Callable[[TickComponent], int]) -> None:
        """Stable-reorder the registered components by ``key``.

        Multi-flow runs group components by *phase* (all data pipelines,
        then all auditors, then all fault injectors) instead of by flow:
        a fault one flow injects at tick T must become visible to every
        flow's data path only from T+1 — in both per-tick and span
        execution — which requires no injector to run before another
        flow's pipeline within a tick. The sort is stable, so each
        flow's internal order is preserved.
        """
        self._components.sort(key=key)

    def add_task(self, task: PeriodicTask) -> None:
        """Register a periodic task.

        Both ``interval`` and ``phase`` must be multiples of the tick
        length: the loop only evaluates ``due`` at tick boundaries, so a
        misaligned phase (e.g. ``phase=30`` on a 60 s tick) would shift
        every firing time off the tick grid and the task would silently
        never run — a staggered controller would simply be dead.
        """
        if task.interval % self.clock.tick_seconds != 0:
            raise SimulationError(
                f"task {task.name!r}: interval {task.interval}s is not a "
                f"multiple of the tick length {self.clock.tick_seconds}s"
            )
        if task.phase % self.clock.tick_seconds != 0:
            raise SimulationError(
                f"task {task.name!r}: phase {task.phase}s is not a "
                f"multiple of the tick length {self.clock.tick_seconds}s, "
                f"so the task would never fire"
            )
        self._tasks.append(task)

    def every(
        self, interval: int, callback: Callable[[int], None], *, phase: int = 0, name: str = "task"
    ) -> PeriodicTask:
        """Convenience wrapper: build and register a :class:`PeriodicTask`."""
        task = PeriodicTask(interval=interval, callback=callback, phase=phase, name=name)
        self.add_task(task)
        return task

    def on_each_tick(self, hook: Callable[[int], None]) -> None:
        """Register a hook called after all components each tick."""
        self._tick_hooks.append(hook)

    def stop(self) -> None:
        """Request the run loop to stop after the current tick."""
        self._stopped = True

    def run(self, duration_seconds: int) -> int:
        """Run for ``duration_seconds`` of simulated time.

        Each tick executes, in order: every component's ``on_tick``,
        every due periodic task, every tick hook. Tasks see the time of
        the tick that just completed, so a controller with a 60 s period
        acts on metrics covering the full preceding minute.

        Returns the simulated time at which the run stopped.
        """
        if duration_seconds <= 0:
            raise SimulationError(f"duration must be positive, got {duration_seconds}")
        if duration_seconds % self.clock.tick_seconds != 0:
            raise SimulationError(
                f"duration {duration_seconds}s is not a multiple of the "
                f"tick length {self.clock.tick_seconds}s"
            )
        self._stopped = False
        end = self.clock.now + duration_seconds
        self.last_run_used_spans = (
            self.span_execution
            and not self._tick_hooks
            and all(
                hasattr(c, "run_span") and hasattr(c, "span_horizon") for c in self._components
            )
        )
        if self.last_run_used_spans:
            return self._run_spans(end)
        if self.profiler is not None:
            return self._run_profiled(end)
        while self.clock.now < end and not self._stopped:
            now = self.clock.advance()
            for component in self._components:
                component.on_tick(self.clock)
            for task in self._tasks:
                if task.due(now):
                    task.callback(now)
            for hook in self._tick_hooks:
                hook(now)
        return self.clock.now

    def _run_spans(self, end: int) -> int:
        """Span scheduler: batch the quiet ticks between control boundaries.

        Each iteration computes the next boundary — the earliest of the
        run end, any task's next firing, and any component's span
        horizon (pending capacity events, aggregation-window flushes) —
        then hands every component the whole span ``(now, boundary]`` in
        one ``run_span`` call, advances the clock, and fires the tasks
        due at the boundary. Because every task firing time is itself a
        boundary, tasks fire at exactly the times the per-tick loop
        would fire them, observing exactly the same service and metric
        state.

        Task firings come from a **boundary calendar**: a min-heap of
        ``(next firing, registration index, task)`` keeps the upcoming
        due-ticks sorted, so each boundary costs one heap peek instead
        of a full ``next_due`` scan over every task, and a fleet of
        quiet flows stops paying for the busy flows' boundaries. The
        registration index breaks ties so tasks sharing a boundary fire
        in registration order, exactly like the per-tick loop.
        """
        profiler = self.profiler
        labels = self._component_labels()
        dt = self.clock.tick_seconds
        minimum = dt  # a span is never shorter than one tick
        now = self.clock.now
        calendar = [(task.next_due(now), seq, task) for seq, task in enumerate(self._tasks)]
        heapq.heapify(calendar)
        task_count = len(self._tasks)
        while self.clock.now < end and not self._stopped:
            now = self.clock.now
            boundary = calendar[0][0] if calendar else end
            if boundary > end:
                boundary = end
            for component in self._components:
                horizon = component.span_horizon(now, boundary, dt)
                if horizon < boundary:
                    boundary = horizon
            if boundary < now + minimum:
                boundary = now + minimum
            if profiler is not None:
                span_started = perf_counter()
                for component in self._components:
                    started = perf_counter()
                    component.run_span(self.clock, boundary)
                    profiler.record_component(labels[id(component)], perf_counter() - started)
                self.clock.advance_to(boundary)
                while calendar and calendar[0][0] <= boundary:
                    _due, seq, task = heapq.heappop(calendar)
                    started = perf_counter()
                    task.callback(boundary)
                    profiler.record_task(task.name, perf_counter() - started)
                    heapq.heappush(calendar, (task.next_due(boundary), seq, task))
                profiler.record_span((boundary - now) // dt, perf_counter() - span_started)
            else:
                for component in self._components:
                    component.run_span(self.clock, boundary)
                self.clock.advance_to(boundary)
                while calendar and calendar[0][0] <= boundary:
                    _due, seq, task = heapq.heappop(calendar)
                    task.callback(boundary)
                    heapq.heappush(calendar, (task.next_due(boundary), seq, task))
            if len(self._tasks) > task_count:
                # A callback registered new tasks mid-run: enter them
                # into the calendar from the boundary they appeared at.
                for seq in range(task_count, len(self._tasks)):
                    task = self._tasks[seq]
                    heapq.heappush(calendar, (task.next_due(boundary), seq, task))
                task_count = len(self._tasks)
        return self.clock.now

    def _run_profiled(self, end: int) -> int:
        """The same tick loop, timed per component, task and whole tick."""
        profiler = self.profiler
        labels = self._component_labels()
        while self.clock.now < end and not self._stopped:
            now = self.clock.advance()
            tick_started = perf_counter()
            for component in self._components:
                started = perf_counter()
                component.on_tick(self.clock)
                profiler.record_component(labels[id(component)], perf_counter() - started)
            for task in self._tasks:
                if task.due(now):
                    started = perf_counter()
                    task.callback(now)
                    profiler.record_task(task.name, perf_counter() - started)
            for hook in self._tick_hooks:
                hook(now)
            profiler.record_tick(perf_counter() - tick_started)
        return self.clock.now

"""Failure injection.

Cloud infrastructure fails; an elasticity manager that only handles
load changes is half a system. These components kill analytics-layer
VMs — on a schedule (deterministic tests) or stochastically (soak
runs) — so the test suite can verify that Flower's controllers restore
capacity after infrastructure loss, not just after workload shifts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.ec2 import InstanceState, SimEC2Fleet
from repro.core.errors import SimulationError
from repro.observability.events import EventBus
from repro.simulation.clock import SimClock


@dataclass(frozen=True)
class FaultEvent:
    """One injected failure, for post-hoc inspection."""

    time: int
    instance_id: str


@dataclass
class ScheduledVMFaults:
    """Kills one running VM at each listed simulated time.

    Deterministic: at each scheduled second, the *oldest* running
    instance dies (the most likely to hold state — the worst case for
    the flow). Register as an engine component.
    """

    fleet: SimEC2Fleet
    kill_times: list[int]
    events: list[FaultEvent] = field(default_factory=list)
    #: Optional flight-recorder bus; injections publish ``fault.inject``.
    bus: EventBus | None = None

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.kill_times):
            raise SimulationError("kill times must be non-negative")
        self._remaining = sorted(self.kill_times)

    def on_tick(self, clock: SimClock) -> None:
        now = clock.now
        while self._remaining and self._remaining[0] <= now:
            self._remaining.pop(0)
            victim = self._pick_victim(now)
            if victim is not None:
                self.fleet.fail_instance(victim, now)
                self.events.append(FaultEvent(time=now, instance_id=victim))
                if self.bus is not None:
                    self.bus.publish(
                        now, "analytics", "fault.inject",
                        {"instance": victim, "mode": "scheduled"},
                    )

    def _pick_victim(self, now: int) -> str | None:
        running = self.fleet.instances(now, InstanceState.RUNNING)
        if not running:
            return None
        oldest = min(running, key=lambda i: i.launched_at)
        return oldest.instance_id


@dataclass
class RandomVMFaults:
    """Memoryless VM failures with a configurable MTBF.

    Each running instance fails within a tick with probability
    ``tick_seconds / mtbf_seconds`` (the discrete hazard of an
    exponential lifetime). Seeded: identical runs inject identical
    faults. Register as an engine component.
    """

    fleet: SimEC2Fleet
    rng: np.random.Generator
    mtbf_seconds: float
    events: list[FaultEvent] = field(default_factory=list)
    #: Optional flight-recorder bus; injections publish ``fault.inject``.
    bus: EventBus | None = None

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise SimulationError("mtbf_seconds must be positive")

    def on_tick(self, clock: SimClock) -> None:
        now = clock.now
        hazard = clock.tick_seconds / self.mtbf_seconds
        for instance in self.fleet.instances(now, InstanceState.RUNNING):
            if self.rng.random() < hazard:
                self.fleet.fail_instance(instance.instance_id, now)
                self.events.append(FaultEvent(time=now, instance_id=instance.instance_id))
                if self.bus is not None:
                    self.bus.publish(
                        now, "analytics", "fault.inject",
                        {"instance": instance.instance_id, "mode": "random"},
                    )

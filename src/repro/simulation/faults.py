"""Failure injection.

Cloud infrastructure fails; an elasticity manager that only handles
load changes is half a system. These components kill analytics-layer
VMs — on a schedule (deterministic tests) or stochastically (soak
runs) — so the test suite can verify that Flower's controllers restore
capacity after infrastructure loss, not just after workload shifts.

Both injectors implement the span protocol (``span_horizon`` /
``run_span``) so registering one no longer silently disables
span-batched execution. A scheduled kill bounds the span at the first
grid tick that observes it — the exact tick the per-tick loop would
inject at — and the tick *after* a kill is forced to run as its own
one-tick span, because a VM-count change can trigger a topology
rebalance whose event must be published at the tick the change is
first observed (the fleet's ``next_capacity_event`` does not report
past terminations, so the pipeline's own clamp cannot see it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.ec2 import InstanceState, SimEC2Fleet
from repro.core.errors import SimulationError
from repro.observability.events import EventBus
from repro.simulation.clock import SimClock


@dataclass(frozen=True)
class FaultEvent:
    """One injected failure, for post-hoc inspection."""

    time: int
    instance_id: str


@dataclass
class ScheduledVMFaults:
    """Kills one running VM at each listed simulated time.

    Deterministic: at each scheduled second, the *oldest* running
    instance dies (the most likely to hold state — the worst case for
    the flow). Register as an engine component.
    """

    fleet: SimEC2Fleet
    kill_times: list[int]
    events: list[FaultEvent] = field(default_factory=list)
    #: Optional flight-recorder bus; injections publish ``fault.inject``.
    bus: EventBus | None = None

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.kill_times):
            raise SimulationError("kill times must be non-negative")
        self._schedule = sorted(self.kill_times)
        self._cursor = 0
        self._last_kill_tick: int | None = None

    def on_tick(self, clock: SimClock) -> None:
        self._fire_due(clock.now)

    def span_horizon(self, now: int, limit: int, tick_seconds: int) -> int:
        if self._last_kill_tick == now:
            # The tick after a kill must run alone: the pipeline's
            # capacity hoist would otherwise smear a rebalance (or the
            # reduced VM count's first observation) across the span.
            return now + tick_seconds
        if self._cursor >= len(self._schedule):
            return limit
        t = self._schedule[self._cursor]
        if t <= now:
            due = now + tick_seconds
        else:
            due = now + tick_seconds * -(-(t - now) // tick_seconds)
        return min(limit, due)

    def run_span(self, clock: SimClock, span_end: int) -> None:
        # span_horizon bounded the span at the first grid tick where a
        # kill is due, so firing at span_end reproduces the per-tick
        # loop's injection times exactly.
        self._fire_due(span_end)

    def _fire_due(self, now: int) -> None:
        schedule = self._schedule
        cursor = self._cursor
        n = len(schedule)
        while cursor < n and schedule[cursor] <= now:
            cursor += 1
            victim = self._pick_victim(now)
            if victim is not None:
                self.fleet.fail_instance(victim, now)
                self.events.append(FaultEvent(time=now, instance_id=victim))
                self._last_kill_tick = now
                if self.bus is not None:
                    self.bus.publish(
                        now, "analytics", "fault.inject",
                        {"instance": victim, "mode": "scheduled"},
                    )
        self._cursor = cursor

    def _pick_victim(self, now: int) -> str | None:
        running = self.fleet.instances(now, InstanceState.RUNNING)
        if not running:
            return None
        oldest = min(running, key=lambda i: i.launched_at)
        return oldest.instance_id


@dataclass
class RandomVMFaults:
    """Memoryless VM failures with a configurable MTBF.

    Each running instance fails within a tick with probability
    ``tick_seconds / mtbf_seconds`` (the discrete hazard of an
    exponential lifetime). Seeded: identical runs inject identical
    faults. Register as an engine component.

    The hazard draw depends on the instance set at every tick, which
    controller actions change at boundaries — so spans cannot be
    batched ahead of time. ``span_horizon`` therefore clamps every span
    to one tick: span execution stays *enabled* (and bit-exact) for
    flows that register this injector, it just gains no speedup.
    """

    fleet: SimEC2Fleet
    rng: np.random.Generator
    mtbf_seconds: float
    events: list[FaultEvent] = field(default_factory=list)
    #: Optional flight-recorder bus; injections publish ``fault.inject``.
    bus: EventBus | None = None

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise SimulationError("mtbf_seconds must be positive")

    def on_tick(self, clock: SimClock) -> None:
        self._tick(clock.now, clock.tick_seconds)

    def span_horizon(self, now: int, limit: int, tick_seconds: int) -> int:
        return now + tick_seconds

    def run_span(self, clock: SimClock, span_end: int) -> None:
        # Defensive: another component may still have produced a longer
        # span; replay the per-tick hazard draws inside it.
        dt = clock.tick_seconds
        t = clock.now
        while t < span_end:
            t += dt
            self._tick(t, dt)

    def _tick(self, now: int, tick_seconds: int) -> None:
        hazard = tick_seconds / self.mtbf_seconds
        for instance in self.fleet.instances(now, InstanceState.RUNNING):
            if self.rng.random() < hazard:
                self.fleet.fail_instance(instance.instance_id, now)
                self.events.append(FaultEvent(time=now, instance_id=instance.instance_id))
                if self.bus is not None:
                    self.bus.publish(
                        now, "analytics", "fault.inject",
                        {"instance": instance.instance_id, "mode": "random"},
                    )

"""Alert rules over consolidated snapshots.

Complements the CloudWatch-level alarms: these rules run on the
collector's cross-platform snapshots, so one rule can watch any layer's
measure and the operator sees all firings in one stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import MonitoringError
from repro.monitoring.collector import FlowSnapshot
from repro.observability.events import EventBus

_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


@dataclass(frozen=True)
class AlertRule:
    """Fire when a snapshot measure crosses a threshold."""

    label: str
    comparison: str
    threshold: float
    message: str = ""

    def __post_init__(self) -> None:
        if self.comparison not in _COMPARATORS:
            raise MonitoringError(
                f"comparison must be one of {sorted(_COMPARATORS)}, got {self.comparison!r}"
            )

    def breached(self, snapshot: FlowSnapshot) -> bool:
        return _COMPARATORS[self.comparison](snapshot[self.label], self.threshold)

    def describe(self) -> str:
        return self.message or f"{self.label} {self.comparison} {self.threshold:g}"


@dataclass(frozen=True)
class Alert:
    """One firing of a rule."""

    time: int
    rule: AlertRule
    value: float

    def __str__(self) -> str:
        return f"[t={self.time}s] {self.rule.describe()} (value={self.value:g})"


@dataclass
class AlertManager:
    """Evaluates a rule set against each snapshot; keeps firing history."""

    rules: list[AlertRule] = field(default_factory=list)
    history: list[Alert] = field(default_factory=list)
    #: Optional flight-recorder bus; firings publish ``slo.breach``.
    bus: EventBus | None = None

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    def check(self, snapshot: FlowSnapshot) -> list[Alert]:
        """Evaluate all rules; return (and record) this snapshot's firings."""
        fired = [
            Alert(time=snapshot.time, rule=rule, value=snapshot[rule.label])
            for rule in self.rules
            if rule.breached(snapshot)
        ]
        self.history.extend(fired)
        if self.bus is not None:
            for alert in fired:
                label = alert.rule.label
                layer = label.split(".", 1)[0] if "." in label else "flow"
                self.bus.publish(
                    alert.time, layer, "slo.breach",
                    {
                        "label": label,
                        "value": alert.value,
                        "threshold": alert.rule.threshold,
                        "comparison": alert.rule.comparison,
                    },
                )
        return fired

    def firings_for(self, label: str) -> list[Alert]:
        return [alert for alert in self.history if alert.rule.label == label]

"""The all-in-one-place visualizer, rendered as text.

The demo's web dashboard (Figs. 5–6) becomes a terminal dashboard with
the same information content: one panel per measure across every layer,
with a sparkline of recent history, the current value and min/max. It
renders from a :class:`~repro.monitoring.collector.MetricCollector`, so
whatever the collector consolidates, the dashboard shows in one place.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import MonitoringError
from repro.monitoring.collector import MetricCollector

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Unicode sparkline of a series, downsampled to ``width`` cells."""
    if width <= 0:
        raise MonitoringError(f"width must be positive, got {width}")
    if not values:
        return " " * width
    values = list(values)
    if len(values) > width:
        # Bucket-mean downsampling keeps shape without aliasing spikes
        # away. Integer bucket bounds i*n//width partition the series
        # exactly: every sample lands in exactly one bucket (float
        # bucket arithmetic here used to drop trailing samples, e.g.
        # the last of 15 samples at width 11) and the divisor is the
        # true bucket size.
        n = len(values)
        values = [
            sum(values[i * n // width: (i + 1) * n // width])
            / ((i + 1) * n // width - i * n // width)
            for i in range(width)
        ]
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return _BLOCKS[1] * len(values)
    cells = [_BLOCKS[1 + int((v - low) / span * (len(_BLOCKS) - 2))] for v in values]
    return "".join(cells)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain monospace table with right-padded columns."""
    if not headers:
        raise MonitoringError("headers must be non-empty")
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise MonitoringError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_events(events, limit: int = 10) -> str:
    """Render the tail of a flight-recorder event stream as text."""
    if limit <= 0:
        raise MonitoringError(f"limit must be positive, got {limit}")
    tail = list(events)[-limit:]
    if not tail:
        return "(no events recorded)"
    return "\n".join(event.describe() for event in tail)


class Dashboard:
    """Consolidated live view over a metric collector.

    With a flight ``recorder`` attached, the render also includes the
    most recent bus events and the per-loop decision audit summary —
    the demo's "why did it scale?" panel.
    """

    def __init__(
        self,
        collector: MetricCollector,
        title: str = "Flower — all-in-one-place",
        recorder=None,
        telemetry=None,
    ) -> None:
        self._collector = collector
        self.title = title
        self._recorder = recorder
        self._telemetry = telemetry

    def render(self, spark_width: int = 32, history: int = 60) -> str:
        """One panel per measure: sparkline, last, mean, min, max.

        ``history`` caps how many trailing snapshots feed the sparkline.
        """
        snapshots = self._collector.snapshots
        if not snapshots:
            raise MonitoringError("no snapshots collected yet")
        rows: list[list[str]] = []
        for label in self._collector.labels:
            series = [s.values[label] for s in snapshots][-history:]
            rows.append(
                [
                    label,
                    sparkline(series, spark_width),
                    f"{series[-1]:,.1f}",
                    f"{sum(series) / len(series):,.1f}",
                    f"{min(series):,.1f}",
                    f"{max(series):,.1f}",
                ]
            )
        now = snapshots[-1].time
        header = f"{self.title}   (t={now}s, {len(snapshots)} snapshots)"
        table = render_table(["measure", "history", "last", "mean", "min", "max"], rows)
        sections = [f"{header}\n{'=' * len(header)}\n{table}"]
        if self._recorder is not None:
            sections.append(
                "recent events\n-------------\n"
                + render_events(self._recorder.bus.events, limit=10)
            )
            decision_rows = self._recorder.decisions.summary_rows()
            if decision_rows:
                sections.append(
                    "control decisions\n-----------------\n"
                    + render_table(
                        ["loop", "invocations", "acted", "clamped", "last gain"],
                        decision_rows,
                    )
                )
        if self._telemetry is not None:
            telemetry_rows = self._telemetry.rows()
            if telemetry_rows:
                sections.append(
                    "telemetry (actuations, retries, breaker state, "
                    "staleness)\n"
                    "----------------------------------------------------------\n"
                    + render_table(["metric", "value", "kind"], telemetry_rows)
                )
        return "\n\n".join(sections)

"""Exporters: snapshots and traces to CSV / JSON.

Lets operators feed Flower's consolidated monitoring data into external
tooling (spreadsheets, notebooks, Grafana imports).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from repro.core.errors import MonitoringError
from repro.monitoring.collector import FlowSnapshot
from repro.workload.traces import Trace


def _union_labels(snapshots: Sequence[FlowSnapshot]) -> list[str]:
    """Sorted union of measure labels across all snapshots.

    Collectors can gain measures mid-run (a loop registered late, a
    recorder attached partway), so no single snapshot is authoritative.
    """
    labels: set[str] = set()
    for snapshot in snapshots:
        labels.update(snapshot.values)
    return sorted(labels)


def snapshots_to_csv(snapshots: Sequence[FlowSnapshot], path: str | Path) -> None:
    """Write snapshots as one row per time, one column per measure.

    Columns are the union of labels across all snapshots; a snapshot
    missing a measure gets an empty cell for it.
    """
    if not snapshots:
        raise MonitoringError("nothing to export: no snapshots")
    labels = _union_labels(snapshots)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["time", *labels])
        for snapshot in snapshots:
            writer.writerow(
                [snapshot.time, *(snapshot.values.get(label, "") for label in labels)]
            )


def snapshots_to_json(snapshots: Sequence[FlowSnapshot], path: str | Path) -> None:
    """Write snapshots as a JSON list of {time, values} objects.

    Every object carries the union of labels across all snapshots, with
    ``null`` for measures a snapshot is missing — so consumers can rely
    on a uniform schema.
    """
    if not snapshots:
        raise MonitoringError("nothing to export: no snapshots")
    labels = _union_labels(snapshots)
    payload = [
        {"time": s.time, "values": {label: s.values.get(label) for label in labels}}
        for s in snapshots
    ]
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)


def traces_to_csv(traces: Sequence[Trace], path: str | Path) -> None:
    """Write several traces in long format: trace, time, value."""
    if not traces:
        raise MonitoringError("nothing to export: no traces")
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["trace", "time", "value"])
        for trace in traces:
            for t, v in trace:
                writer.writerow([trace.name, t, v])

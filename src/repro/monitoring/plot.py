"""Terminal time-series charts.

Renders traces as ASCII charts — the reproduction's stand-in for the
paper's figures (Fig. 2's stacked workload panels, Fig. 6's live
capacity/utilisation views). Benchmarks embed these charts in their
``results/`` reports so the figure *shapes* are reviewable as text.
"""

from __future__ import annotations

from repro.core.errors import MonitoringError
from repro.workload.traces import Trace

_DOT = "·"
_MARK = "█"


def line_chart(
    values: list[float],
    width: int = 64,
    height: int = 10,
) -> list[str]:
    """Render a series as rows of a braille-free ASCII chart.

    Returns ``height`` rows, top first. Values are bucket-averaged to
    ``width`` columns and each column paints one mark at its scaled
    level (a scatter-style line chart).
    """
    if width <= 0 or height <= 1:
        raise MonitoringError("need width >= 1 and height >= 2")
    if not values:
        raise MonitoringError("cannot chart an empty series")
    if len(values) > width:
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, int((i + 1) * bucket) - int(i * bucket))
            for i in range(width)
        ]
    low, high = min(values), max(values)
    span = high - low
    grid = [[" "] * len(values) for _ in range(height)]
    for column, value in enumerate(values):
        level = 0 if span == 0 else int((value - low) / span * (height - 1))
        row = height - 1 - level
        grid[row][column] = _MARK
        for below in range(row + 1, height):
            if grid[below][column] == " ":
                grid[below][column] = _DOT
    return ["".join(row) for row in grid]


def time_series_chart(
    trace: Trace,
    width: int = 64,
    height: int = 10,
    title: str | None = None,
    unit: str = "",
) -> str:
    """A framed chart with y-axis extents and time extents, like a
    minimal matplotlib panel.

    ::

        CPU (%)                                     max 30.1
        █        ██  ...
        ...
        min 4.6                          t=0 .. 33000s
    """
    if len(trace) == 0:
        raise MonitoringError(f"trace {trace.name!r} is empty")
    rows = line_chart(trace.values, width=width, height=height)
    head = title if title is not None else trace.name
    top = f"{head}  (max {trace.maximum():,.4g}{unit})"
    bottom = (
        f"min {trace.minimum():,.4g}{unit}"
        f"   t = {trace.times[0]}s .. {trace.times[-1]}s   n={len(trace)}"
    )
    return "\n".join([top, *rows, bottom])


def stacked_panels(
    traces: list[Trace],
    width: int = 64,
    height: int = 8,
    titles: list[str] | None = None,
) -> str:
    """Several charts stacked vertically — the Fig. 2 layout (ingestion
    arrival rate over analytics CPU, same time axis)."""
    if not traces:
        raise MonitoringError("need at least one trace")
    if titles is not None and len(titles) != len(traces):
        raise MonitoringError(
            f"got {len(titles)} titles for {len(traces)} traces"
        )
    panels = []
    for index, trace in enumerate(traces):
        title = titles[index] if titles else None
        panels.append(time_series_chart(trace, width=width, height=height, title=title))
    return "\n\n".join(panels)

"""Cross-platform metric collection.

"The module calls the APIs of the systems, such as CloudWatch and
Storm, and consolidates diverse performance measures in an integrated
user interface" (Sec. 3.4). The :class:`MetricCollector` is the data
half of that: a set of labelled metric specs spanning any number of
namespaces, sampled together into :class:`FlowSnapshot` rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.cloudwatch import SimCloudWatch, validate_statistic
from repro.core.errors import MonitoringError
from repro.workload.traces import Trace


@dataclass(frozen=True)
class MetricSpec:
    """One consolidated measure: where it lives and how to aggregate it."""

    label: str
    namespace: str
    metric: str
    statistic: str = "Average"
    dimensions: dict[str, str] | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise MonitoringError("metric label must be non-empty")
        validate_statistic(self.statistic)


@dataclass(frozen=True)
class FlowSnapshot:
    """All configured measures sampled over one window."""

    time: int
    values: dict[str, float]

    def __getitem__(self, label: str) -> float:
        try:
            return self.values[label]
        except KeyError:
            known = ", ".join(sorted(self.values)) or "<none>"
            raise MonitoringError(f"no measure {label!r} in snapshot; have: {known}") from None


class MetricCollector:
    """Samples a set of metric specs into a growing snapshot history."""

    def __init__(self, cloudwatch: SimCloudWatch, window: int = 60) -> None:
        if window <= 0:
            raise MonitoringError(f"window must be positive, got {window}")
        self._cloudwatch = cloudwatch
        self.window = window
        self._specs: list[MetricSpec] = []
        self._snapshots: list[FlowSnapshot] = []

    def add(self, spec: MetricSpec) -> None:
        """Register a measure; duplicate labels are rejected."""
        if any(existing.label == spec.label for existing in self._specs):
            raise MonitoringError(f"duplicate metric label {spec.label!r}")
        self._specs.append(spec)

    def add_metric(
        self,
        label: str,
        namespace: str,
        metric: str,
        statistic: str = "Average",
        dimensions: dict[str, str] | None = None,
    ) -> None:
        """Convenience wrapper around :meth:`add`."""
        self.add(MetricSpec(label, namespace, metric, statistic, dimensions))

    @property
    def labels(self) -> list[str]:
        return [spec.label for spec in self._specs]

    def collect(self, now: int) -> FlowSnapshot:
        """Sample every spec over the trailing window; missing data is 0.

        (A metric with no datapoints yet — e.g. before the first tick —
        reads as zero rather than failing the whole snapshot, matching
        how monitoring dashboards behave on cold start.)

        Each read is O(log n + window) against the store, and specs that
        share a (series, window, statistic) with a sensor or alarm — the
        usual case, since dashboards watch the controlled variables —
        reuse that aggregation via the store's per-version read memo
        instead of re-scanning.
        """
        if not self._specs:
            raise MonitoringError("no metrics registered; call add() first")
        values = {
            spec.label: self._cloudwatch.get_metric_value(
                spec.namespace,
                spec.metric,
                now=now,
                window=self.window,
                statistic=spec.statistic,
                dimensions=spec.dimensions,
                default=0.0,
            )
            for spec in self._specs
        }
        snapshot = FlowSnapshot(time=now, values=values)
        self._snapshots.append(snapshot)
        return snapshot

    @property
    def snapshots(self) -> list[FlowSnapshot]:
        return list(self._snapshots)

    def series(self, label: str) -> Trace:
        """The history of one measure as a trace."""
        if label not in self.labels:
            raise MonitoringError(f"unknown measure {label!r}; have: {self.labels}")
        trace = Trace(label)
        for snapshot in self._snapshots:
            trace.append(snapshot.time, snapshot.values[label])
        return trace

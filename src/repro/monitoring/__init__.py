"""Cross-platform monitoring (paper Sec. 3.4).

The "all-in-one-place visualizer": one collector pulls performance
measures from every layer's metric namespace into unified snapshots,
alert rules watch them, and a text dashboard renders the consolidated
view the demo shows in Fig. 6 — per-layer capacity, utilisation and
health side by side, instead of one UI per system.
"""

from repro.monitoring.alerts import Alert, AlertManager, AlertRule
from repro.monitoring.collector import FlowSnapshot, MetricCollector, MetricSpec
from repro.monitoring.dashboard import Dashboard, render_table, sparkline
from repro.monitoring.export import snapshots_to_csv, snapshots_to_json, traces_to_csv
from repro.monitoring.plot import line_chart, stacked_panels, time_series_chart

__all__ = [
    "MetricCollector",
    "MetricSpec",
    "FlowSnapshot",
    "AlertRule",
    "AlertManager",
    "Alert",
    "Dashboard",
    "sparkline",
    "render_table",
    "snapshots_to_csv",
    "snapshots_to_json",
    "traces_to_csv",
    "line_chart",
    "time_series_chart",
    "stacked_panels",
]

"""Flower: a data analytics flow elasticity manager.

A faithful reproduction of *Flower* (Khoshkbarforoushha, Ranjan, Wang,
Friedrich — PVLDB 10(12), 2017): holistic elasticity management for
three-layer data analytics flows (ingestion → analytics → storage),
with workload dependency analysis (linear regression), resource share
analysis (NSGA-II under budget + dependency constraints), adaptive
provisioning controllers with gain memory, and cross-platform
monitoring — all running on a deterministic simulation of the cloud
services the paper's demo used (Kinesis, Storm-on-EC2, DynamoDB,
CloudWatch).

Quickstart::

    from repro import FlowBuilder, LayerKind
    from repro.workload import DiurnalRate

    manager = (
        FlowBuilder("click-stream", seed=7)
        .workload(DiurnalRate(mean=800, amplitude=500))
        .control_all(style="adaptive", reference=60.0)
        .build()
    )
    result = manager.run(6 * 3600)
    print(result.dashboard())
"""

from repro.core import (
    DEFAULT_REFERENCE,
    FleetFlowSpec,
    FleetRunResult,
    FleetScenarioSpec,
    FlowBuilder,
    FlowElasticityManager,
    FlowRunResult,
    FlowSpec,
    FlowerError,
    LayerControlConfig,
    LayerKind,
    LayerSpec,
    RegionFleetManager,
    ServiceCapacities,
    clickstream_flow_spec,
    make_controller,
    run_fleet_scenario,
    sweep_fleet_scenarios,
)
from repro.observability import FlightRecorder

# Imported after repro.core: the chaos package reaches into the cloud
# services, whose modules import repro.core.errors — importing chaos
# first would re-enter a partially initialized repro.cloud.
from repro.chaos import ChaosSchedule, FaultKind, FaultSpec

__version__ = "1.0.0"

__all__ = [
    "FlowBuilder",
    "FlowElasticityManager",
    "FlowRunResult",
    "ServiceCapacities",
    "FleetFlowSpec",
    "RegionFleetManager",
    "FleetRunResult",
    "FleetScenarioSpec",
    "run_fleet_scenario",
    "sweep_fleet_scenarios",
    "LayerControlConfig",
    "make_controller",
    "DEFAULT_REFERENCE",
    "FlowSpec",
    "LayerSpec",
    "LayerKind",
    "clickstream_flow_spec",
    "FlightRecorder",
    "FlowerError",
    "ChaosSchedule",
    "FaultKind",
    "FaultSpec",
    "__version__",
]

"""Self-contained special functions for regression inference.

Implements the regularized incomplete beta function (via the standard
Lentz continued-fraction expansion) and the Student-t survival
function built on it, so the library's p-values do not depend on
scipy. The test suite cross-checks these against scipy where it is
available.
"""

from __future__ import annotations

import math

from repro.core.errors import RegressionError

_MAX_ITERATIONS = 300
_EPSILON = 1e-15
_TINY = 1e-300


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Numerical Recipes betacf)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _TINY:
        d = _TINY
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITERATIONS + 1):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + numerator / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + numerator / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            return h
    raise RegressionError(f"incomplete beta failed to converge for a={a}, b={b}, x={x}")


def betainc_regularized(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if a <= 0 or b <= 0:
        raise RegressionError(f"betainc parameters must be positive, got a={a}, b={b}")
    if not 0.0 <= x <= 1.0:
        raise RegressionError(f"betainc argument must be in [0, 1], got x={x}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    log_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(log_front)
    # Use the continued fraction directly where it converges fast,
    # otherwise use the symmetry relation.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """Survival function P(T > t) of a Student-t with ``df`` degrees of freedom."""
    if df <= 0:
        raise RegressionError(f"degrees of freedom must be positive, got {df}")
    if math.isnan(t):
        raise RegressionError("t statistic is NaN")
    x = df / (df + t * t)
    tail = 0.5 * betainc_regularized(df / 2.0, 0.5, x)
    return tail if t >= 0 else 1.0 - tail


def student_t_two_sided_p(t: float, df: float) -> float:
    """Two-sided p-value for a t statistic."""
    return min(1.0, 2.0 * student_t_sf(abs(t), df))


def student_t_ppf(p: float, df: float) -> float:
    """Inverse CDF of Student-t via bisection on the survival function.

    Accurate to ~1e-10; only used for confidence intervals, where a few
    dozen bisection steps per call are negligible.
    """
    if not 0.0 < p < 1.0:
        raise RegressionError(f"ppf argument must be in (0, 1), got {p}")
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -student_t_ppf(1.0 - p, df)
    lo, hi = 0.0, 1.0
    while 1.0 - student_t_sf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:
            raise RegressionError(f"t ppf out of range for p={p}, df={df}")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if 1.0 - student_t_sf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)

"""Ordinary least-squares regression (paper Eq. 1).

Flower models the dependency between a resource of layer L1 and a
resource of layer L2 as ``r(L1) = beta0 + beta1 * r(L2) + eps``. This
module fits that model with full inference output — Pearson r, R²,
standard errors, t statistics, p-values and confidence intervals — so
the analyzer can decide which layer pairs are *significantly*
dependent (the paper notes some pairs, like Kinesis and DynamoDB write
volumes, show no correlation at all).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import RegressionError
from repro.dependency.special import student_t_ppf, student_t_two_sided_p


def _as_clean_array(values: Sequence[float], name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise RegressionError(f"{name} must be one-dimensional, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise RegressionError(f"{name} contains NaN or infinite values")
    return array


def pearson_r(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples."""
    xa = _as_clean_array(x, "x")
    ya = _as_clean_array(y, "y")
    if len(xa) != len(ya):
        raise RegressionError(f"length mismatch: {len(xa)} vs {len(ya)}")
    if len(xa) < 2:
        raise RegressionError("need at least 2 points for correlation")
    xd = xa - xa.mean()
    yd = ya - ya.mean()
    denom = math.sqrt(float(xd @ xd) * float(yd @ yd))
    if denom == 0.0:
        raise RegressionError("correlation undefined: a sample has zero variance")
    return float(xd @ yd) / denom


@dataclass(frozen=True)
class RegressionResult:
    """A fitted simple linear model ``y = intercept + slope * x``."""

    slope: float
    intercept: float
    r: float
    r_squared: float
    n: int
    stderr_slope: float
    stderr_intercept: float
    t_slope: float
    p_value: float
    residual_std: float

    def predict(self, x: float) -> float:
        """Point prediction at ``x``."""
        return self.intercept + self.slope * x

    #: Sample moments kept for interval prediction (set by fit_linear).
    x_mean: float = 0.0
    sxx: float = 0.0

    def slope_confidence_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Two-sided confidence interval for the slope."""
        if not 0.0 < confidence < 1.0:
            raise RegressionError(f"confidence must be in (0, 1), got {confidence}")
        df = self.n - 2
        critical = student_t_ppf(0.5 + confidence / 2.0, df)
        half_width = critical * self.stderr_slope
        return self.slope - half_width, self.slope + half_width

    def prediction_interval(self, x: float, confidence: float = 0.95) -> tuple[float, float]:
        """Interval containing a *new observation* at ``x``.

        The standard OLS prediction interval: the fit's uncertainty plus
        one residual's worth of noise. This is what an operator should
        use to size capacity from a dependency model — Eq. 2's point
        prediction alone understates the CPU a new minute may need.
        """
        if not 0.0 < confidence < 1.0:
            raise RegressionError(f"confidence must be in (0, 1), got {confidence}")
        if self.sxx <= 0:
            raise RegressionError("prediction intervals need the fit's sample moments")
        df = self.n - 2
        critical = student_t_ppf(0.5 + confidence / 2.0, df)
        spread = self.residual_std * math.sqrt(
            1.0 + 1.0 / self.n + (x - self.x_mean) ** 2 / self.sxx
        )
        center = self.predict(x)
        return center - critical * spread, center + critical * spread

    def mean_confidence_interval(self, x: float, confidence: float = 0.95) -> tuple[float, float]:
        """Interval for the *mean response* at ``x`` (no new-observation noise)."""
        if not 0.0 < confidence < 1.0:
            raise RegressionError(f"confidence must be in (0, 1), got {confidence}")
        if self.sxx <= 0:
            raise RegressionError("confidence intervals need the fit's sample moments")
        df = self.n - 2
        critical = student_t_ppf(0.5 + confidence / 2.0, df)
        spread = self.residual_std * math.sqrt(1.0 / self.n + (x - self.x_mean) ** 2 / self.sxx)
        center = self.predict(x)
        return center - critical * spread, center + critical * spread

    def equation(self, y_name: str = "y", x_name: str = "x", digits: int = 4) -> str:
        """Human-readable model, e.g. ``CPU ~ 0.0002*WriteCapacity + 4.8``."""
        return f"{y_name} ~ {self.slope:.{digits}g}*{x_name} + {self.intercept:.{digits}g}"


def fit_linear(x: Sequence[float], y: Sequence[float]) -> RegressionResult:
    """Fit ``y = beta0 + beta1 * x`` by ordinary least squares.

    Raises :class:`~repro.core.errors.RegressionError` for degenerate
    inputs (fewer than 3 points, zero variance in ``x``).
    """
    xa = _as_clean_array(x, "x")
    ya = _as_clean_array(y, "y")
    if len(xa) != len(ya):
        raise RegressionError(f"length mismatch: {len(xa)} vs {len(ya)}")
    n = len(xa)
    if n < 3:
        raise RegressionError(f"need at least 3 points to fit with inference, got {n}")
    x_mean = float(xa.mean())
    y_mean = float(ya.mean())
    xd = xa - x_mean
    yd = ya - y_mean
    sxx = float(xd @ xd)
    if sxx == 0.0:
        raise RegressionError("x has zero variance; slope is undefined")
    sxy = float(xd @ yd)
    syy = float(yd @ yd)

    slope = sxy / sxx
    intercept = y_mean - slope * x_mean

    residuals = ya - (intercept + slope * xa)
    ss_res = float(residuals @ residuals)
    df = n - 2
    residual_variance = ss_res / df
    residual_std = math.sqrt(residual_variance)

    r_squared = 1.0 - ss_res / syy if syy > 0 else 1.0
    if syy > 0:
        r = math.copysign(math.sqrt(max(0.0, min(1.0, r_squared))), slope)
    else:
        r = 0.0

    stderr_slope = math.sqrt(residual_variance / sxx)
    stderr_intercept = math.sqrt(residual_variance * (1.0 / n + x_mean * x_mean / sxx))
    if stderr_slope > 0:
        t_slope = slope / stderr_slope
        p_value = student_t_two_sided_p(t_slope, df)
    else:
        t_slope = math.inf if slope != 0 else 0.0
        p_value = 0.0 if slope != 0 else 1.0

    return RegressionResult(
        slope=slope,
        intercept=intercept,
        r=r,
        r_squared=r_squared,
        n=n,
        stderr_slope=stderr_slope,
        stderr_intercept=stderr_intercept,
        t_slope=t_slope,
        p_value=p_value,
        residual_std=residual_std,
        x_mean=x_mean,
        sxx=sxx,
    )


@dataclass(frozen=True)
class MultipleRegressionResult:
    """A fitted multiple linear model ``y = b0 + b1*x1 + ... + bk*xk``."""

    coefficients: tuple[float, ...]
    intercept: float
    r_squared: float
    adjusted_r_squared: float
    n: int
    residual_std: float

    def predict(self, x: Sequence[float]) -> float:
        if len(x) != len(self.coefficients):
            raise RegressionError(
                f"expected {len(self.coefficients)} features, got {len(x)}"
            )
        return self.intercept + float(np.dot(self.coefficients, np.asarray(x, dtype=float)))


def fit_multiple(features: Sequence[Sequence[float]], y: Sequence[float]) -> MultipleRegressionResult:
    """Fit a multiple linear regression with an intercept.

    ``features`` is row-major: one row per observation. Uses the
    pseudo-inverse (via least squares) so collinear features degrade
    gracefully instead of crashing.
    """
    X = np.asarray(features, dtype=float)
    ya = _as_clean_array(y, "y")
    if X.ndim != 2:
        raise RegressionError(f"features must be 2-D (rows=observations), got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise RegressionError("features contain NaN or infinite values")
    n, k = X.shape
    if n != len(ya):
        raise RegressionError(f"row count {n} does not match len(y)={len(ya)}")
    if n < k + 2:
        raise RegressionError(f"need at least {k + 2} observations for {k} features, got {n}")
    design = np.column_stack([np.ones(n), X])
    solution, _residual, _rank, _sv = np.linalg.lstsq(design, ya, rcond=None)
    predictions = design @ solution
    residuals = ya - predictions
    ss_res = float(residuals @ residuals)
    ss_tot = float(((ya - ya.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    df = n - k - 1
    adjusted = 1.0 - (1.0 - r_squared) * (n - 1) / df if df > 0 else r_squared
    return MultipleRegressionResult(
        coefficients=tuple(float(c) for c in solution[1:]),
        intercept=float(solution[0]),
        r_squared=r_squared,
        adjusted_r_squared=adjusted,
        n=n,
        residual_std=math.sqrt(ss_res / df) if df > 0 else 0.0,
    )

"""The workload dependency analyzer (paper Sec. 3.1).

Feeds workload logs — metric traces per layer — through pairwise linear
regression to discover which layers' resource usages move together.
Significant dependencies become constraints for the resource share
analyzer (Eq. 5) and sanity context for operators ("how much CPU do we
need to support the maximum write capacity of a Shard?").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import RegressionError
from repro.core.flow import LayerKind
from repro.dependency.lag import CrossCorrelation, cross_correlation
from repro.dependency.regression import RegressionResult, fit_linear
from repro.workload.traces import Trace


@dataclass(frozen=True)
class MetricRef:
    """Identifies a workload measure: which layer, which metric."""

    layer: LayerKind
    metric: str

    def __str__(self) -> str:
        return f"{self.layer.name.lower()}.{self.metric}"


@dataclass(frozen=True)
class DependencyModel:
    """A fitted Eq. 1 dependency: ``target = b0 + b1 * source + eps``."""

    source: MetricRef
    target: MetricRef
    result: RegressionResult

    def predict(self, source_value: float) -> float:
        """Predict the target measure from a source measure value."""
        return self.result.predict(source_value)

    def predict_interval(
        self, source_value: float, confidence: float = 0.95
    ) -> tuple[float, float]:
        """Prediction interval for a new observation at ``source_value``.

        What capacity planning should use: e.g. "how much CPU might the
        analytics layer need to support a full shard?" wants the upper
        end of this interval, not the Eq. 2 point estimate.
        """
        return self.result.prediction_interval(source_value, confidence)

    def is_significant(self, min_abs_r: float = 0.7, alpha: float = 0.01) -> bool:
        """Strong and statistically significant dependency?"""
        return abs(self.result.r) >= min_abs_r and self.result.p_value <= alpha

    def equation(self, digits: int = 4) -> str:
        return self.result.equation(self.target.metric, self.source.metric, digits)

    def __str__(self) -> str:
        return (
            f"{self.target} ~ {self.result.slope:.4g}*{self.source} + "
            f"{self.result.intercept:.4g}  (r={self.result.r:.3f}, "
            f"p={self.result.p_value:.2g}, n={self.result.n})"
        )


def _align_columns(a: Trace, b: Trace) -> tuple[list[float], list[float]]:
    """Pair up values of two traces on their common timestamps.

    Returns the aligned columns however few common timestamps there
    are; callers enforce the >= 3 minimum.
    """
    b_by_time = dict(zip(b.times, b.values))
    xs: list[float] = []
    ys: list[float] = []
    for t, v in a:
        if t in b_by_time:
            xs.append(v)
            ys.append(b_by_time[t])
    return xs, ys


def _too_few(a_name: str, b_name: str, common: int) -> RegressionError:
    return RegressionError(
        f"traces {a_name!r} and {b_name!r} share only {common} "
        "timestamps; need >= 3 (resample them to a common period first)"
    )


def _align(a: Trace, b: Trace) -> tuple[list[float], list[float]]:
    """Pair up values of two traces on their common timestamps."""
    xs, ys = _align_columns(a, b)
    if len(xs) < 3:
        raise _too_few(a.name, b.name, len(xs))
    return xs, ys


class WorkloadDependencyAnalyzer:
    """Scans every cross-layer metric pair for linear dependencies.

    Usage::

        analyzer = WorkloadDependencyAnalyzer()
        analyzer.add_series(LayerKind.INGESTION, "IncomingRecords", trace_in)
        analyzer.add_series(LayerKind.ANALYTICS, "CPUUtilization", trace_cpu)
        models = analyzer.analyze()          # significant pairs only
        model = analyzer.dependency_between(src_ref, dst_ref)  # one pair
    """

    def __init__(self, min_abs_r: float = 0.7, alpha: float = 0.01) -> None:
        if not 0.0 <= min_abs_r <= 1.0:
            raise RegressionError(f"min_abs_r must be in [0, 1], got {min_abs_r}")
        if not 0.0 < alpha < 1.0:
            raise RegressionError(f"alpha must be in (0, 1), got {alpha}")
        self.min_abs_r = min_abs_r
        self.alpha = alpha
        self._series: dict[MetricRef, Trace] = {}
        # Aligned columns per ordered (source, target) pair, shared by
        # fit_pair/correlation/analyze/correlation_matrix so each
        # unordered pair is aligned once, not once per direction per
        # caller. A successful entry holds the (xs, ys) columns; a
        # failed one holds the common-timestamp count (int) so the
        # per-ordering error message can be reconstructed.
        self._align_cache: dict[
            tuple[MetricRef, MetricRef], tuple[list[float], list[float]] | int
        ] = {}

    def add_series(self, layer: LayerKind, metric: str, trace: Trace) -> MetricRef:
        """Register a workload-log series for one layer metric."""
        if len(trace) < 3:
            raise RegressionError(f"series {layer.name}/{metric} has fewer than 3 points")
        ref = MetricRef(layer, metric)
        self._series[ref] = trace
        # The new (or replaced) trace invalidates any alignment that
        # involved this ref; dropping the whole memo is cheap and safe.
        self._align_cache.clear()
        return ref

    @property
    def series(self) -> dict[MetricRef, Trace]:
        return dict(self._series)

    def fit_multi(self, sources: list[MetricRef], target: MetricRef):
        """Fit the target on several source measures at once.

        Generalizes Eq. 1 to multiple explanatory measures — e.g. CPU
        explained jointly by record rate *and* payload bytes. Returns a
        :class:`~repro.dependency.regression.MultipleRegressionResult`.
        Series are aligned on timestamps common to the target and every
        source.
        """
        from repro.dependency.regression import fit_multiple

        if not sources:
            raise RegressionError("need at least one source measure")
        if target in sources:
            raise RegressionError("target must not be one of the sources")
        target_trace = self._trace(target)
        source_maps = [dict(zip(t.times, t.values)) for t in map(self._trace, sources)]
        rows: list[list[float]] = []
        ys: list[float] = []
        for t, y in target_trace:
            if all(t in m for m in source_maps):
                rows.append([m[t] for m in source_maps])
                ys.append(y)
        if len(rows) < len(sources) + 2:
            raise RegressionError(
                f"only {len(rows)} aligned observations for {len(sources)} sources"
            )
        return fit_multiple(rows, ys)

    def fit_pair(self, source: MetricRef, target: MetricRef) -> DependencyModel:
        """Fit Eq. 1 for one ordered (source -> target) pair."""
        if source == target:
            raise RegressionError("source and target must differ")
        xs, ys = self._aligned(source, target)
        return DependencyModel(source=source, target=target, result=fit_linear(xs, ys))

    def correlation(self, source: MetricRef, target: MetricRef, max_lag: int = 0) -> CrossCorrelation:
        """Lagged cross-correlation between two registered series."""
        xs, ys = self._aligned(source, target)
        return cross_correlation(xs, ys, max_lag)

    def analyze(self, cross_layer_only: bool = True) -> list[DependencyModel]:
        """Fit all ordered pairs; return the significant ones, strongest first.

        With ``cross_layer_only`` (the default, matching Eq. 1's
        ``L1 != L2`` requirement) same-layer pairs are skipped.
        """
        models: list[DependencyModel] = []
        refs = list(self._series)
        for source in refs:
            for target in refs:
                if source == target:
                    continue
                if cross_layer_only and source.layer == target.layer:
                    continue
                model = self.fit_pair(source, target)
                if model.is_significant(self.min_abs_r, self.alpha):
                    models.append(model)
        models.sort(key=lambda m: abs(m.result.r), reverse=True)
        return models

    def dependency_between(self, source: MetricRef, target: MetricRef) -> DependencyModel | None:
        """The fitted pair if significant, else None (paper: "not all the
        layers are dependent on each other")."""
        model = self.fit_pair(source, target)
        return model if model.is_significant(self.min_abs_r, self.alpha) else None

    def correlation_matrix(self) -> str:
        """Render all pairwise correlations as a table.

        The operator-facing companion of :meth:`analyze`: every
        registered measure against every other (same-layer pairs
        included), with the Pearson coefficient, so "no correlation"
        findings (like the paper's Kinesis↔DynamoDB observation) are
        visible rather than silently filtered.
        """
        refs = list(self._series)
        if len(refs) < 2:
            raise RegressionError("need at least two series for a correlation matrix")
        width = max(len(str(r)) for r in refs)
        header = " " * (width + 2) + "  ".join(f"{str(r):>{width}}" for r in refs)
        lines = [header]
        for row_ref in refs:
            cells = []
            for col_ref in refs:
                if row_ref == col_ref:
                    cells.append(f"{'1.000':>{width}}")
                    continue
                try:
                    xs, ys = self._aligned(row_ref, col_ref)
                    from repro.dependency.regression import pearson_r

                    cells.append(f"{pearson_r(xs, ys):>+{width}.3f}")
                except RegressionError:
                    cells.append(f"{'n/a':>{width}}")
            lines.append(f"{str(row_ref):<{width}}  " + "  ".join(cells))
        return "\n".join(lines)

    def _aligned(self, source: MetricRef, target: MetricRef) -> tuple[list[float], list[float]]:
        """Cached aligned (source values, target values) columns.

        Each unordered pair is aligned at most once: trace timestamps
        are strictly increasing, so the common timestamps come out in
        the same (sorted) order whichever trace drives the scan, and
        the reversed ordering is exactly the cached columns swapped.
        """
        cache = self._align_cache
        entry = cache.get((source, target))
        if entry is None:
            reverse = cache.get((target, source))
            if reverse is not None:
                entry = reverse if isinstance(reverse, int) else (reverse[1], reverse[0])
            else:
                xs, ys = _align_columns(self._trace(source), self._trace(target))
                entry = (xs, ys) if len(xs) >= 3 else len(xs)
            cache[(source, target)] = entry
        if isinstance(entry, int):
            raise _too_few(self._trace(source).name, self._trace(target).name, entry)
        return entry

    def _trace(self, ref: MetricRef) -> Trace:
        try:
            return self._series[ref]
        except KeyError:
            known = ", ".join(str(r) for r in self._series) or "<none>"
            raise RegressionError(f"unknown series {ref}; registered: {known}") from None

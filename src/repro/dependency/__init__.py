"""Workload dependency analysis (paper Sec. 3.1).

Flower "applies statistical regression models to workload logs to
quantitatively explain relationships between resource amounts in
different layers" (Eq. 1). This package implements ordinary
least-squares regression from first principles (including t-statistics
and p-values via a self-contained incomplete-beta implementation),
lagged cross-correlation, and an analyzer that scans every layer pair
for significant dependencies.
"""

from repro.dependency.analyzer import DependencyModel, WorkloadDependencyAnalyzer
from repro.dependency.lag import CrossCorrelation, cross_correlation
from repro.dependency.regression import (
    MultipleRegressionResult,
    RegressionResult,
    fit_linear,
    fit_multiple,
    pearson_r,
)

__all__ = [
    "fit_linear",
    "fit_multiple",
    "pearson_r",
    "RegressionResult",
    "MultipleRegressionResult",
    "cross_correlation",
    "CrossCorrelation",
    "WorkloadDependencyAnalyzer",
    "DependencyModel",
]

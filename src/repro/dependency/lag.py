"""Lagged cross-correlation between workload series.

Layer workloads are causally coupled through queues, so the analytics
layer's load can *lag* the ingestion layer's by some number of samples
(stream backlog, monitoring delay). Scanning correlation across lags
finds both the dependency strength and the propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import RegressionError
from repro.dependency.regression import pearson_r


@dataclass(frozen=True)
class CrossCorrelation:
    """Correlation of ``y`` against ``x`` shifted by each lag.

    A positive lag means ``x`` *leads* ``y`` by that many samples:
    ``corr(x[:-lag], y[lag:])``.
    """

    lags: tuple[int, ...]
    correlations: tuple[float, ...]

    def best(self) -> tuple[int, float]:
        """The lag with the largest absolute correlation."""
        index = max(range(len(self.lags)), key=lambda i: abs(self.correlations[i]))
        return self.lags[index], self.correlations[index]

    def at(self, lag: int) -> float:
        try:
            return self.correlations[self.lags.index(lag)]
        except ValueError:
            raise RegressionError(f"lag {lag} not in computed range {self.lags[0]}..{self.lags[-1]}") from None


def cross_correlation(
    x: Sequence[float], y: Sequence[float], max_lag: int
) -> CrossCorrelation:
    """Pearson correlation of ``x`` and ``y`` at lags ``-max_lag..max_lag``.

    Requires at least three overlapping samples at the extreme lags.
    """
    if max_lag < 0:
        raise RegressionError(f"max_lag must be non-negative, got {max_lag}")
    if len(x) != len(y):
        raise RegressionError(f"length mismatch: {len(x)} vs {len(y)}")
    if len(x) - max_lag < 3:
        raise RegressionError(
            f"series of length {len(x)} too short for max_lag={max_lag} "
            "(need >= 3 overlapping samples)"
        )
    lags: list[int] = []
    correlations: list[float] = []
    for lag in range(-max_lag, max_lag + 1):
        if lag > 0:
            xs, ys = x[:-lag], y[lag:]
        elif lag < 0:
            xs, ys = x[-lag:], y[:lag]
        else:
            xs, ys = x, y
        lags.append(lag)
        correlations.append(pearson_r(xs, ys))
    return CrossCorrelation(tuple(lags), tuple(correlations))

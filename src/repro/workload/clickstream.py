"""Click-stream generator.

Stands in for the demo's "random multi-threaded click stream generator
deployed on several EC2 instances": a seeded source of click events
shaped by a :class:`~repro.workload.generators.RatePattern`.

Each tick yields a :class:`ClickBatch` with

* ``records`` — Poisson-sampled click events around the pattern rate;
* ``payload_bytes`` — total payload (per-record sizes are log-normal
  around a configurable mean, as real click events are);
* ``distinct_keys`` — the expected number of *distinct pages* hit, under
  a Zipf popularity law over the page catalogue.

The distinct-page count is what the analytics layer's windowed
aggregation turns into storage writes. Because distinct counts grow
only logarithmically with volume under Zipf, storage-layer writes stay
nearly flat while click volume swings — reproducing the paper's
observation (Sec. 3.1) that Kinesis write volume and DynamoDB write
capacity were *uncorrelated* for the click-stream flow.

Two implementations share this module:

* :class:`ClickStreamGenerator` — the bit-exact reference. Draws
  interleave per tick on one RNG stream; every batched execution path
  (span mode, the metric pipeline) is bit-identical to it.
* :class:`FastClickStreamGenerator` — the opt-in ``exact=False`` path.
  Statistically identical, block-vectorized, roughly an order of
  magnitude cheaper per tick. See its docstring for the approximation
  contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigurationError
from repro.simulation.clock import SimClock
from repro.workload.generators import RateGrid, RatePattern


@dataclass(frozen=True)
class ClickBatch:
    """One tick's worth of generated click events."""

    records: int
    payload_bytes: int
    distinct_keys: int


@dataclass(frozen=True)
class ClickStreamConfig:
    """Shape of the click events themselves (not their arrival rate).

    Attributes
    ----------
    mean_record_bytes:
        Average serialized click-event size.
    record_bytes_sigma:
        Log-normal shape parameter of the size distribution.
    catalog_pages:
        Number of distinct pages on the simulated site.
    zipf_exponent:
        Popularity skew; ~1.0 is typical for web page popularity.
    """

    mean_record_bytes: int = 350
    record_bytes_sigma: float = 0.35
    catalog_pages: int = 500
    zipf_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_record_bytes <= 0:
            raise ConfigurationError("mean_record_bytes must be positive")
        if self.record_bytes_sigma < 0:
            raise ConfigurationError("record_bytes_sigma must be non-negative")
        if self.catalog_pages <= 0:
            raise ConfigurationError("catalog_pages must be positive")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be non-negative")


class ClickStreamGenerator:
    """Seeded click-event source driven by a rate pattern."""

    #: Whether this source is the bit-exact reference. The fast
    #: subclass flips it; managers and scorecards surface the flag so
    #: approximate runs can never masquerade as exact ones.
    exact = True

    #: Batches above this size summarise the per-record size draws by
    #: their expectation, keeping the per-tick cost constant.
    LARGE_BATCH = 10_000

    def __init__(
        self,
        pattern: RatePattern,
        rng: np.random.Generator,
        config: ClickStreamConfig | None = None,
    ) -> None:
        self.pattern = pattern
        self.config = config or ClickStreamConfig()
        self._rng = rng
        # Zipf page-popularity probabilities, computed once.
        ranks = np.arange(1, self.config.catalog_pages + 1, dtype=float)
        weights = ranks ** -self.config.zipf_exponent
        self._page_probs = weights / weights.sum()
        # Log-normal location parameter for the configured mean size.
        sigma = self.config.record_bytes_sigma
        self._payload_mu = float(
            np.log(self.config.mean_record_bytes) - 0.5 * sigma * sigma
        )
        self._total_records = 0
        self._total_bytes = 0
        self._grid: RateGrid | None = None
        # expected_distinct is a pure function of the record count and
        # the (fixed) popularity law; Poisson-sampled counts revisit the
        # same values constantly, so the occupancy sum is memoized.
        self._distinct_cache: dict[int, float] = {}

    def adopt_distinct_cache(self, other: "ClickStreamGenerator") -> bool:
        """Pool the expected-distinct memo with ``other``'s.

        The occupancy sum is a pure function of the record count and
        the (class-specific) popularity-law formula, so generators of
        the same class and distinct-law config can share one memo: the
        fill values are bit-identical no matter which generator
        computes them first. Exact and fast generators never share —
        their formulas round differently — hence the exact type check.
        Returns whether sharing happened.
        """
        if type(other) is not type(self):
            return False
        if (
            other.config.catalog_pages != self.config.catalog_pages
            or other.config.zipf_exponent != self.config.zipf_exponent
        ):
            return False
        if other._distinct_cache is self._distinct_cache:
            return True
        other._distinct_cache.update(self._distinct_cache)
        self._distinct_cache = other._distinct_cache
        return True

    def generate(self, clock: SimClock) -> ClickBatch:
        """Produce the click events arriving during the current tick.

        Arrival rates are read through a :class:`RateGrid` chunked on
        the clock's tick length, so a deep pattern stack is evaluated
        one array chunk at a time instead of per tick — bit-identical to
        calling ``pattern.rate(now)`` directly, by the ``values()`` grid
        contract.
        """
        grid = self._grid
        if grid is None or grid.step != clock.tick_seconds:
            grid = self._grid = RateGrid(self.pattern, clock.tick_seconds)
        expected = grid.rate_at(clock.now) * clock.tick_seconds
        records = self._poisson_count(expected)
        if records == 0:
            return ClickBatch(0, 0, 0)
        payload = self._sample_payload(records)
        distinct = self._expected_distinct_pages(records)
        self._total_records += records
        self._total_bytes += payload
        return ClickBatch(records=records, payload_bytes=payload, distinct_keys=distinct)

    def generate_span(
        self, start: int, count: int, tick_seconds: int
    ) -> tuple[list[int], list[int], list[int]]:
        """Per-tick batches for the ``count`` ticks at ``start``,
        ``start + tick_seconds``, ...

        The click stream's RNG draws interleave *within* each tick
        (arrival Poisson, then per-record size log-normals, then the
        distinct-page Poisson, all on one stream), so the draws stay a
        per-tick loop — what the span path saves is the per-tick grid
        refill, config lookups and ``ClickBatch`` allocation. Returns
        the ``(records, payload_bytes, distinct_keys)`` columns,
        bit-identical to ``count`` :meth:`generate` calls.
        """
        grid = self._grid
        if grid is None or grid.step != tick_seconds:
            grid = self._grid = RateGrid(self.pattern, tick_seconds)
        rates = grid.rates_span(start, count)
        poisson_count = self._poisson_count
        sample_payload = self._sample_payload
        distinct_pages = self._expected_distinct_pages
        records_col: list[int] = []
        payload_col: list[int] = []
        distinct_col: list[int] = []
        span_records = 0
        span_bytes = 0
        for rate in rates:
            records = poisson_count(rate * tick_seconds)
            if records == 0:
                payload = 0
                distinct = 0
            else:
                payload = sample_payload(records)
                distinct = distinct_pages(records)
                span_records += records
                span_bytes += payload
            records_col.append(records)
            payload_col.append(payload)
            distinct_col.append(distinct)
        self._total_records += span_records
        self._total_bytes += span_bytes
        return records_col, payload_col, distinct_col

    def _poisson_count(self, expected: float) -> int:
        """One guarded Poisson draw.

        Every count in the generator — tick arrivals and distinct-page
        jitter alike — goes through this single seam: the ``expected >
        0`` guard keeps zero- and negative-rate ticks off the RNG
        stream, and :class:`FastClickStreamGenerator` replaces the
        whole per-draw scheme around it with aligned block draws.
        """
        return int(self._rng.poisson(expected)) if expected > 0 else 0

    def _sample_payload(self, records: int) -> int:
        """Total bytes for ``records`` events, log-normal per-record sizes.

        For large batches the per-record draws are summarised by their
        expectation to keep the per-tick cost constant.
        """
        sigma = self.config.record_bytes_sigma
        if sigma == 0.0 or records > self.LARGE_BATCH:
            return int(records * self.config.mean_record_bytes)
        sizes = self._rng.lognormal(self._payload_mu, sigma, size=records)
        return int(sizes.sum())

    def expected_distinct(self, records: int) -> float:
        """Expected number of distinct pages among ``records`` hits.

        The exact occupancy expectation ``sum_k 1 - (1 - p_k)^n`` under
        the generator's Zipf popularity law. This is the aggregation
        model the analytics layer uses to turn a window of clicks into
        storage writes (one write per distinct page per window): for
        windows much larger than the hot-page set it *saturates*, which
        is why storage write volume decouples from raw click volume
        (the paper's Sec. 3.1 no-correlation observation).
        """
        if records < 0:
            raise ConfigurationError("records must be non-negative")
        if records == 0:
            return 0.0
        cached = self._distinct_cache.get(records)
        if cached is None:
            cached = float(np.sum(1.0 - np.power(1.0 - self._page_probs, records)))
            self._distinct_cache[records] = cached
        return cached

    def _expected_distinct_pages(self, records: int) -> int:
        """Per-tick distinct page count with Poisson jitter."""
        jittered = self._poisson_count(self.expected_distinct(records))
        return int(min(self.config.catalog_pages, jittered))

    @property
    def total_records(self) -> int:
        """Records generated since construction."""
        return self._total_records

    @property
    def total_bytes(self) -> int:
        return self._total_bytes


class FastClickStreamGenerator(ClickStreamGenerator):
    """Block-vectorized approximate click source — the ``exact=False`` path.

    Draws the same three quantities as the reference, but in
    :data:`BLOCK`-sized numpy batches instead of per-tick interleaved
    scalar draws:

    * **arrivals** — one vectorized ``poisson(rate * dt)`` over the
      whole block;
    * **payload bytes** — the log-normal-sum moment approximation: one
      block of standard normals scaled to the exact sum moments. For
      ``n`` records of per-record mean ``m`` and shape ``sigma``, the
      sum has mean ``n * m`` and standard deviation
      ``m * sqrt(n * (e^{sigma^2} - 1))``; the normal approximation is
      the CLT limit the exact path converges to. The reference path's
      deterministic summaries are mirrored exactly (``sigma == 0`` and
      ``records > LARGE_BATCH`` ticks get ``records * mean``);
    * **distinct pages** — the occupancy expectation evaluated for all
      of the block's unique record counts in one matrix operation
      (sharing the memoization cache), then one block ``poisson``
      jitter draw clipped to the catalogue size.

    The approximation contract (see DESIGN.md):

    * marginal distributions match the reference — validated by the
      seeded moment/KS tests in ``tests/test_fast_workload.py``;
    * determinism per seed is preserved: same seed, same pattern, same
      tick length ⇒ same stream;
    * draw blocks are aligned to the *absolute tick index*, never to
      span boundaries, so fast span runs are bit-identical to fast
      per-tick runs — the span-equivalence property the exact path has,
      preserved within the fast path;
    * what is given up is bit-equality with the exact path: the RNG
      stream is consumed in a different order, so ``exact=False``
      results must never be compared against exact ones (scorecard
      comparisons enforce this by raising).

    Simulated time must advance monotonically (it does, under the
    engine): blocks behind the read cursor are evicted and cannot be
    re-drawn.
    """

    exact = False

    #: Draw-block length in ticks. Big enough to amortize the numpy
    #: call overhead, small enough that short runs don't over-draw.
    BLOCK = 1024

    def __init__(
        self,
        pattern: RatePattern,
        rng: np.random.Generator,
        config: ClickStreamConfig | None = None,
    ) -> None:
        super().__init__(pattern, rng, config=config)
        # Per-record size sd factor: sd(sum of n) = mean * sqrt(n) * _payload_sd1.
        sigma = self.config.record_bytes_sigma
        self._payload_sd1 = float(
            self.config.mean_record_bytes * math.sqrt(math.expm1(sigma * sigma))
        )
        # log(1 - p_k) per page: occupancy survival factors become one
        # exp() instead of the reference's np.power — cheaper, and both
        # the scalar and block fills below use it so the shared
        # memoization cache stays bit-consistent within a fast run no
        # matter which fill path reaches a count first.
        self._log_survival = np.log1p(-self._page_probs)
        self._blocks: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._blocks_drawn = 0
        self._block_step: int | None = None

    def generate(self, clock: SimClock) -> ClickBatch:
        index = self._tick_index(clock.now, clock.tick_seconds)
        block, offset = divmod(index, self.BLOCK)
        records_col, payload_col, distinct_col = self._block(
            block, block, clock.tick_seconds
        )
        records = int(records_col[offset])
        payload = int(payload_col[offset])
        distinct = int(distinct_col[offset])
        self._total_records += records
        self._total_bytes += payload
        return ClickBatch(records=records, payload_bytes=payload, distinct_keys=distinct)

    def generate_span(
        self, start: int, count: int, tick_seconds: int
    ) -> tuple[list[int], list[int], list[int]]:
        if count <= 0:
            return [], [], []
        first = self._tick_index(start, tick_seconds)
        first_block, offset = divmod(first, self.BLOCK)
        last_block = (first + count - 1) // self.BLOCK
        columns = self._block(first_block, last_block, tick_seconds)
        if first_block == last_block:
            sliced = tuple(col[offset : offset + count] for col in columns)
        else:
            tails = [
                self._blocks[b] for b in range(first_block + 1, last_block + 1)
            ]
            sliced = tuple(
                np.concatenate([col, *(t[i] for t in tails)])[offset : offset + count]
                for i, col in enumerate(columns)
            )
        records_col, payload_col, distinct_col = sliced
        self._total_records += int(records_col.sum())
        self._total_bytes += int(payload_col.sum())
        return records_col.tolist(), payload_col.tolist(), distinct_col.tolist()

    def _tick_index(self, now: int, tick_seconds: int) -> int:
        """Absolute 0-based tick index for the tick ending at ``now``.

        The engine advances the clock before generating, so the first
        tick of a run ends at ``t = tick_seconds`` — index 0. Block
        alignment on this index is what makes fast span and fast
        per-tick runs consume identical draw streams.
        """
        index = now // tick_seconds - 1
        if index < 0:
            raise ConfigurationError(
                "fast click-stream ticks start at t = tick_seconds"
            )
        return index

    def _block(
        self, first: int, last: int, step: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ensure blocks ``first..last`` are drawn; return block ``first``.

        Blocks are always drawn in index order — that *is* the fast
        path's RNG stream — and blocks behind ``first`` are evicted
        (time is monotone under the engine).
        """
        if self._block_step is None:
            self._block_step = int(step)
            self._grid = RateGrid(self.pattern, step)
        elif step != self._block_step:
            raise ConfigurationError(
                "fast click-stream generator cannot change tick length "
                f"mid-stream ({self._block_step}s -> {step}s)"
            )
        blocks = self._blocks
        if first < self._blocks_drawn and first not in blocks:
            raise ConfigurationError(
                "fast click-stream ticks must be requested in "
                "non-decreasing time order"
            )
        while self._blocks_drawn <= last:
            blocks[self._blocks_drawn] = self._draw_block(self._blocks_drawn)
            self._blocks_drawn += 1
        for stale in [b for b in blocks if b < first]:
            del blocks[stale]
        return blocks[first]

    def _draw_block(self, index: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized draws for ticks ``index*BLOCK .. +BLOCK-1``."""
        block = self.BLOCK
        step = self._block_step
        assert self._grid is not None and step is not None
        first_time = (index * block + 1) * step
        lam = self._grid.rates_array(first_time, block) * float(step)
        # The scalar path's `expected > 0` guard, vectorized: negative
        # pattern excursions draw a zero-rate Poisson instead of dying.
        np.clip(lam, 0.0, None, out=lam)
        records = self._rng.poisson(lam)
        normals = self._rng.standard_normal(block)
        mean = self.config.mean_record_bytes
        sigma = self.config.record_bytes_sigma
        if sigma == 0.0:
            payload = records * mean
        else:
            approx = records * float(mean) + np.sqrt(records) * (
                self._payload_sd1 * normals
            )
            payload = np.maximum(approx, 0.0).astype(np.int64)
            large = records > self.LARGE_BATCH
            if large.any():
                # Mirror the reference path's deterministic summary for
                # very large batches.
                payload[large] = records[large] * mean
        expected_pages = self._expected_distinct_block(records)
        jitter = self._rng.poisson(expected_pages)
        distinct = np.minimum(jitter, self.config.catalog_pages)
        return records, payload, distinct

    def expected_distinct(self, records: int) -> float:
        """The occupancy expectation via ``exp(n * log(1 - p))``.

        Same quantity as the reference's ``(1 - p) ** n`` form up to
        floating-point association, evaluated the same way the block
        fill evaluates it: the scalar path (the Storm cluster's
        distinct estimator probes it at control boundaries) and
        :meth:`_expected_distinct_block` may reach a given count in
        either order depending on span scheduling, and the shared cache
        must hold the same bits regardless — that is what keeps fast
        span runs bit-identical to fast per-tick runs.
        """
        if records < 0:
            raise ConfigurationError("records must be non-negative")
        if records == 0:
            return 0.0
        cached = self._distinct_cache.get(records)
        if cached is None:
            cached = float(np.sum(1.0 - np.exp(records * self._log_survival)))
            self._distinct_cache[records] = cached
        return cached

    def _expected_distinct_block(self, records: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`expected_distinct` over a block of counts.

        All of the block's unique counts missing from the memoization
        cache are filled from one broadcasted survival matrix; each
        cache entry is reduced from its own contiguous row with the
        exact expression the scalar path uses, so both fills produce
        identical bits for identical counts.
        """
        cache = self._distinct_cache
        uniques = np.unique(records)
        missing = [n for n in map(int, uniques) if n > 0 and n not in cache]
        if missing:
            counts = np.asarray(missing, dtype=float)
            survival = np.exp(counts[:, None] * self._log_survival[None, :])
            for n, row in zip(missing, survival):
                cache[n] = float(np.sum(1.0 - row))
        # Gather through the sorted uniques: one cache probe per
        # distinct count instead of one per tick.
        lut = np.asarray(
            [cache[n] if n > 0 else 0.0 for n in map(int, uniques)], dtype=float
        )
        return lut[np.searchsorted(uniques, records)]

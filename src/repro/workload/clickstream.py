"""Click-stream generator.

Stands in for the demo's "random multi-threaded click stream generator
deployed on several EC2 instances": a seeded source of click events
shaped by a :class:`~repro.workload.generators.RatePattern`.

Each tick yields a :class:`ClickBatch` with

* ``records`` — Poisson-sampled click events around the pattern rate;
* ``payload_bytes`` — total payload (per-record sizes are log-normal
  around a configurable mean, as real click events are);
* ``distinct_keys`` — the expected number of *distinct pages* hit, under
  a Zipf popularity law over the page catalogue.

The distinct-page count is what the analytics layer's windowed
aggregation turns into storage writes. Because distinct counts grow
only logarithmically with volume under Zipf, storage-layer writes stay
nearly flat while click volume swings — reproducing the paper's
observation (Sec. 3.1) that Kinesis write volume and DynamoDB write
capacity were *uncorrelated* for the click-stream flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigurationError
from repro.simulation.clock import SimClock
from repro.workload.generators import RateGrid, RatePattern


@dataclass(frozen=True)
class ClickBatch:
    """One tick's worth of generated click events."""

    records: int
    payload_bytes: int
    distinct_keys: int


@dataclass(frozen=True)
class ClickStreamConfig:
    """Shape of the click events themselves (not their arrival rate).

    Attributes
    ----------
    mean_record_bytes:
        Average serialized click-event size.
    record_bytes_sigma:
        Log-normal shape parameter of the size distribution.
    catalog_pages:
        Number of distinct pages on the simulated site.
    zipf_exponent:
        Popularity skew; ~1.0 is typical for web page popularity.
    """

    mean_record_bytes: int = 350
    record_bytes_sigma: float = 0.35
    catalog_pages: int = 500
    zipf_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_record_bytes <= 0:
            raise ConfigurationError("mean_record_bytes must be positive")
        if self.record_bytes_sigma < 0:
            raise ConfigurationError("record_bytes_sigma must be non-negative")
        if self.catalog_pages <= 0:
            raise ConfigurationError("catalog_pages must be positive")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be non-negative")


class ClickStreamGenerator:
    """Seeded click-event source driven by a rate pattern."""

    def __init__(
        self,
        pattern: RatePattern,
        rng: np.random.Generator,
        config: ClickStreamConfig | None = None,
    ) -> None:
        self.pattern = pattern
        self.config = config or ClickStreamConfig()
        self._rng = rng
        # Zipf page-popularity probabilities, computed once.
        ranks = np.arange(1, self.config.catalog_pages + 1, dtype=float)
        weights = ranks ** -self.config.zipf_exponent
        self._page_probs = weights / weights.sum()
        self._total_records = 0
        self._total_bytes = 0
        self._grid: RateGrid | None = None
        # expected_distinct is a pure function of the record count and
        # the (fixed) popularity law; Poisson-sampled counts revisit the
        # same values constantly, so the occupancy sum is memoized.
        self._distinct_cache: dict[int, float] = {}

    def generate(self, clock: SimClock) -> ClickBatch:
        """Produce the click events arriving during the current tick.

        Arrival rates are read through a :class:`RateGrid` chunked on
        the clock's tick length, so a deep pattern stack is evaluated
        one array chunk at a time instead of per tick — bit-identical to
        calling ``pattern.rate(now)`` directly, by the ``values()`` grid
        contract.
        """
        grid = self._grid
        if grid is None or grid.step != clock.tick_seconds:
            grid = self._grid = RateGrid(self.pattern, clock.tick_seconds)
        expected = grid.rate_at(clock.now) * clock.tick_seconds
        records = int(self._rng.poisson(expected)) if expected > 0 else 0
        if records == 0:
            return ClickBatch(0, 0, 0)
        payload = self._sample_payload(records)
        distinct = self._expected_distinct_pages(records)
        self._total_records += records
        self._total_bytes += payload
        return ClickBatch(records=records, payload_bytes=payload, distinct_keys=distinct)

    def generate_span(
        self, start: int, count: int, tick_seconds: int
    ) -> tuple[list[int], list[int], list[int]]:
        """Per-tick batches for the ``count`` ticks at ``start``,
        ``start + tick_seconds``, ...

        The click stream's RNG draws interleave *within* each tick
        (arrival Poisson, then per-record size log-normals, then the
        distinct-page Poisson, all on one stream), so the draws stay a
        per-tick loop — what the span path saves is the per-tick method
        dispatch, config lookups and ``ClickBatch`` allocation. Returns
        the ``(records, payload_bytes, distinct_keys)`` columns,
        bit-identical to ``count`` :meth:`generate` calls.
        """
        grid = self._grid
        if grid is None or grid.step != tick_seconds:
            grid = self._grid = RateGrid(self.pattern, tick_seconds)
        rates = grid.rates_span(start, count)
        poisson = self._rng.poisson
        lognormal = self._rng.lognormal
        sigma = self.config.record_bytes_sigma
        mean = self.config.mean_record_bytes
        mu = np.log(mean) - 0.5 * sigma * sigma
        catalog_pages = self.config.catalog_pages
        expected_distinct = self.expected_distinct
        distinct_cache = self._distinct_cache
        records_col: list[int] = []
        payload_col: list[int] = []
        distinct_col: list[int] = []
        span_records = 0
        span_bytes = 0
        for rate in rates:
            expected = rate * tick_seconds
            records = int(poisson(expected)) if expected > 0 else 0
            if records == 0:
                payload = 0
                distinct = 0
            else:
                if sigma == 0.0 or records > 10000:
                    payload = int(records * mean)
                else:
                    payload = int(lognormal(mu, sigma, size=records).sum())
                expected_pages = distinct_cache.get(records)
                if expected_pages is None:
                    expected_pages = expected_distinct(records)
                jittered = poisson(expected_pages) if expected_pages > 0 else 0
                distinct = int(min(catalog_pages, jittered))
                span_records += records
                span_bytes += payload
            records_col.append(records)
            payload_col.append(payload)
            distinct_col.append(distinct)
        self._total_records += span_records
        self._total_bytes += span_bytes
        return records_col, payload_col, distinct_col

    def _sample_payload(self, records: int) -> int:
        """Total bytes for ``records`` events, log-normal per-record sizes.

        For large batches the per-record draws are summarised by their
        expectation to keep the per-tick cost constant.
        """
        sigma = self.config.record_bytes_sigma
        mean = self.config.mean_record_bytes
        if sigma == 0.0 or records > 10000:
            return int(records * mean)
        mu = np.log(mean) - 0.5 * sigma * sigma
        sizes = self._rng.lognormal(mu, sigma, size=records)
        return int(sizes.sum())

    def expected_distinct(self, records: int) -> float:
        """Expected number of distinct pages among ``records`` hits.

        The exact occupancy expectation ``sum_k 1 - (1 - p_k)^n`` under
        the generator's Zipf popularity law. This is the aggregation
        model the analytics layer uses to turn a window of clicks into
        storage writes (one write per distinct page per window): for
        windows much larger than the hot-page set it *saturates*, which
        is why storage write volume decouples from raw click volume
        (the paper's Sec. 3.1 no-correlation observation).
        """
        if records < 0:
            raise ConfigurationError("records must be non-negative")
        if records == 0:
            return 0.0
        cached = self._distinct_cache.get(records)
        if cached is None:
            cached = float(np.sum(1.0 - np.power(1.0 - self._page_probs, records)))
            self._distinct_cache[records] = cached
        return cached

    def _expected_distinct_pages(self, records: int) -> int:
        """Per-tick distinct page count with Poisson jitter."""
        expected = self.expected_distinct(records)
        jittered = self._rng.poisson(expected) if expected > 0 else 0
        return int(min(self.config.catalog_pages, jittered))

    @property
    def total_records(self) -> int:
        """Records generated since construction."""
        return self._total_records

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

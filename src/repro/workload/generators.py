"""Composable arrival-rate patterns.

A :class:`RatePattern` maps simulated time (seconds) to an expected
event rate (events/second). Patterns compose by summation or product,
so the Fig. 2 style workload — a diurnal base with bursts and noise —
is built as ``NoisyRate(BurstyRate(DiurnalRate(...)))``.

All stochastic patterns take an explicit :class:`numpy.random.Generator`
and pre-draw their randomness over a horizon, so that ``rate(t)`` is a
pure function: evaluating the same pattern twice, or out of order,
yields identical workloads.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.workload.traces import Trace


class RatePattern(ABC):
    """Expected event rate as a pure function of simulated time."""

    @abstractmethod
    def rate(self, t: int) -> float:
        """Expected events/second at simulated second ``t`` (>= 0)."""

    def __add__(self, other: "RatePattern") -> "CompositeRate":
        return CompositeRate([self, other], mode="sum")

    def __mul__(self, other: "RatePattern") -> "CompositeRate":
        return CompositeRate([self, other], mode="product")

    def sample(self, start: int, end: int, step: int = 60) -> Trace:
        """Evaluate the pattern on a grid, as a :class:`Trace`.

        Grid semantics are shared with :meth:`values`: the points are
        ``range(start, end, step)`` (``end`` excluded) and each value is
        exactly what ``rate(t)`` returns at that point — useful for
        plotting and for tests that compare against the per-tick path.
        """
        if step <= 0:
            raise ConfigurationError("step must be positive")
        trace = Trace(type(self).__name__)
        for t in range(start, end, step):
            trace.append(t, self.rate(t))
        return trace

    def values(self, start: int, end: int, step: int = 1) -> np.ndarray:
        """Grid evaluation: ``rate(t)`` for ``t in range(start, end, step)``.

        The contract is *exact* elementwise equality with per-tick
        ``rate(t)`` calls — not statistical equivalence. The batched
        tick loops (:class:`RateGrid`, the manager's pipeline, the
        click-stream generator) read arrival rates through this API one
        chunk at a time instead of one Python call per tick, and rely on
        this equality to keep runs bit-identical to the unbatched loop.
        Subclasses overriding this must preserve the equality to the
        last ULP (beware vectorized transcendentals: ``np.sin`` over an
        array may differ from ``math.sin`` per element).
        """
        if step <= 0:
            raise ConfigurationError("step must be positive")
        return np.array([self.rate(t) for t in range(start, end, step)], dtype=float)

    def _grid_times(self, start: int, end: int, step: int) -> np.ndarray:
        """The shared grid raster for vectorized :meth:`values` overrides."""
        if step <= 0:
            raise ConfigurationError("step must be positive")
        return np.arange(start, end, step, dtype=np.int64)


class ConstantRate(RatePattern):
    """A flat rate."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError("rate must be non-negative")
        self.value = float(value)

    def rate(self, t: int) -> float:
        return self.value

    def values(self, start: int, end: int, step: int = 1) -> np.ndarray:
        return np.full(len(self._grid_times(start, end, step)), self.value)


class StepRate(RatePattern):
    """Jumps from ``base`` to ``level`` at ``at`` (optionally back at ``until``)."""

    def __init__(self, base: float, level: float, at: int, until: int | None = None) -> None:
        if base < 0 or level < 0:
            raise ConfigurationError("rates must be non-negative")
        if until is not None and until <= at:
            raise ConfigurationError("until must be after at")
        self.base = float(base)
        self.level = float(level)
        self.at = int(at)
        self.until = until

    def rate(self, t: int) -> float:
        if t < self.at:
            return self.base
        if self.until is not None and t >= self.until:
            return self.base
        return self.level

    def values(self, start: int, end: int, step: int = 1) -> np.ndarray:
        t = self._grid_times(start, end, step)
        active = t >= self.at
        if self.until is not None:
            active &= t < self.until
        return np.where(active, self.level, self.base)


class RampRate(RatePattern):
    """Linear ramp from ``start_rate`` at ``t0`` to ``end_rate`` at ``t1``."""

    def __init__(self, start_rate: float, end_rate: float, t0: int, t1: int) -> None:
        if t1 <= t0:
            raise ConfigurationError("t1 must be after t0")
        if start_rate < 0 or end_rate < 0:
            raise ConfigurationError("rates must be non-negative")
        self.start_rate = float(start_rate)
        self.end_rate = float(end_rate)
        self.t0 = int(t0)
        self.t1 = int(t1)

    def rate(self, t: int) -> float:
        if t <= self.t0:
            return self.start_rate
        if t >= self.t1:
            return self.end_rate
        progress = (t - self.t0) / (self.t1 - self.t0)
        return self.start_rate + progress * (self.end_rate - self.start_rate)

    def values(self, start: int, end: int, step: int = 1) -> np.ndarray:
        # Elementwise +, -, *, / are exact IEEE ops, identical between
        # the scalar and array paths — unlike transcendentals, which is
        # why SinusoidalRate keeps the loop default.
        t = self._grid_times(start, end, step)
        progress = (t - self.t0) / (self.t1 - self.t0)
        ramp = self.start_rate + progress * (self.end_rate - self.start_rate)
        return np.where(t <= self.t0, self.start_rate, np.where(t >= self.t1, self.end_rate, ramp))


class SinusoidalRate(RatePattern):
    """``mean + amplitude * sin(2*pi*(t - phase)/period)``, floored at 0."""

    def __init__(self, mean: float, amplitude: float, period: int, phase: int = 0) -> None:
        if period <= 0:
            raise ConfigurationError("period must be positive")
        if mean < 0 or amplitude < 0:
            raise ConfigurationError("mean and amplitude must be non-negative")
        self.mean = float(mean)
        self.amplitude = float(amplitude)
        self.period = int(period)
        self.phase = int(phase)

    def rate(self, t: int) -> float:
        value = self.mean + self.amplitude * math.sin(2.0 * math.pi * (t - self.phase) / self.period)
        return max(0.0, value)


class DiurnalRate(SinusoidalRate):
    """A 24-hour sinusoid peaking at ``peak_hour`` local time."""

    def __init__(self, mean: float, amplitude: float, peak_hour: float = 20.0) -> None:
        day = 24 * 3600
        # sin peaks a quarter-period after the phase origin.
        phase = int(peak_hour * 3600 - day / 4)
        super().__init__(mean, amplitude, day, phase)


class WeeklyRate(RatePattern):
    """A weekly shape: a diurnal cycle scaled per day of the week.

    ``day_factors`` maps day index (0 = the day the simulation starts)
    modulo 7 to a multiplier — e.g. quiet weekends for a B2B dashboard
    or busy weekends for a retail one.
    """

    def __init__(self, daily: RatePattern, day_factors: Sequence[float]) -> None:
        if len(day_factors) != 7:
            raise ConfigurationError(f"need exactly 7 day factors, got {len(day_factors)}")
        if any(f < 0 for f in day_factors):
            raise ConfigurationError("day factors must be non-negative")
        self.daily = daily
        self.day_factors = tuple(float(f) for f in day_factors)

    def rate(self, t: int) -> float:
        day = (t // 86400) % 7
        return self.daily.rate(t) * self.day_factors[day]

    def values(self, start: int, end: int, step: int = 1) -> np.ndarray:
        t = self._grid_times(start, end, step)
        factors = np.asarray(self.day_factors)[(t // 86400) % 7]
        return self.daily.values(start, end, step) * factors


class FlashCrowdRate(RatePattern):
    """A sudden spike: linear rise then exponential decay.

    Models the "unplanned or unforeseen changes in demand" the paper
    says rule-based autoscalers fail to adapt to — e.g. a page going
    viral. Additive: compose with a base pattern via ``+``.
    """

    def __init__(self, peak: float, at: int, rise_seconds: int = 60, decay_seconds: int = 600) -> None:
        if peak < 0:
            raise ConfigurationError("peak must be non-negative")
        if rise_seconds <= 0 or decay_seconds <= 0:
            raise ConfigurationError("rise/decay durations must be positive")
        self.peak = float(peak)
        self.at = int(at)
        self.rise_seconds = int(rise_seconds)
        self.decay_seconds = int(decay_seconds)

    def rate(self, t: int) -> float:
        if t < self.at:
            return 0.0
        if t < self.at + self.rise_seconds:
            return self.peak * (t - self.at) / self.rise_seconds
        elapsed = t - self.at - self.rise_seconds
        return self.peak * math.exp(-elapsed / self.decay_seconds)


class BurstyRate(RatePattern):
    """Random multiplicative bursts over an inner pattern.

    Burst start times are drawn once, at construction, as a Poisson
    process over ``[0, horizon)`` — so the pattern stays a pure function
    of time.
    """

    def __init__(
        self,
        inner: RatePattern,
        rng: np.random.Generator,
        horizon: int,
        bursts_per_hour: float = 0.5,
        multiplier: float = 2.5,
        duration_seconds: int = 300,
    ) -> None:
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if bursts_per_hour < 0 or multiplier < 1.0 or duration_seconds <= 0:
            raise ConfigurationError(
                "need bursts_per_hour >= 0, multiplier >= 1, duration_seconds > 0"
            )
        self.inner = inner
        self.multiplier = float(multiplier)
        self.duration_seconds = int(duration_seconds)
        expected = bursts_per_hour * horizon / 3600.0
        count = int(rng.poisson(expected)) if expected > 0 else 0
        self.burst_starts = sorted(int(s) for s in rng.uniform(0, horizon, size=count))

    def rate(self, t: int) -> float:
        base = self.inner.rate(t)
        for start in self.burst_starts:
            if start <= t < start + self.duration_seconds:
                return base * self.multiplier
        return base

    def values(self, start: int, end: int, step: int = 1) -> np.ndarray:
        t = self._grid_times(start, end, step)
        base = self.inner.values(start, end, step)
        in_burst = np.zeros(len(t), dtype=bool)
        for burst_start in self.burst_starts:
            in_burst |= (t >= burst_start) & (t < burst_start + self.duration_seconds)
        return np.where(in_burst, base * self.multiplier, base)


class NoisyRate(RatePattern):
    """Multiplicative log-normal noise, piecewise-constant per interval.

    Noise is pre-drawn on a fixed grid so the pattern is pure; the
    ``interval`` controls how fast the noise wiggles (Fig. 2's minute-
    scale jitter uses the default 60 s).
    """

    def __init__(
        self,
        inner: RatePattern,
        rng: np.random.Generator,
        horizon: int,
        sigma: float = 0.1,
        interval: int = 60,
    ) -> None:
        if horizon <= 0 or interval <= 0:
            raise ConfigurationError("horizon and interval must be positive")
        if sigma < 0:
            raise ConfigurationError("sigma must be non-negative")
        self.inner = inner
        self.interval = int(interval)
        n = horizon // interval + 2
        # Log-normal with mean 1 so noise does not bias the average rate.
        self._factors = np.exp(rng.normal(-0.5 * sigma * sigma, sigma, size=n))

    def rate(self, t: int) -> float:
        index = min(max(t, 0) // self.interval, len(self._factors) - 1)
        return self.inner.rate(t) * float(self._factors[index])

    def values(self, start: int, end: int, step: int = 1) -> np.ndarray:
        t = self._grid_times(start, end, step)
        index = np.minimum(np.maximum(t, 0) // self.interval, len(self._factors) - 1)
        return self.inner.values(start, end, step) * self._factors[index]


class CompositeRate(RatePattern):
    """Sum or product of several patterns."""

    def __init__(self, patterns: Sequence[RatePattern], mode: str = "sum") -> None:
        if not patterns:
            raise ConfigurationError("need at least one pattern")
        if mode not in ("sum", "product"):
            raise ConfigurationError(f"mode must be 'sum' or 'product', got {mode!r}")
        self.patterns = list(patterns)
        self.mode = mode

    def rate(self, t: int) -> float:
        if self.mode == "sum":
            return sum(p.rate(t) for p in self.patterns)
        value = 1.0
        for pattern in self.patterns:
            value *= pattern.rate(t)
        return value

    def values(self, start: int, end: int, step: int = 1) -> np.ndarray:
        # Accumulate in the same left-to-right order as rate(): float
        # addition is not associative, so order is part of the contract.
        total = None
        for pattern in self.patterns:
            part = pattern.values(start, end, step)
            if total is None:
                total = 0.0 + part if self.mode == "sum" else 1.0 * part
            else:
                total = total + part if self.mode == "sum" else total * part
        return total


class RateGrid:
    """Chunked grid evaluation of a pattern, for hot tick loops.

    Deep pattern stacks (``NoisyRate(BurstyRate(DiurnalRate(...)))``)
    cost several Python calls — plus a burst-interval scan — *per tick*
    when read via ``rate(t)``. A ``RateGrid`` instead materialises the
    next ``chunk`` grid points through :meth:`RatePattern.values` and
    serves lookups from the array, so the per-tick cost in the manager's
    run loop is one array index.

    Because ``values()`` is contractually elementwise-equal to per-tick
    ``rate(t)`` calls, reading through a grid is bit-identical to the
    unbatched loop (asserted by ``tests/test_generators.py``). Lookups
    off the grid's step raster fall back to ``rate(t)`` directly, so any
    caller may probe arbitrary times without drift.
    """

    def __init__(self, pattern: RatePattern, step: int, chunk: int = 512) -> None:
        if step <= 0:
            raise ConfigurationError("step must be positive")
        if chunk <= 0:
            raise ConfigurationError("chunk must be positive")
        self.pattern = pattern
        self.step = int(step)
        self.chunk = int(chunk)
        self._start = 0
        self._rates: np.ndarray = np.empty(0)

    def rate_at(self, t: int) -> float:
        """``pattern.rate(t)``, served from the precomputed chunk."""
        offset = t - self._start
        if offset % self.step:
            return self.pattern.rate(t)
        index = offset // self.step
        if not 0 <= index < len(self._rates):
            self._start = t
            self._rates = self.pattern.values(t, t + self.chunk * self.step, self.step)
            index = 0
        return float(self._rates[index])

    def rates_span(self, start: int, count: int) -> list[float]:
        """``[rate_at(start + i * step) for i in range(count)]`` in one call.

        Patterns are pure (even :class:`NoisyRate` pre-draws its
        factors) and ``values()`` is elementwise-equal to ``rate(t)``,
        so one grid evaluation over the span returns bit-identical
        values regardless of how chunk refills would have fallen. The
        cached chunk is left untouched for interleaved ``rate_at`` use.
        """
        return self.rates_array(start, count).tolist()

    def rates_array(self, start: int, count: int) -> np.ndarray:
        """:meth:`rates_span` as an ndarray, for vectorized consumers.

        The fast (``exact=False``) workload path feeds these rates
        straight into batched Poisson draws, so it wants the array
        without the ``tolist()`` round-trip the per-tick span loop
        prefers for scalar indexing.
        """
        if count <= 0:
            return np.empty(0)
        step = self.step
        return self.pattern.values(start, start + count * step, step)


class ReplayRate(RatePattern):
    """Replays a recorded trace with step-hold interpolation."""

    def __init__(self, trace: Trace) -> None:
        if len(trace) == 0:
            raise ConfigurationError("cannot replay an empty trace")
        self.trace = trace
        self._first_time = trace.times[0]

    def rate(self, t: int) -> float:
        return max(0.0, self.trace.value_at(max(t, self._first_time)))


class TracePattern(RatePattern):
    """Replays any :class:`Trace` through the grid API, bit-exactly.

    The scenario catalog's trace-replay adapter: external traces (CSV
    importable via :meth:`from_csv`) become first-class workloads with
    step-hold semantics — the rate at ``t`` is the value of the most
    recent trace point at or before ``t``, times before the first point
    hold the first value, and times past the end (and inside recording
    gaps) hold the last value seen. ``scale`` rescales a recorded trace
    onto a different fleet size.

    Unlike :class:`ReplayRate`, the :meth:`values` override serves grid
    reads with one ``searchsorted`` per chunk while preserving the
    elementwise-equality contract with per-tick ``rate(t)`` calls, so
    span-batched runs replay a trace bit-identically to the per-tick
    reference loop (pinned by ``tests/test_trace_replay.py``).
    """

    def __init__(self, trace: Trace, scale: float = 1.0) -> None:
        if len(trace) == 0:
            raise ConfigurationError("cannot replay an empty trace")
        if not math.isfinite(scale) or scale <= 0:
            raise ConfigurationError(f"scale must be positive and finite, got {scale}")
        for t, v in trace:
            if not math.isfinite(v):
                raise ConfigurationError(
                    f"trace {trace.name!r}: non-finite value {v!r} at t={t} "
                    "cannot be replayed as a rate"
                )
        self.trace = trace
        self.scale = float(scale)
        self._times = np.asarray(trace.times, dtype=np.int64)
        self._values = np.asarray(trace.values, dtype=float)

    def rate(self, t: int) -> float:
        index = int(np.searchsorted(self._times, t, side="right")) - 1
        if index < 0:
            index = 0
        return max(0.0, float(self._values[index]) * self.scale)

    def values(self, start: int, end: int, step: int = 1) -> np.ndarray:
        # Hold-last lookup for the whole grid in one searchsorted; the
        # per-element multiply and floor are the same IEEE operations
        # as the scalar path, so equality holds to the last ULP.
        t = self._grid_times(start, end, step)
        index = np.searchsorted(self._times, t, side="right") - 1
        np.clip(index, 0, None, out=index)
        return np.maximum(0.0, self._values[index] * self.scale)

    @classmethod
    def from_csv(cls, path, name: str = "", scale: float = 1.0) -> "TracePattern":
        """Load a ``time,value`` CSV (see :meth:`Trace.from_csv`) and
        replay it."""
        return cls(Trace.from_csv(path, name=name), scale=scale)

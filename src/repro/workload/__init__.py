"""Workload generation: rate patterns, click streams and traces.

Replaces the demo's "random multi-threaded click stream generator
deployed on several EC2 instances" with a seeded, deterministic
click-stream source whose arrival rate is shaped by composable rate
patterns (diurnal cycles, bursts, flash crowds, steps, replays).
"""

from repro.workload.clickstream import (
    ClickBatch,
    ClickStreamConfig,
    ClickStreamGenerator,
    FastClickStreamGenerator,
)
from repro.workload.generators import (
    BurstyRate,
    CompositeRate,
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    NoisyRate,
    RampRate,
    RateGrid,
    RatePattern,
    ReplayRate,
    SinusoidalRate,
    StepRate,
    TracePattern,
    WeeklyRate,
)
from repro.workload.traces import Trace

__all__ = [
    "RatePattern",
    "ConstantRate",
    "StepRate",
    "RampRate",
    "SinusoidalRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "WeeklyRate",
    "BurstyRate",
    "NoisyRate",
    "CompositeRate",
    "ReplayRate",
    "TracePattern",
    "RateGrid",
    "ClickStreamGenerator",
    "FastClickStreamGenerator",
    "ClickStreamConfig",
    "ClickBatch",
    "Trace",
]

"""Time-series traces.

A :class:`Trace` is the exchange format of the library: simulations
record capacity/utilisation/throughput traces, the dependency analyzer
regresses one trace on another, and benchmarks print traces as the
series behind the paper's figures.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.errors import ConfigurationError


class Trace:
    """An append-only, time-ordered series of ``(time, value)`` points."""

    def __init__(self, name: str = "", points: Iterable[tuple[int, float]] | None = None) -> None:
        self.name = name
        self._times: list[int] = []
        self._values: list[float] = []
        for t, v in points or ():
            self.append(t, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, t: int, value: float) -> None:
        if self._times and t <= self._times[-1]:
            raise ConfigurationError(
                f"trace {self.name!r}: times must be strictly increasing "
                f"(got {t} after {self._times[-1]})"
            )
        self._times.append(int(t))
        self._values.append(float(value))

    @classmethod
    def from_series(cls, name: str, times: Iterable[int], values: Iterable[float]) -> "Trace":
        return cls(name, zip(times, values))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def times(self) -> list[int]:
        return list(self._times)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return iter(zip(self._times, self._values))

    def __getitem__(self, index: int) -> tuple[int, float]:
        return self._times[index], self._values[index]

    def value_at(self, t: int) -> float:
        """Value of the most recent point at or before ``t`` (step-hold)."""
        if not self._times or t < self._times[0]:
            raise ConfigurationError(f"trace {self.name!r}: no point at or before t={t}")
        # Binary search for the rightmost time <= t.
        lo, hi = 0, len(self._times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._times[mid] <= t:
                lo = mid
            else:
                hi = mid - 1
        return self._values[lo]

    def slice(self, start: int, end: int) -> "Trace":
        """Points with start <= t < end."""
        pairs = [(t, v) for t, v in self if start <= t < end]
        return Trace(self.name, pairs)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        self._require_points()
        return sum(self._values) / len(self._values)

    def minimum(self) -> float:
        self._require_points()
        return min(self._values)

    def maximum(self) -> float:
        self._require_points()
        return max(self._values)

    def std(self) -> float:
        self._require_points()
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self._values) / len(self._values))

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile, q in [0, 100]."""
        self._require_points()
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        weight = rank - low
        # The one-product form is monotone in floating point, so the
        # result can never escape [ordered[low], ordered[high]].
        return ordered[low] + weight * (ordered[high] - ordered[low])

    def time_weighted_mean(self) -> float:
        """Mean weighted by the hold time of each point (last point
        weighted like the median interval)."""
        self._require_points()
        if len(self._times) == 1:
            return self._values[0]
        intervals = [t2 - t1 for t1, t2 in zip(self._times, self._times[1:])]
        intervals.append(sorted(intervals)[len(intervals) // 2])
        total = sum(intervals)
        return sum(v * w for v, w in zip(self._values, intervals)) / total

    def _require_points(self) -> None:
        if not self._times:
            raise ConfigurationError(f"trace {self.name!r} is empty")

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def resample(self, period: int, statistic: str = "mean") -> "Trace":
        """Aggregate into fixed periods aligned on the first timestamp.

        Each output point sits at the period *end* and aggregates the
        points whose time falls inside ``[period_start, period_end)``.
        """
        self._require_points()
        if period <= 0:
            raise ConfigurationError("period must be positive")
        aggregate = {
            "mean": lambda vs: sum(vs) / len(vs),
            "sum": sum,
            "max": max,
            "min": min,
        }.get(statistic)
        if aggregate is None:
            raise ConfigurationError(f"unsupported statistic {statistic!r}")
        origin = self._times[0]
        buckets: dict[int, list[float]] = {}
        for t, v in self:
            buckets.setdefault((t - origin) // period, []).append(v)
        out = Trace(f"{self.name}/{period}s")
        for bucket in sorted(buckets):
            out.append(origin + (bucket + 1) * period, aggregate(buckets[bucket]))
        return out

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path) -> None:
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["time", "value"])
            writer.writerows(self)

    @classmethod
    def from_csv(cls, path: str | Path, name: str = "") -> "Trace":
        """Load a ``time,value`` CSV, validating every row.

        Malformed input — wrong column count, non-numeric cells,
        duplicate or decreasing timestamps — is rejected with the file
        and line number named, so an imported external trace fails at
        the offending row instead of deep inside :meth:`append`.
        Blank lines (e.g. a trailing newline) are skipped.
        """
        trace = cls(name or Path(path).stem)
        with open(path, newline="") as f:
            reader = csv.reader(f)
            header = next(reader, None)
            if header != ["time", "value"]:
                raise ConfigurationError(f"{path}: expected header ['time', 'value'], got {header}")
            last: int | None = None
            for lineno, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) != 2:
                    raise ConfigurationError(
                        f"{path}, line {lineno}: expected 2 columns (time, value), got {len(row)}"
                    )
                try:
                    t = int(row[0])
                except ValueError:
                    raise ConfigurationError(
                        f"{path}, line {lineno}: time {row[0]!r} is not an integer"
                    ) from None
                try:
                    value = float(row[1])
                except ValueError:
                    raise ConfigurationError(
                        f"{path}, line {lineno}: value {row[1]!r} is not a number"
                    ) from None
                if last is not None and t <= last:
                    problem = (
                        "duplicate timestamp"
                        if t == last
                        else "timestamps must be strictly increasing"
                    )
                    raise ConfigurationError(
                        f"{path}, line {lineno}: {problem} ({t} after {last})"
                    )
                trace.append(t, value)
                last = t
        return trace

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, n={len(self)})"

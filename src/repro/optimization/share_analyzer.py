"""Resource share analysis (paper Sec. 3.2, Eq. 3–5).

Given a budget and the dependency constraints learned by the workload
dependency analyzer, "what would be the maximum share of resources for
each layer in a data analytics flow?" The analyzer casts the question
as the paper's multi-objective problem

    max (r_I, r_A, r_S)
    s.t. sum_d r_I*c_d + sum_d r_A*c_d + sum_d r_S*c_d <= Bud   (Eq. 4)
         dependency constraints between layers                  (Eq. 5)

and searches the provisioning-plan space with NSGA-II, returning the
Pareto-optimal resource shares (Fig. 4). One solution is then picked
"either manually by the user or randomly by the system" — plus a few
practical strategies (balanced, cheapest, layer-max).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.pricing import PriceBook
from repro.core.errors import OptimizationError
from repro.core.flow import FlowSpec, LayerKind
from repro.dependency.analyzer import DependencyModel
from repro.optimization.nsga2 import NSGA2, NSGA2Config
from repro.optimization.problem import Problem

#: Decision-vector order used throughout: r_I, r_A, r_S.
LAYER_ORDER = (LayerKind.INGESTION, LayerKind.ANALYTICS, LayerKind.STORAGE)


@dataclass(frozen=True)
class ShareConstraint:
    """A linear constraint over layer resource amounts.

    Encodes ``sum_k coefficients[k] * r_k + constant <= 0``. The named
    constructors cover the forms the paper uses.
    """

    coefficients: tuple[tuple[LayerKind, float], ...]
    constant: float = 0.0
    label: str = ""

    @classmethod
    def at_least(cls, factor: float, a: LayerKind, b: LayerKind) -> "ShareConstraint":
        """``factor * r_a >= r_b`` (e.g. the paper's ``5*r_A >= r_I``)."""
        return cls(
            coefficients=((b, 1.0), (a, -float(factor))),
            label=f"{factor:g}*r_{a.code} >= r_{b.code}",
        )

    @classmethod
    def at_most(cls, factor: float, a: LayerKind, b: LayerKind) -> "ShareConstraint":
        """``factor * r_a <= r_b`` (e.g. the paper's ``2*r_I <= r_S``)."""
        return cls(
            coefficients=((a, float(factor)), (b, -1.0)),
            label=f"{factor:g}*r_{a.code} <= r_{b.code}",
        )

    @classmethod
    def dependency_band(
        cls,
        target: LayerKind,
        slope: float,
        intercept: float,
        source: LayerKind,
        tolerance: float,
    ) -> tuple["ShareConstraint", "ShareConstraint"]:
        """Eq. 5 as a band: ``|r_target - (slope*r_source + intercept)| <= tol``.

        A regression dependency is an equality with error; enforcing it
        as an exact equality would leave NSGA-II no feasible volume, so
        it becomes two inequalities ``tolerance`` wide.
        """
        if tolerance < 0:
            raise OptimizationError("tolerance must be non-negative")
        upper = cls(
            coefficients=((target, 1.0), (source, -slope)),
            constant=-intercept - tolerance,
            label=f"r_{target.code} <= {slope:g}*r_{source.code} + {intercept:g} + {tolerance:g}",
        )
        lower = cls(
            coefficients=((target, -1.0), (source, slope)),
            constant=intercept - tolerance,
            label=f"r_{target.code} >= {slope:g}*r_{source.code} + {intercept:g} - {tolerance:g}",
        )
        return lower, upper

    @classmethod
    def from_dependency(
        cls,
        model: DependencyModel,
        target: LayerKind,
        source: LayerKind,
        tolerance_sigmas: float = 2.0,
    ) -> tuple["ShareConstraint", "ShareConstraint"]:
        """Build Eq. 5 from a fitted :class:`DependencyModel`.

        The band width defaults to two residual standard deviations —
        the regression's own estimate of how tightly the layers track.
        """
        result = model.result
        tolerance = max(1e-9, tolerance_sigmas * result.residual_std)
        return cls.dependency_band(target, result.slope, result.intercept, source, tolerance)

    def g(self, shares: dict[LayerKind, float]) -> float:
        """``g(x)``; feasible iff ``g(x) <= 0``."""
        return sum(c * shares[k] for k, c in self.coefficients) + self.constant

    def coefficient_vector(self, order: tuple[LayerKind, ...] = LAYER_ORDER) -> np.ndarray:
        """The constraint as a dense coefficient row over ``order``."""
        row = np.zeros(len(order))
        index = {kind: d for d, kind in enumerate(order)}
        for kind, coefficient in self.coefficients:
            row[index[kind]] += coefficient
        return row

    def satisfied(self, shares: dict[LayerKind, float], slack: float = 1e-9) -> bool:
        return self.g(shares) <= slack

    def describe(self) -> str:
        if self.label:
            return self.label
        terms = " + ".join(f"{c:g}*r_{k.code}" for k, c in self.coefficients)
        return f"{terms} + {self.constant:g} <= 0"


@dataclass(frozen=True)
class ResourceShare:
    """One Pareto-optimal allocation: units per layer plus its cost."""

    shares: tuple[tuple[LayerKind, int], ...]
    hourly_cost: float

    def __getitem__(self, kind: LayerKind) -> int:
        for k, units in self.shares:
            if k == kind:
                return units
        raise OptimizationError(f"no share for layer {kind.name}")

    @property
    def ingestion(self) -> int:
        return self[LayerKind.INGESTION]

    @property
    def analytics(self) -> int:
        return self[LayerKind.ANALYTICS]

    @property
    def storage(self) -> int:
        return self[LayerKind.STORAGE]

    def as_dict(self) -> dict[LayerKind, int]:
        return dict(self.shares)

    def __str__(self) -> str:
        return (
            f"I={self.ingestion}, A={self.analytics}, S={self.storage} "
            f"(${self.hourly_cost:.3f}/h)"
        )


@dataclass
class ShareAnalysisResult:
    """The Pareto set of resource shares for one budget window."""

    solutions: list[ResourceShare]
    budget_per_hour: float
    flow: FlowSpec
    evaluations: int = 0
    _rng_seed: int = field(default=0, repr=False)

    def __len__(self) -> int:
        return len(self.solutions)

    def table(self) -> str:
        """Render the front the way the demo's Fig. 4 view lists it."""
        ingestion = self.flow.ingestion.resource_label
        analytics = self.flow.analytics.resource_label
        storage = self.flow.storage.resource_label
        header = f"{'#':>3}  {ingestion:>8}  {analytics:>8}  {storage:>8}  {'$/hour':>8}"
        lines = [header, "-" * len(header)]
        for index, sol in enumerate(self.solutions, start=1):
            lines.append(
                f"{index:>3}  {sol.ingestion:>8d}  {sol.analytics:>8d}  "
                f"{sol.storage:>8d}  {sol.hourly_cost:>8.3f}"
            )
        return "\n".join(lines)

    def pick(self, strategy: str = "random", seed: int | None = None) -> ResourceShare:
        """Select one solution from the front.

        Strategies: ``random`` (the paper's default when the user does
        not choose), ``balanced`` (maximize the worst normalized layer
        share), ``cheapest``, ``max:ingestion`` / ``max:analytics`` /
        ``max:storage``.
        """
        if not self.solutions:
            raise OptimizationError("no feasible solutions to pick from")
        if strategy == "random":
            rng = np.random.default_rng(self._rng_seed if seed is None else seed)
            return self.solutions[int(rng.integers(0, len(self.solutions)))]
        if strategy == "cheapest":
            return min(self.solutions, key=lambda s: s.hourly_cost)
        if strategy == "balanced":
            maxima = {
                kind: max(s[kind] for s in self.solutions) or 1 for kind in LAYER_ORDER
            }
            return max(
                self.solutions,
                key=lambda s: min(s[kind] / maxima[kind] for kind in LAYER_ORDER),
            )
        if strategy.startswith("max:"):
            kind = {k.name.lower(): k for k in LAYER_ORDER}.get(strategy[4:])
            if kind is None:
                raise OptimizationError(f"unknown layer in strategy {strategy!r}")
            return max(self.solutions, key=lambda s: s[kind])
        raise OptimizationError(f"unknown strategy {strategy!r}")


class _ShareProblem(Problem):
    """Eq. 3–5 as an NSGA-II problem (objectives normalized to [-1, 0])."""

    def __init__(
        self,
        flow: FlowSpec,
        book: PriceBook,
        budget_per_hour: float,
        constraints: list[ShareConstraint],
    ) -> None:
        layers = [flow.layer(kind) for kind in LAYER_ORDER]
        super().__init__(
            n_var=3,
            n_obj=3,
            lower=[layer.min_units for layer in layers],
            upper=[layer.max_units for layer in layers],
            integer=True,
        )
        self._rates = np.array(
            [book.price(layer.resource).hourly for layer in layers]
        )
        self._scales = np.array([float(layer.max_units) for layer in layers])
        self._budget = budget_per_hour
        self._constraints = constraints
        # Dense linear-constraint form (A x + b <= 0) for batch evaluation:
        # row 0 is the Eq. 4 budget, the rest the Eq. 5 dependency bands.
        self._A = np.vstack(
            [self._rates] + [c.coefficient_vector(LAYER_ORDER) for c in constraints]
        )
        self._b = np.array([-budget_per_hour] + [c.constant for c in constraints])

    def evaluate(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Route through the batch path so a single evaluation and a batch
        # row agree bit-for-bit (the scalar/vectorized equivalence contract).
        objectives, violations = self.evaluate_batch(np.asarray(x, dtype=float)[None, :])
        return objectives[0], violations[0]

    def evaluate_batch(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 3–5 for a whole population in two matrix expressions.

        The constraint rows use an explicit broadcast-and-sum rather than
        ``X @ A.T``: BLAS picks different kernels by batch size, and their
        last-ULP drift would break evaluate(x) == evaluate_batch([x])[0].
        """
        X = np.asarray(X, dtype=float)
        objectives = -X / self._scales
        violations = np.maximum(0.0, (X[:, None, :] * self._A).sum(axis=2) + self._b)
        return objectives, violations


class ResourceShareAnalyzer:
    """Builds and solves the Eq. 3–5 problem for a flow."""

    def __init__(
        self,
        flow: FlowSpec,
        price_book: PriceBook | None = None,
        constraints: list[ShareConstraint] | None = None,
    ) -> None:
        self.flow = flow
        self.price_book = price_book or PriceBook()
        self.constraints = list(constraints or [])

    def add_constraint(self, constraint: ShareConstraint) -> None:
        self.constraints.append(constraint)

    def hourly_cost(self, shares: dict[LayerKind, float]) -> float:
        """Eq. 4's left-hand side for one allocation."""
        total = 0.0
        for kind in LAYER_ORDER:
            layer = self.flow.layer(kind)
            total += self.price_book.hourly_rate(layer.resource, shares[kind])
        return total

    def analyze(
        self,
        budget_per_hour: float,
        population_size: int = 100,
        generations: int = 250,
        seed: int = 0,
        vectorized: bool = True,
    ) -> ShareAnalysisResult:
        """Search the provisioning-plan space; return the Pareto front.

        Solutions are de-duplicated on their integer allocation and
        sorted by ingestion share for stable presentation.
        ``vectorized=False`` selects the optimizer's scalar reference
        path — same seed, same front, much slower (equivalence tests
        and benchmarks use it).
        """
        if budget_per_hour <= 0:
            raise OptimizationError(f"budget must be positive, got {budget_per_hour}")
        problem = _ShareProblem(self.flow, self.price_book, budget_per_hour, self.constraints)
        optimizer = NSGA2(
            problem,
            NSGA2Config(population_size=population_size, generations=generations),
            seed=seed,
            vectorized=vectorized,
        )
        outcome = optimizer.run()
        unique: dict[tuple[int, int, int], ResourceShare] = {}
        for individual in outcome.front:
            units = tuple(int(round(v)) for v in individual.x)
            shares = dict(zip(LAYER_ORDER, (float(u) for u in units)))
            unique[units] = ResourceShare(
                shares=tuple(zip(LAYER_ORDER, units)),
                hourly_cost=self.hourly_cost(shares),
            )
        solutions = sorted(unique.values(), key=lambda s: (s.ingestion, s.analytics, s.storage))
        return ShareAnalysisResult(
            solutions=solutions,
            budget_per_hour=budget_per_hour,
            flow=self.flow,
            evaluations=outcome.evaluations,
            _rng_seed=seed,
        )

"""Problem abstraction for the NSGA-II optimizer.

Conventions (shared by every module in this package):

* objectives are **minimized** — callers maximizing a quantity negate it;
* constraints follow the ``g(x) <= 0`` convention — the evaluator
  returns per-constraint *violations* ``max(0, g(x))``, so a solution is
  feasible iff all violations are zero.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from repro.core.errors import OptimizationError


class Problem(ABC):
    """A box-bounded multi-objective problem with inequality constraints."""

    def __init__(
        self,
        n_var: int,
        n_obj: int,
        lower: Sequence[float],
        upper: Sequence[float],
        integer: bool = False,
    ) -> None:
        if n_var <= 0:
            raise OptimizationError(f"n_var must be positive, got {n_var}")
        if n_obj <= 0:
            raise OptimizationError(f"n_obj must be positive, got {n_obj}")
        self.n_var = n_var
        self.n_obj = n_obj
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        if self.lower.shape != (n_var,) or self.upper.shape != (n_var,):
            raise OptimizationError(
                f"bounds must have shape ({n_var},), got {self.lower.shape} / {self.upper.shape}"
            )
        if np.any(self.lower > self.upper):
            raise OptimizationError("every lower bound must be <= its upper bound")
        self.integer = integer

    @abstractmethod
    def evaluate(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(objectives, violations)`` for a single decision vector.

        ``objectives`` has shape ``(n_obj,)`` (minimized); ``violations``
        is a 1-D array of non-negative constraint violations (possibly
        empty).
        """

    def evaluate_batch(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(objectives, violations)`` for a batch of decision vectors.

        ``X`` has shape ``(n, n_var)``; the result is the ``(n, n_obj)``
        objective matrix and an ``(n, n_con)`` violation matrix
        (``n_con`` may be 0). The default implementation falls back to
        row-wise :meth:`evaluate`; problems with cheap closed-form
        objectives (e.g. the Eq. 3–5 share problem) override it with a
        single matrix expression — the optimizer's hot path.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_var:
            raise OptimizationError(f"batch must have shape (n, {self.n_var}), got {X.shape}")
        F = np.empty((len(X), self.n_obj))
        rows: list[np.ndarray] = []
        for i, x in enumerate(X):
            f, violations = self.evaluate(x)
            F[i] = f
            rows.append(np.atleast_1d(np.asarray(violations, dtype=float)))
        if not rows:
            return F, np.zeros((0, 0))
        n_con = rows[0].size
        if any(row.size != n_con for row in rows):
            raise OptimizationError("evaluate returned inconsistent violation counts across rows")
        V = np.zeros((len(X), n_con))
        for i, row in enumerate(rows):
            V[i] = row
        return F, V

    def repair(self, x: np.ndarray) -> np.ndarray:
        """Clamp to bounds and round integer variables.

        Accepts a single ``(n_var,)`` vector or an ``(n, n_var)`` batch —
        the bound arrays broadcast over rows either way.
        """
        x = np.clip(x, self.lower, self.upper)
        if self.integer:
            x = np.round(x)
        return x

    def total_violation(self, x: np.ndarray) -> float:
        """Sum of constraint violations (0 means feasible)."""
        _f, violations = self.evaluate(x)
        return float(np.sum(violations))


class FunctionalProblem(Problem):
    """Problem assembled from plain Python callables.

    ``objectives`` are functions of the decision vector returning a
    scalar to minimize; ``constraints`` return ``g(x)`` with the
    feasible region ``g(x) <= 0``.
    """

    def __init__(
        self,
        objectives: Sequence[Callable[[np.ndarray], float]],
        lower: Sequence[float],
        upper: Sequence[float],
        constraints: Sequence[Callable[[np.ndarray], float]] = (),
        integer: bool = False,
    ) -> None:
        if not objectives:
            raise OptimizationError("need at least one objective")
        super().__init__(
            n_var=len(np.asarray(lower, dtype=float)),
            n_obj=len(objectives),
            lower=lower,
            upper=upper,
            integer=integer,
        )
        self._objectives = list(objectives)
        self._constraints = list(constraints)

    def evaluate(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        f = np.array([fn(x) for fn in self._objectives], dtype=float)
        g = np.array([fn(x) for fn in self._constraints], dtype=float)
        violations = np.maximum(0.0, g) if g.size else g
        return f, violations

"""SLO-derived constraints for the provisioning plan space.

Fig. 3: "The dependency information along with the cloud services costs
and the user's SLO constitute the required inputs for the generation of
provisioning plan space." The budget and dependencies are Eq. 4–5; this
module contributes the SLO's part: *floor* constraints ensuring every
Pareto plan can actually carry the user's projected peak workload at or
below the desired utilisation.

The floors come from the same capacity models the simulators use: a
shard absorbs 1,000 records/s, a Storm VM processes its configured
record rate, and the storage layer must absorb the aggregation's write
rate — so a plan satisfying the floors is feasible *by construction*
in the simulated flow too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cloud.kinesis import KinesisConfig
from repro.cloud.storm import StormConfig
from repro.core.errors import OptimizationError
from repro.core.flow import LayerKind
from repro.optimization.share_analyzer import ShareConstraint


@dataclass(frozen=True)
class FlowSLO:
    """The user's service level objective for a flow.

    Attributes
    ----------
    peak_records_per_second:
        The workload peak every layer must sustain.
    max_utilization:
        Desired utilisation ceiling at that peak (percent). 60 means
        each layer is provisioned with 40 % headroom at peak.
    peak_writes_per_second:
        Storage-layer write rate at peak (aggregation output). If the
        flow uses windowed distinct-key aggregation this is roughly
        ``distinct keys per window / window seconds``.
    """

    peak_records_per_second: float
    max_utilization: float = 60.0
    peak_writes_per_second: float | None = None

    def __post_init__(self) -> None:
        if self.peak_records_per_second <= 0:
            raise OptimizationError("peak_records_per_second must be positive")
        if not 0 < self.max_utilization <= 100:
            raise OptimizationError("max_utilization must be in (0, 100]")
        if self.peak_writes_per_second is not None and self.peak_writes_per_second <= 0:
            raise OptimizationError("peak_writes_per_second must be positive")


def slo_floor_constraints(
    slo: FlowSLO,
    kinesis: KinesisConfig | None = None,
    storm: StormConfig | None = None,
) -> list[ShareConstraint]:
    """Minimum per-layer resource floors implied by the SLO.

    Each floor is ``r_L >= ceil(required capacity / unit capacity)``,
    where the required capacity carries the utilisation headroom. The
    returned constraints plug straight into the share analyzer; plans
    unable to carry the SLO's peak are infeasible rather than
    Pareto-optimal-but-useless.
    """
    kinesis = kinesis or KinesisConfig()
    storm = storm or StormConfig()
    headroom = slo.max_utilization / 100.0
    required_rate = slo.peak_records_per_second / headroom

    floors: list[ShareConstraint] = []
    shard_floor = math.ceil(required_rate / kinesis.records_per_shard_per_second)
    floors.append(_floor(LayerKind.INGESTION, shard_floor))
    vm_floor = math.ceil(required_rate / storm.records_per_vm_per_second)
    floors.append(_floor(LayerKind.ANALYTICS, vm_floor))
    if slo.peak_writes_per_second is not None:
        wcu_floor = math.ceil(slo.peak_writes_per_second / headroom)
        floors.append(_floor(LayerKind.STORAGE, wcu_floor))
    return floors


def _floor(kind: LayerKind, minimum: int) -> ShareConstraint:
    """``r_kind >= minimum`` in the package's ``g(x) <= 0`` form."""
    return ShareConstraint(
        coefficients=((kind, -1.0),),
        constant=float(minimum),
        label=f"r_{kind.code} >= {minimum} (SLO floor)",
    )

"""Time-windowed resource share schedules.

Paper Sec. 2: "The resource shares can be determined with respect to
arbitrary time windows." A workload with a known daily shape does not
need one set of upper bounds for the whole day — the budget can be
split across windows (cheap night window, generous evening-peak
window), each solved as its own Eq. 3–5 problem.

:class:`BudgetWindow` describes one window; the analyzer's
``analyze_windows`` solves each and returns a :class:`ShareSchedule`
that the elasticity manager can follow at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.runner import Scenario, run_scenarios
from repro.core.errors import OptimizationError
from repro.core.flow import LayerKind
from repro.optimization.share_analyzer import (
    ResourceShare,
    ResourceShareAnalyzer,
    ShareAnalysisResult,
)


@dataclass(frozen=True)
class BudgetWindow:
    """A time window with its own hourly budget.

    ``start``/``end`` are simulated seconds; windows of a schedule must
    be contiguous and non-overlapping.
    """

    start: int
    end: int
    budget_per_hour: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise OptimizationError(f"window end ({self.end}) must be after start ({self.start})")
        if self.budget_per_hour <= 0:
            raise OptimizationError("budget must be positive")

    def contains(self, t: int) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class ScheduledShare:
    """One window's solved share analysis and the share picked from it."""

    window: BudgetWindow
    result: ShareAnalysisResult
    picked: ResourceShare


class ShareSchedule:
    """Per-window resource shares, queryable by simulated time."""

    def __init__(self, entries: list[ScheduledShare]) -> None:
        if not entries:
            raise OptimizationError("a schedule needs at least one window")
        ordered = sorted(entries, key=lambda e: e.window.start)
        for previous, current in zip(ordered, ordered[1:]):
            if current.window.start < previous.window.end:
                raise OptimizationError(
                    f"windows overlap: [{previous.window.start}, {previous.window.end}) "
                    f"and [{current.window.start}, {current.window.end})"
                )
            if current.window.start != previous.window.end:
                raise OptimizationError(
                    f"gap between windows at t={previous.window.end}"
                )
        self._entries = ordered

    @property
    def entries(self) -> list[ScheduledShare]:
        return list(self._entries)

    @property
    def span(self) -> tuple[int, int]:
        return self._entries[0].window.start, self._entries[-1].window.end

    def share_at(self, t: int) -> ResourceShare:
        """The picked share of the window covering ``t``.

        Before the first window the first share applies; after the last
        window the last one does (schedules are typically repeated, so
        the edges hold their nearest plan).
        """
        for entry in self._entries:
            if entry.window.contains(t):
                return entry.picked
        if t < self._entries[0].window.start:
            return self._entries[0].picked
        return self._entries[-1].picked

    def bounds_at(self, t: int) -> dict[LayerKind, int]:
        """The per-layer upper bounds in force at ``t``."""
        return self.share_at(t).as_dict()

    def table(self) -> str:
        """Render the schedule's windows, budgets and picked shares."""
        header = f"{'window':>18}  {'$/h':>6}  {'plans':>5}  picked (I, A, S)"
        lines = [header, "-" * len(header)]
        for entry in self._entries:
            window = f"[{entry.window.start:>7}, {entry.window.end:>7})"
            lines.append(
                f"{window:>18}  {entry.window.budget_per_hour:>6.2f}  "
                f"{len(entry.result):>5}  {entry.picked}"
            )
        return "\n".join(lines)


def _solve_window(
    analyzer: ResourceShareAnalyzer,
    window: BudgetWindow,
    pick: str,
    population_size: int,
    generations: int,
    window_seed: int,
    pick_seed: int,
) -> ScheduledShare:
    """One window's Eq. 3–5 solve (module-level so workers can pickle it)."""
    result = analyzer.analyze(
        budget_per_hour=window.budget_per_hour,
        population_size=population_size,
        generations=generations,
        seed=window_seed,
    )
    return ScheduledShare(window=window, result=result, picked=result.pick(pick, seed=pick_seed))


def analyze_windows(
    analyzer: ResourceShareAnalyzer,
    windows: list[BudgetWindow],
    pick: str = "balanced",
    population_size: int = 80,
    generations: int = 150,
    seed: int = 0,
    jobs: int = 1,
) -> ShareSchedule:
    """Solve Eq. 3–5 per window and assemble the schedule.

    Each window is solved with a seed derived from the base seed and
    the window index, so schedules are reproducible yet windows are
    searched independently. ``jobs > 1`` fans the per-window NSGA-II
    solves across worker processes; the schedule is identical to the
    serial one (each window's seed depends only on its index).
    """
    if not windows:
        raise OptimizationError("need at least one budget window")
    scenarios = [
        Scenario(
            name=f"window-{index}",
            fn=_solve_window,
            kwargs=dict(
                analyzer=analyzer,
                window=window,
                pick=pick,
                population_size=population_size,
                generations=generations,
                window_seed=seed * 1000 + index,
                pick_seed=seed,
            ),
        )
        for index, window in enumerate(windows)
    ]
    return ShareSchedule(run_scenarios(scenarios, jobs=jobs))

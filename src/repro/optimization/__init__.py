"""Multi-objective optimisation (paper Sec. 3.2).

Implements NSGA-II (Deb et al., TEVC 2002 — the paper's reference [8])
from scratch: fast non-dominated sorting, crowding distance, binary
tournament selection under Deb's constrained-dominance rule, simulated
binary crossover and polynomial mutation — plus the
:class:`~repro.optimization.share_analyzer.ResourceShareAnalyzer` that
casts Eq. 3–5 (maximize per-layer resource shares under a budget and
the learned dependency constraints) as an NSGA-II problem.
"""

from repro.optimization.fleet_shares import (
    FleetShare,
    FleetShareAnalysisResult,
    FleetShareAnalyzer,
    FlowShareSpec,
)
from repro.optimization.nsga2 import NSGA2, NSGA2Config, NSGA2Result
from repro.optimization.pareto import dominates, hypervolume, pareto_filter
from repro.optimization.problem import FunctionalProblem, Problem
from repro.optimization.schedule import (
    BudgetWindow,
    ScheduledShare,
    ShareSchedule,
    analyze_windows,
)
from repro.optimization.share_analyzer import (
    ResourceShare,
    ResourceShareAnalyzer,
    ShareAnalysisResult,
    ShareConstraint,
)
from repro.optimization.slo import FlowSLO, slo_floor_constraints

__all__ = [
    "Problem",
    "FunctionalProblem",
    "NSGA2",
    "NSGA2Config",
    "NSGA2Result",
    "dominates",
    "pareto_filter",
    "hypervolume",
    "ResourceShareAnalyzer",
    "ShareAnalysisResult",
    "FleetShareAnalyzer",
    "FleetShareAnalysisResult",
    "FleetShare",
    "FlowShareSpec",
    "ResourceShare",
    "ShareConstraint",
    "BudgetWindow",
    "ShareSchedule",
    "ScheduledShare",
    "analyze_windows",
    "FlowSLO",
    "slo_floor_constraints",
]

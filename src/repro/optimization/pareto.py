"""Pareto-front utilities.

Dominance checks, non-dominated filtering and hypervolume — the
quality indicator the test suite uses to verify that NSGA-II actually
converges toward the true front on problems with known optima.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import OptimizationError


def dominates(f1: Sequence[float], f2: Sequence[float]) -> bool:
    """Pareto dominance for minimization: f1 <= f2 everywhere, < somewhere."""
    a = np.asarray(f1, dtype=float)
    b = np.asarray(f2, dtype=float)
    if a.shape != b.shape:
        raise OptimizationError(f"objective shape mismatch: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_filter(objectives: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated rows of an objective matrix.

    Computed in one broadcast dominance matrix instead of an O(n²)
    Python loop: row ``i`` is kept iff no row ``j`` satisfies
    ``F[j] <= F[i]`` everywhere and ``F[j] < F[i]`` somewhere.
    """
    F = np.asarray(objectives, dtype=float)
    if F.ndim != 2:
        raise OptimizationError(f"objectives must be 2-D, got shape {F.shape}")
    if len(F) == 0:
        return []
    less_eq = np.all(F[:, None, :] <= F[None, :, :], axis=2)
    less = np.any(F[:, None, :] < F[None, :, :], axis=2)
    dominated = (less_eq & less).any(axis=0)
    return [int(i) for i in np.where(~dominated)[0]]


def hypervolume_2d(front: Sequence[Sequence[float]], reference: Sequence[float]) -> float:
    """Exact hypervolume of a 2-D minimization front w.r.t. a reference point."""
    F = np.asarray(front, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if F.ndim != 2 or F.shape[1] != 2:
        raise OptimizationError(f"front must be (n, 2), got shape {F.shape}")
    points = F[pareto_filter(F)]
    points = points[np.all(points <= ref, axis=1)]
    if len(points) == 0:
        return 0.0
    # Sort by the first objective ascending; each point contributes a
    # rectangle up to the previous point's second objective.
    points = points[np.argsort(points[:, 0], kind="stable")]
    previous_y = np.concatenate(([ref[1]], points[:-1, 1]))
    return float(np.sum((ref[0] - points[:, 0]) * (previous_y - points[:, 1])))


def hypervolume_monte_carlo(
    front: Sequence[Sequence[float]],
    reference: Sequence[float],
    rng: np.random.Generator,
    samples: int = 20000,
) -> float:
    """Monte-Carlo hypervolume estimate for fronts of any dimension.

    Samples points uniformly in the box spanned by the ideal point of
    the front and the reference point, and counts the fraction
    dominated by at least one front member.
    """
    F = np.asarray(front, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if F.ndim != 2:
        raise OptimizationError(f"front must be 2-D, got shape {F.shape}")
    if samples <= 0:
        raise OptimizationError("samples must be positive")
    F = F[np.all(F <= ref, axis=1)]
    if len(F) == 0:
        return 0.0
    ideal = F.min(axis=0)
    box = np.prod(ref - ideal)
    if box == 0:
        return 0.0
    draws = rng.uniform(ideal, ref, size=(samples, F.shape[1]))
    # A draw is covered if some front point dominates it (<= in all dims).
    covered = np.all(F[None, :, :] <= draws[:, None, :], axis=2).any(axis=1)
    return float(box * covered.mean())


def hypervolume(
    front: Sequence[Sequence[float]],
    reference: Sequence[float],
    rng: np.random.Generator | None = None,
    samples: int = 20000,
) -> float:
    """Hypervolume: exact for 2 objectives, Monte-Carlo otherwise."""
    F = np.asarray(front, dtype=float)
    if F.ndim != 2:
        raise OptimizationError(f"front must be 2-D, got shape {F.shape}")
    if F.shape[1] == 2:
        return hypervolume_2d(F, reference)
    if rng is None:
        rng = np.random.default_rng(0)
    return hypervolume_monte_carlo(F, reference, rng, samples)

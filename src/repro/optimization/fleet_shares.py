"""Per-flow resource share analysis for a multi-flow region.

The single-flow share analyzer (``share_analyzer.py``) answers Eq. 3–5
for one flow's three layers against one budget. A region fleet faces
the generalized question: *N* flows share one budget **and** one set of
account limits (total instances, total shards, total provisioned
throughput), so the shares must be arbitrated *across flows*, not
derived per-flow in isolation.

This module casts that as the natural NSGA-II generalization:

* decision vector: ``3N`` variables — each flow's (ingestion,
  analytics, storage) allocation, in ``FLEET_LAYER_ORDER`` per flow;
* objectives: ``N`` — maximize each flow's *worst* normalized layer
  share (the "balanced" reading of Eq. 3 applied per tenant), so the
  Pareto front spans the fairness trade-offs between flows;
* constraints: the region budget (Eq. 4 summed over flows), one
  account-limit row per resource kind (Σ shards, Σ instances,
  Σ write units across flows), and each flow's own Eq. 5 dependency
  bands mapped onto its variable block.

The scalar/vectorized bit-equivalence contract of the optimizer is
preserved the same way ``_ShareProblem`` preserves it: objectives and
constraints are elementwise/broadcast-and-sum expressions, never BLAS
matrix products.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.pricing import PriceBook
from repro.cloud.region import RegionLimits
from repro.core.errors import OptimizationError
from repro.core.flow import FlowSpec, LayerKind
from repro.optimization.nsga2 import NSGA2, NSGA2Config
from repro.optimization.problem import Problem
from repro.optimization.share_analyzer import LAYER_ORDER, ResourceShare, ShareConstraint

#: Per-flow variable block order (same as the single-flow analyzer).
FLEET_LAYER_ORDER = LAYER_ORDER

#: Which account limit caps each layer's summed allocation.
_ACCOUNT_LIMIT_ATTR: dict[LayerKind, str] = {
    LayerKind.INGESTION: "max_total_shards",
    LayerKind.ANALYTICS: "max_instances",
    LayerKind.STORAGE: "max_total_write_units",
}


@dataclass(frozen=True)
class FlowShareSpec:
    """One flow's inputs to the fleet-wide share analysis."""

    flow_id: str
    flow: FlowSpec
    constraints: tuple[ShareConstraint, ...] = ()
    #: Relative importance in pick strategies that weight flows.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.flow_id:
            raise OptimizationError("flow_id must be non-empty")
        if self.weight <= 0:
            raise OptimizationError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class FleetShare:
    """One Pareto-optimal fleet allocation: a share per flow."""

    shares: tuple[tuple[str, ResourceShare], ...]
    hourly_cost: float

    def __getitem__(self, flow_id: str) -> ResourceShare:
        for fid, share in self.shares:
            if fid == flow_id:
                return share
        raise OptimizationError(f"no share for flow {flow_id!r}")

    def as_dict(self) -> dict[str, ResourceShare]:
        return dict(self.shares)

    def __str__(self) -> str:
        parts = ", ".join(f"{fid}:[{share}]" for fid, share in self.shares)
        return f"{parts} (${self.hourly_cost:.3f}/h total)"


@dataclass
class FleetShareAnalysisResult:
    """The Pareto set of fleet allocations for one budget window."""

    solutions: list[FleetShare]
    budget_per_hour: float
    specs: tuple[FlowShareSpec, ...]
    evaluations: int = 0
    _rng_seed: int = field(default=0, repr=False)

    def __len__(self) -> int:
        return len(self.solutions)

    def pick(self, strategy: str = "balanced", seed: int | None = None) -> FleetShare:
        """Select one fleet allocation from the front.

        Strategies: ``balanced`` (maximize the worst flow's worst
        normalized layer share — the fairest front point), ``random``,
        ``cheapest``, ``max:<flow_id>`` (favor one flow's worst layer).
        """
        if not self.solutions:
            raise OptimizationError("no feasible fleet allocations to pick from")
        if strategy == "random":
            rng = np.random.default_rng(self._rng_seed if seed is None else seed)
            return self.solutions[int(rng.integers(0, len(self.solutions)))]
        if strategy == "cheapest":
            return min(self.solutions, key=lambda s: s.hourly_cost)
        if strategy == "balanced":
            return max(self.solutions, key=self._worst_flow_score)
        if strategy.startswith("max:"):
            flow_id = strategy[4:]
            if flow_id not in {spec.flow_id for spec in self.specs}:
                raise OptimizationError(f"unknown flow in strategy {strategy!r}")
            return max(self.solutions, key=lambda s: self._flow_score(s, flow_id))
        raise OptimizationError(f"unknown strategy {strategy!r}")

    def _flow_score(self, solution: FleetShare, flow_id: str) -> float:
        spec = next(spec for spec in self.specs if spec.flow_id == flow_id)
        share = solution[flow_id]
        return min(
            share[kind] / spec.flow.layer(kind).max_units for kind in FLEET_LAYER_ORDER
        )

    def _worst_flow_score(self, solution: FleetShare) -> float:
        return min(self._flow_score(solution, spec.flow_id) for spec in self.specs)


class _FleetShareProblem(Problem):
    """Eq. 3–5 over N flow blocks plus shared account-limit rows."""

    def __init__(
        self,
        specs: tuple[FlowShareSpec, ...],
        book: PriceBook,
        limits: RegionLimits,
        budget_per_hour: float,
    ) -> None:
        n = len(specs)
        lower: list[float] = []
        upper: list[float] = []
        rates: list[float] = []
        scales: list[float] = []
        for spec in specs:
            for kind in FLEET_LAYER_ORDER:
                layer = spec.flow.layer(kind)
                limit = getattr(limits, _ACCOUNT_LIMIT_ATTR[kind])
                lower.append(float(layer.min_units))
                upper.append(float(min(layer.max_units, limit)))
                rates.append(book.price(layer.resource).hourly)
                scales.append(float(layer.max_units))
        super().__init__(n_var=3 * n, n_obj=n, lower=lower, upper=upper, integer=True)
        self._n_flows = n
        self._rates = np.array(rates)
        self._scales = np.array(scales).reshape(n, 3)
        # Dense A x + b <= 0: row 0 the fleet budget (Eq. 4 summed over
        # flows), one row per account limit, then each flow's own
        # constraints mapped onto its variable block.
        rows = [self._rates]
        consts = [-float(budget_per_hour)]
        for d, kind in enumerate(FLEET_LAYER_ORDER):
            row = np.zeros(3 * n)
            row[d::3] = 1.0
            rows.append(row)
            consts.append(-float(getattr(limits, _ACCOUNT_LIMIT_ATTR[kind])))
        for f, spec in enumerate(specs):
            for constraint in spec.constraints:
                row = np.zeros(3 * n)
                row[3 * f : 3 * f + 3] = constraint.coefficient_vector(FLEET_LAYER_ORDER)
                rows.append(row)
                consts.append(float(constraint.constant))
        self._A = np.vstack(rows)
        self._b = np.array(consts)

    def evaluate(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        objectives, violations = self.evaluate_batch(np.asarray(x, dtype=float)[None, :])
        return objectives[0], violations[0]

    def evaluate_batch(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Objectives and violations for a population in matrix form.

        Objective f is ``-min_d x_fd / scale_fd`` (minimize the negated
        worst normalized layer share of flow f). Like the single-flow
        problem, constraints use broadcast-and-sum rather than ``X @
        A.T`` so scalar and batch evaluation agree bit-for-bit.
        """
        X = np.asarray(X, dtype=float)
        normalized = X.reshape(len(X), self._n_flows, 3) / self._scales
        objectives = -normalized.min(axis=2)
        violations = np.maximum(0.0, (X[:, None, :] * self._A).sum(axis=2) + self._b)
        return objectives, violations


class FleetShareAnalyzer:
    """Arbitrates resource shares across a region's flows (Eq. 3–5 × N)."""

    def __init__(
        self,
        specs: list[FlowShareSpec],
        limits: RegionLimits | None = None,
        price_book: PriceBook | None = None,
    ) -> None:
        if not specs:
            raise OptimizationError("need at least one flow spec")
        ids = [spec.flow_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise OptimizationError(f"flow ids must be unique, got {ids}")
        self.specs = tuple(specs)
        self.limits = limits or RegionLimits()
        self.price_book = price_book or PriceBook()

    def hourly_cost(self, shares: dict[str, dict[LayerKind, float]]) -> float:
        """Eq. 4's left-hand side summed over all flows."""
        total = 0.0
        for spec in self.specs:
            for kind in FLEET_LAYER_ORDER:
                layer = spec.flow.layer(kind)
                total += self.price_book.hourly_rate(
                    layer.resource, shares[spec.flow_id][kind]
                )
        return total

    def analyze(
        self,
        budget_per_hour: float,
        population_size: int = 100,
        generations: int = 250,
        seed: int = 0,
        vectorized: bool = True,
    ) -> FleetShareAnalysisResult:
        """Search the fleet provisioning space; return the Pareto front.

        Mirrors :meth:`ResourceShareAnalyzer.analyze`: solutions are
        de-duplicated on the integer allocation tuple and sorted for
        stable presentation; ``vectorized=False`` selects the scalar
        reference path (same seed, same front).
        """
        if budget_per_hour <= 0:
            raise OptimizationError(f"budget must be positive, got {budget_per_hour}")
        problem = _FleetShareProblem(
            self.specs, self.price_book, self.limits, budget_per_hour
        )
        optimizer = NSGA2(
            problem,
            NSGA2Config(population_size=population_size, generations=generations),
            seed=seed,
            vectorized=vectorized,
        )
        outcome = optimizer.run()
        unique: dict[tuple[int, ...], FleetShare] = {}
        for individual in outcome.front:
            units = tuple(int(round(v)) for v in individual.x)
            shares_by_flow: dict[str, dict[LayerKind, float]] = {}
            flow_shares: list[tuple[str, ResourceShare]] = []
            for f, spec in enumerate(self.specs):
                block = units[3 * f : 3 * f + 3]
                shares = dict(zip(FLEET_LAYER_ORDER, (float(u) for u in block)))
                shares_by_flow[spec.flow_id] = shares
                flow_cost = sum(
                    self.price_book.hourly_rate(
                        spec.flow.layer(kind).resource, shares[kind]
                    )
                    for kind in FLEET_LAYER_ORDER
                )
                flow_shares.append(
                    (
                        spec.flow_id,
                        ResourceShare(
                            shares=tuple(zip(FLEET_LAYER_ORDER, block)),
                            hourly_cost=flow_cost,
                        ),
                    )
                )
            unique[units] = FleetShare(
                shares=tuple(flow_shares),
                hourly_cost=self.hourly_cost(shares_by_flow),
            )
        solutions = sorted(unique.values(), key=lambda s: tuple(
            share[kind]
            for _fid, share in s.shares
            for kind in FLEET_LAYER_ORDER
        ))
        return FleetShareAnalysisResult(
            solutions=solutions,
            budget_per_hour=budget_per_hour,
            specs=self.specs,
            evaluations=outcome.evaluations,
            _rng_seed=seed,
        )

"""NSGA-II (Deb, Pratap, Agarwal, Meyarivan — TEVC 2002).

The paper's resource share analyzer "uses NSGA-II algorithm [8] to
efficiently search the provisioning plan space" (Sec. 3.2). This is a
from-scratch implementation of the full algorithm:

* fast non-dominated sorting (the O(MN²) bookkeeping variant);
* crowding-distance diversity preservation;
* binary tournament selection under Deb's *constrained-dominance*
  rule (feasible beats infeasible; two infeasibles compare by total
  violation; two feasibles by rank, then crowding);
* simulated binary crossover (SBX) and polynomial mutation, with
  bound repair and integer rounding for discrete resource counts.

Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import OptimizationError
from repro.optimization.problem import Problem


@dataclass
class Individual:
    """One candidate solution with its evaluation and NSGA-II metadata."""

    x: np.ndarray
    f: np.ndarray
    violation: float
    rank: int = 0
    crowding: float = 0.0

    @property
    def feasible(self) -> bool:
        return self.violation == 0.0


@dataclass(frozen=True)
class NSGA2Config:
    """Algorithm hyper-parameters (defaults follow Deb et al.)."""

    population_size: int = 100
    generations: int = 250
    crossover_probability: float = 0.9
    crossover_eta: float = 15.0
    mutation_probability: float | None = None  # default 1/n_var
    mutation_eta: float = 20.0

    def __post_init__(self) -> None:
        if self.population_size < 4 or self.population_size % 2 != 0:
            raise OptimizationError("population_size must be an even number >= 4")
        if self.generations < 1:
            raise OptimizationError("generations must be >= 1")
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise OptimizationError("crossover_probability must be in [0, 1]")
        if self.mutation_probability is not None and not 0.0 <= self.mutation_probability <= 1.0:
            raise OptimizationError("mutation_probability must be in [0, 1]")
        if self.crossover_eta <= 0 or self.mutation_eta <= 0:
            raise OptimizationError("distribution indices must be positive")


@dataclass
class NSGA2Result:
    """Final population plus the feasible first front."""

    population: list[Individual]
    generations_run: int
    evaluations: int

    @property
    def front(self) -> list[Individual]:
        """Feasible, rank-0, objective-unique individuals."""
        seen: set[tuple[float, ...]] = set()
        front: list[Individual] = []
        for ind in self.population:
            if ind.rank != 0 or not ind.feasible:
                continue
            key = tuple(np.round(ind.f, 12))
            if key in seen:
                continue
            seen.add(key)
            front.append(ind)
        return front

    @property
    def pareto_x(self) -> np.ndarray:
        front = self.front
        return np.array([ind.x for ind in front]) if front else np.empty((0, 0))

    @property
    def pareto_f(self) -> np.ndarray:
        front = self.front
        return np.array([ind.f for ind in front]) if front else np.empty((0, 0))


def constrained_dominates(a: Individual, b: Individual) -> bool:
    """Deb's constrained-dominance relation."""
    if a.feasible and not b.feasible:
        return True
    if not a.feasible and b.feasible:
        return False
    if not a.feasible and not b.feasible:
        return a.violation < b.violation
    return bool(np.all(a.f <= b.f) and np.any(a.f < b.f))


def fast_non_dominated_sort(population: list[Individual]) -> list[list[int]]:
    """Assign ranks in place; return the fronts as index lists."""
    n = len(population)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: list[list[int]] = [[]]
    for i in range(n):
        for j in range(i + 1, n):
            if constrained_dominates(population[i], population[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif constrained_dominates(population[j], population[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
        if domination_count[i] == 0:
            population[i].rank = 0
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    population[j].rank = current + 1
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # trailing empty front
    return fronts


def crowding_distance(population: list[Individual], front: list[int]) -> None:
    """Assign crowding distances in place for one front."""
    size = len(front)
    for i in front:
        population[i].crowding = 0.0
    if size <= 2:
        for i in front:
            population[i].crowding = np.inf
        return
    n_obj = len(population[front[0]].f)
    for m in range(n_obj):
        ordered = sorted(front, key=lambda i: population[i].f[m])
        low = population[ordered[0]].f[m]
        high = population[ordered[-1]].f[m]
        population[ordered[0]].crowding = np.inf
        population[ordered[-1]].crowding = np.inf
        span = high - low
        if span == 0:
            continue
        for k in range(1, size - 1):
            gap = population[ordered[k + 1]].f[m] - population[ordered[k - 1]].f[m]
            population[ordered[k]].crowding += gap / span


class NSGA2:
    """The evolutionary loop."""

    def __init__(
        self,
        problem: Problem,
        config: NSGA2Config | None = None,
        seed: int = 0,
    ) -> None:
        self.problem = problem
        self.config = config or NSGA2Config()
        self._rng = np.random.default_rng(seed)
        self._evaluations = 0
        mutation_p = self.config.mutation_probability
        self._mutation_p = mutation_p if mutation_p is not None else 1.0 / problem.n_var

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> NSGA2Result:
        population = self._initial_population()
        self._rank_population(population)
        for _generation in range(self.config.generations):
            offspring = self._make_offspring(population)
            population = self._environmental_selection(population + offspring)
        return NSGA2Result(
            population=population,
            generations_run=self.config.generations,
            evaluations=self._evaluations,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evaluate(self, x: np.ndarray) -> Individual:
        x = self.problem.repair(x)
        f, violations = self.problem.evaluate(x)
        if f.shape != (self.problem.n_obj,):
            raise OptimizationError(
                f"problem returned {f.shape} objectives, expected ({self.problem.n_obj},)"
            )
        self._evaluations += 1
        return Individual(x=x, f=f, violation=float(np.sum(violations)))

    def _initial_population(self) -> list[Individual]:
        lower, upper = self.problem.lower, self.problem.upper
        size = self.config.population_size
        # Latin-hypercube style stratified start for better coverage.
        samples = np.empty((size, self.problem.n_var))
        for d in range(self.problem.n_var):
            strata = (np.arange(size) + self._rng.uniform(0, 1, size)) / size
            self._rng.shuffle(strata)
            samples[:, d] = lower[d] + strata * (upper[d] - lower[d])
        return [self._evaluate(samples[i]) for i in range(size)]

    def _rank_population(self, population: list[Individual]) -> list[list[int]]:
        fronts = fast_non_dominated_sort(population)
        for front in fronts:
            crowding_distance(population, front)
        return fronts

    def _tournament(self, population: list[Individual]) -> Individual:
        i, j = self._rng.integers(0, len(population), size=2)
        a, b = population[i], population[j]
        if constrained_dominates(a, b):
            return a
        if constrained_dominates(b, a):
            return b
        if a.rank != b.rank:
            return a if a.rank < b.rank else b
        if a.crowding != b.crowding:
            return a if a.crowding > b.crowding else b
        return a if self._rng.random() < 0.5 else b

    def _make_offspring(self, population: list[Individual]) -> list[Individual]:
        offspring: list[Individual] = []
        while len(offspring) < self.config.population_size:
            p1 = self._tournament(population)
            p2 = self._tournament(population)
            c1, c2 = self._sbx(p1.x, p2.x)
            offspring.append(self._evaluate(self._polynomial_mutation(c1)))
            if len(offspring) < self.config.population_size:
                offspring.append(self._evaluate(self._polynomial_mutation(c2)))
        return offspring

    def _environmental_selection(self, merged: list[Individual]) -> list[Individual]:
        fronts = self._rank_population(merged)
        survivors: list[Individual] = []
        for front in fronts:
            if len(survivors) + len(front) <= self.config.population_size:
                survivors.extend(merged[i] for i in front)
            else:
                remaining = self.config.population_size - len(survivors)
                best = sorted(front, key=lambda i: merged[i].crowding, reverse=True)
                survivors.extend(merged[i] for i in best[:remaining])
                break
        # Re-rank the survivor set so ranks/crowding reflect the new population.
        self._rank_population(survivors)
        return survivors

    def _sbx(self, x1: np.ndarray, x2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Simulated binary crossover with per-variable application."""
        c1, c2 = x1.copy(), x2.copy()
        if self._rng.random() > self.config.crossover_probability:
            return c1, c2
        eta = self.config.crossover_eta
        for d in range(self.problem.n_var):
            if self._rng.random() > 0.5 or abs(x1[d] - x2[d]) < 1e-14:
                continue
            y1, y2 = min(x1[d], x2[d]), max(x1[d], x2[d])
            u = self._rng.random()
            beta = (2 * u) ** (1.0 / (eta + 1)) if u <= 0.5 else (1.0 / (2 * (1 - u))) ** (
                1.0 / (eta + 1)
            )
            c1[d] = 0.5 * ((y1 + y2) - beta * (y2 - y1))
            c2[d] = 0.5 * ((y1 + y2) + beta * (y2 - y1))
        return c1, c2

    def _polynomial_mutation(self, x: np.ndarray) -> np.ndarray:
        eta = self.config.mutation_eta
        lower, upper = self.problem.lower, self.problem.upper
        y = x.copy()
        for d in range(self.problem.n_var):
            if self._rng.random() > self._mutation_p:
                continue
            span = upper[d] - lower[d]
            if span == 0:
                continue
            u = self._rng.random()
            if u < 0.5:
                delta = (2 * u) ** (1.0 / (eta + 1)) - 1.0
            else:
                delta = 1.0 - (2 * (1 - u)) ** (1.0 / (eta + 1))
            y[d] = x[d] + delta * span
        return y

"""NSGA-II (Deb, Pratap, Agarwal, Meyarivan — TEVC 2002).

The paper's resource share analyzer "uses NSGA-II algorithm [8] to
efficiently search the provisioning plan space" (Sec. 3.2). This is a
from-scratch implementation of the full algorithm:

* fast non-dominated sorting (dominance-matrix variant);
* crowding-distance diversity preservation;
* binary tournament selection under Deb's *constrained-dominance*
  rule (feasible beats infeasible; two infeasibles compare by total
  violation; two feasibles by rank, then crowding) over two *distinct*
  entrants per tournament;
* simulated binary crossover (SBX) and polynomial mutation, with
  bound repair and integer rounding for discrete resource counts.

The evolutionary loop is **batched**: every generation draws all of
its random numbers up front (see :meth:`NSGA2._draw_generation` for
the pinned call pattern) and then applies the variation operators and
the non-dominated sort either as numpy matrix operations
(``vectorized=True``, the default) or as per-individual Python loops
over the *same* pre-drawn numbers (``vectorized=False``). Both paths
perform identical elementwise arithmetic, so the same seed yields the
same Pareto front either way — the equivalence test suite pins this.

RNG call pattern (changing this invalidates seeded results):

1. initial population — per decision variable ``d``:
   ``uniform(0, 1, pop)`` then ``shuffle`` of the stratified column;
2. per generation, in order:
   a. ``integers(0, n, pop)``      — first tournament entrant per slot;
   b. ``integers(0, n - 1, pop)``  — second entrant, shifted past the
      first so the two are always distinct (Deb's binary tournament);
   c. ``random(pop)``              — tournament tie-break coins;
   d. ``random(pop // 2)``         — SBX per-pair crossover gates;
   e. ``random((pop // 2, n_var))``— SBX per-variable apply draws;
   f. ``random((pop // 2, n_var))``— SBX beta spread draws;
   g. ``random((pop, n_var))``     — mutation apply draws;
   h. ``random((pop, n_var))``     — mutation delta draws.

Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.core.errors import OptimizationError
from repro.optimization.problem import Problem


@dataclass
class Individual:
    """One candidate solution with its evaluation and NSGA-II metadata."""

    x: np.ndarray
    f: np.ndarray
    violation: float
    rank: int = 0
    crowding: float = 0.0

    @property
    def feasible(self) -> bool:
        return self.violation == 0.0


@dataclass(frozen=True)
class NSGA2Config:
    """Algorithm hyper-parameters (defaults follow Deb et al.)."""

    population_size: int = 100
    generations: int = 250
    crossover_probability: float = 0.9
    crossover_eta: float = 15.0
    mutation_probability: float | None = None  # default 1/n_var
    mutation_eta: float = 20.0

    def __post_init__(self) -> None:
        if self.population_size < 4 or self.population_size % 2 != 0:
            raise OptimizationError("population_size must be an even number >= 4")
        if self.generations < 1:
            raise OptimizationError("generations must be >= 1")
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise OptimizationError("crossover_probability must be in [0, 1]")
        if self.mutation_probability is not None and not 0.0 <= self.mutation_probability <= 1.0:
            raise OptimizationError("mutation_probability must be in [0, 1]")
        if self.crossover_eta <= 0 or self.mutation_eta <= 0:
            raise OptimizationError("distribution indices must be positive")


@dataclass
class NSGA2Result:
    """Final population plus the feasible first front."""

    population: list[Individual]
    generations_run: int
    evaluations: int

    @property
    def front(self) -> list[Individual]:
        """Feasible, rank-0, objective-unique individuals."""
        seen: set[tuple[float, ...]] = set()
        front: list[Individual] = []
        for ind in self.population:
            if ind.rank != 0 or not ind.feasible:
                continue
            key = tuple(np.round(ind.f, 12))
            if key in seen:
                continue
            seen.add(key)
            front.append(ind)
        return front

    @property
    def pareto_x(self) -> np.ndarray:
        front = self.front
        return np.array([ind.x for ind in front]) if front else np.empty((0, 0))

    @property
    def pareto_f(self) -> np.ndarray:
        front = self.front
        return np.array([ind.f for ind in front]) if front else np.empty((0, 0))


def constrained_dominates(a: Individual, b: Individual) -> bool:
    """Deb's constrained-dominance relation."""
    if a.feasible and not b.feasible:
        return True
    if not a.feasible and b.feasible:
        return False
    if not a.feasible and not b.feasible:
        return a.violation < b.violation
    return bool(np.all(a.f <= b.f) and np.any(a.f < b.f))


def fast_non_dominated_sort(population: list[Individual]) -> list[list[int]]:
    """Assign ranks in place; return the fronts as index lists."""
    n = len(population)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: list[list[int]] = [[]]
    for i in range(n):
        for j in range(i + 1, n):
            if constrained_dominates(population[i], population[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif constrained_dominates(population[j], population[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
        if domination_count[i] == 0:
            population[i].rank = 0
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    population[j].rank = current + 1
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # trailing empty front
    return fronts


def crowding_distance(population: list[Individual], front: list[int]) -> None:
    """Assign crowding distances in place for one front."""
    size = len(front)
    for i in front:
        population[i].crowding = 0.0
    if size <= 2:
        for i in front:
            population[i].crowding = np.inf
        return
    n_obj = len(population[front[0]].f)
    for m in range(n_obj):
        ordered = sorted(front, key=lambda i: population[i].f[m])
        low = population[ordered[0]].f[m]
        high = population[ordered[-1]].f[m]
        population[ordered[0]].crowding = np.inf
        population[ordered[-1]].crowding = np.inf
        span = high - low
        if span == 0:
            continue
        for k in range(1, size - 1):
            gap = population[ordered[k + 1]].f[m] - population[ordered[k - 1]].f[m]
            population[ordered[k]].crowding += gap / span


def dominance_matrix(F: np.ndarray, V: np.ndarray) -> np.ndarray:
    """Boolean matrix ``D[i, j]`` = "i constrained-dominates j".

    ``F`` is the ``(n, n_obj)`` objective matrix, ``V`` the ``(n,)``
    total-violation vector (0 means feasible).
    """
    feasible = V == 0.0
    less_eq = np.all(F[:, None, :] <= F[None, :, :], axis=2)
    less = np.any(F[:, None, :] < F[None, :, :], axis=2)
    pareto = less_eq & less
    fi = feasible[:, None]
    fj = feasible[None, :]
    by_violation = V[:, None] < V[None, :]
    dom = np.where(fi & fj, pareto, np.where(fi & ~fj, True, np.where(~fi & fj, False, by_violation)))
    np.fill_diagonal(dom, False)
    return dom


class _GenerationDraws(NamedTuple):
    """One generation's pre-drawn random numbers (see module docstring)."""

    entrant_a: np.ndarray  # (pop,) first tournament entrant
    entrant_b: np.ndarray  # (pop,) second entrant, distinct from the first
    tie: np.ndarray        # (pop,) tournament tie-break coins
    sbx_gate: np.ndarray   # (pop // 2,) per-pair crossover gates
    sbx_apply: np.ndarray  # (pop // 2, n_var) per-variable apply draws
    sbx_u: np.ndarray      # (pop // 2, n_var) beta spread draws
    mut_apply: np.ndarray  # (pop, n_var) mutation apply draws
    mut_u: np.ndarray      # (pop, n_var) mutation delta draws


class NSGA2:
    """The evolutionary loop (batched; vectorized by default)."""

    def __init__(
        self,
        problem: Problem,
        config: NSGA2Config | None = None,
        seed: int = 0,
        vectorized: bool = True,
    ) -> None:
        self.problem = problem
        self.config = config or NSGA2Config()
        self.vectorized = bool(vectorized)
        self._rng = np.random.default_rng(seed)
        self._evaluations = 0
        mutation_p = self.config.mutation_probability
        self._mutation_p = mutation_p if mutation_p is not None else 1.0 / problem.n_var

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> NSGA2Result:
        X, F, V = self._evaluate(self._initial_samples())
        rank, crowd = self._rank(F, V)
        for _generation in range(self.config.generations):
            draws = self._draw_generation(len(X))
            parents = self._select_parents(rank, crowd, draws)
            children = self._variation(X[parents], draws)
            Xo, Fo, Vo = self._evaluate(children)
            X, F, V, rank, crowd = self._environmental_selection(
                np.vstack([X, Xo]), np.vstack([F, Fo]), np.concatenate([V, Vo])
            )
        population = [
            Individual(
                x=X[i].copy(),
                f=F[i].copy(),
                violation=float(V[i]),
                rank=int(rank[i]),
                crowding=float(crowd[i]),
            )
            for i in range(len(X))
        ]
        return NSGA2Result(
            population=population,
            generations_run=self.config.generations,
            evaluations=self._evaluations,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Repair and evaluate a whole batch; returns ``(X, F, V)``."""
        X = self.problem.repair(np.asarray(X, dtype=float))
        F, violations = self.problem.evaluate_batch(X)
        F = np.asarray(F, dtype=float)
        violations = np.asarray(violations, dtype=float)
        if F.shape != (len(X), self.problem.n_obj):
            raise OptimizationError(
                f"problem returned {F.shape} objectives, expected ({len(X)}, {self.problem.n_obj})"
            )
        if violations.ndim != 2 or len(violations) != len(X):
            raise OptimizationError(
                f"violations must be ({len(X)}, n_con), got shape {violations.shape}"
            )
        self._evaluations += len(X)
        return X, F, violations.sum(axis=1)

    def _initial_samples(self) -> np.ndarray:
        lower, upper = self.problem.lower, self.problem.upper
        size = self.config.population_size
        # Latin-hypercube style stratified start for better coverage.
        samples = np.empty((size, self.problem.n_var))
        for d in range(self.problem.n_var):
            strata = (np.arange(size) + self._rng.uniform(0, 1, size)) / size
            self._rng.shuffle(strata)
            samples[:, d] = lower[d] + strata * (upper[d] - lower[d])
        return samples

    # ------------------------------------------------------------------
    # Sorting, crowding, ranking
    # ------------------------------------------------------------------
    def _fronts(self, F: np.ndarray, V: np.ndarray) -> list[np.ndarray]:
        """Non-dominated fronts as ascending index arrays."""
        if self.vectorized:
            return self._fronts_vectorized(F, V)
        return self._fronts_scalar(F, V)

    @staticmethod
    def _fronts_vectorized(F: np.ndarray, V: np.ndarray) -> list[np.ndarray]:
        dom = dominance_matrix(F, V)
        remaining = dom.sum(axis=0)
        assigned = np.zeros(len(F), dtype=bool)
        fronts: list[np.ndarray] = []
        while not assigned.all():
            front = np.where((remaining == 0) & ~assigned)[0]
            fronts.append(front)
            assigned[front] = True
            remaining = remaining - dom[front].sum(axis=0)
        return fronts

    @staticmethod
    def _dominates_scalar(fi: np.ndarray, vi: float, fj: np.ndarray, vj: float) -> bool:
        if vi == 0.0 and vj != 0.0:
            return True
        if vi != 0.0 and vj == 0.0:
            return False
        if vi != 0.0:
            return vi < vj
        return bool(np.all(fi <= fj) and np.any(fi < fj))

    def _fronts_scalar(self, F: np.ndarray, V: np.ndarray) -> list[np.ndarray]:
        n = len(F)
        dominated_by: list[list[int]] = [[] for _ in range(n)]
        remaining = [0] * n
        for i in range(n):
            for j in range(n):
                if i != j and self._dominates_scalar(F[i], V[i], F[j], V[j]):
                    dominated_by[i].append(j)
                    remaining[j] += 1
        assigned = [False] * n
        fronts: list[np.ndarray] = []
        while not all(assigned):
            front = [i for i in range(n) if not assigned[i] and remaining[i] == 0]
            for i in front:
                assigned[i] = True
            for i in front:
                for j in dominated_by[i]:
                    remaining[j] -= 1
            fronts.append(np.array(front, dtype=int))
        return fronts

    def _crowding(self, F: np.ndarray, front: np.ndarray) -> np.ndarray:
        """Crowding distances for one front (aligned with ``front``)."""
        size = len(front)
        if size <= 2:
            return np.full(size, np.inf)
        if self.vectorized:
            return self._crowding_vectorized(F, front)
        return self._crowding_scalar(F, front)

    def _crowding_vectorized(self, F: np.ndarray, front: np.ndarray) -> np.ndarray:
        crowd = np.zeros(len(front))
        for m in range(self.problem.n_obj):
            order = np.argsort(F[front, m], kind="stable")
            vals = F[front[order], m]
            crowd[order[0]] = np.inf
            crowd[order[-1]] = np.inf
            span = vals[-1] - vals[0]
            if span == 0:
                continue
            crowd[order[1:-1]] += (vals[2:] - vals[:-2]) / span
        return crowd

    def _crowding_scalar(self, F: np.ndarray, front: np.ndarray) -> np.ndarray:
        size = len(front)
        crowd = np.zeros(size)
        for m in range(self.problem.n_obj):
            order = sorted(range(size), key=lambda k: F[front[k], m])
            vals = [F[front[k], m] for k in order]
            crowd[order[0]] = np.inf
            crowd[order[-1]] = np.inf
            span = vals[-1] - vals[0]
            if span == 0:
                continue
            for k in range(1, size - 1):
                crowd[order[k]] += (vals[k + 1] - vals[k - 1]) / span
        return crowd

    def _rank(self, F: np.ndarray, V: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        fronts = self._fronts(F, V)
        rank = np.empty(len(F), dtype=int)
        crowd = np.empty(len(F), dtype=float)
        for r, front in enumerate(fronts):
            rank[front] = r
            crowd[front] = self._crowding(F, front)
        return rank, crowd

    # ------------------------------------------------------------------
    # Selection and variation
    # ------------------------------------------------------------------
    def _draw_generation(self, n: int) -> _GenerationDraws:
        """All random numbers for one generation, in the pinned order."""
        pop = self.config.population_size
        n_var = self.problem.n_var
        entrant_a = self._rng.integers(0, n, size=pop)
        entrant_b = self._rng.integers(0, n - 1, size=pop)
        entrant_b = entrant_b + (entrant_b >= entrant_a)  # skip a: always distinct
        return _GenerationDraws(
            entrant_a=entrant_a,
            entrant_b=entrant_b,
            tie=self._rng.random(pop),
            sbx_gate=self._rng.random(pop // 2),
            sbx_apply=self._rng.random((pop // 2, n_var)),
            sbx_u=self._rng.random((pop // 2, n_var)),
            mut_apply=self._rng.random((pop, n_var)),
            mut_u=self._rng.random((pop, n_var)),
        )

    def _select_parents(
        self, rank: np.ndarray, crowd: np.ndarray, draws: _GenerationDraws
    ) -> np.ndarray:
        """Binary tournaments: lower rank wins, then higher crowding, then coin.

        Within a ranked population constrained dominance implies a lower
        rank, so comparing ``(rank, -crowding)`` reproduces Deb's
        dominance-first tournament exactly.
        """
        a, b = draws.entrant_a, draws.entrant_b
        if self.vectorized:
            a_wins = (rank[a] < rank[b]) | ((rank[a] == rank[b]) & (crowd[a] > crowd[b]))
            tied = (rank[a] == rank[b]) & (crowd[a] == crowd[b])
            return np.where(a_wins | (tied & (draws.tie < 0.5)), a, b)
        winners = np.empty(len(a), dtype=int)
        for k in range(len(a)):
            i, j = int(a[k]), int(b[k])
            if rank[i] != rank[j]:
                winners[k] = i if rank[i] < rank[j] else j
            elif crowd[i] != crowd[j]:
                winners[k] = i if crowd[i] > crowd[j] else j
            else:
                winners[k] = i if draws.tie[k] < 0.5 else j
        return winners

    def _operator_tables(self, draws: _GenerationDraws) -> tuple[np.ndarray, np.ndarray]:
        """SBX ``beta`` and mutation ``delta`` tables from the raw draws.

        Always computed in matrix form: ``x ** y`` can differ by one ULP
        between numpy's scalar and SIMD code paths, so deriving the
        transcendental tables once and sharing them keeps the scalar and
        vectorized operator applications bit-identical.
        """
        u = draws.sbx_u
        exponent = 1.0 / (self.config.crossover_eta + 1.0)
        beta = np.where(
            u <= 0.5, (2.0 * u) ** exponent, (1.0 / (2.0 * (1.0 - u))) ** exponent
        )
        mu = draws.mut_u
        m_exponent = 1.0 / (self.config.mutation_eta + 1.0)
        delta = np.where(
            mu < 0.5,
            (2.0 * mu) ** m_exponent - 1.0,
            1.0 - (2.0 * (1.0 - mu)) ** m_exponent,
        )
        return beta, delta

    def _variation(self, parents: np.ndarray, draws: _GenerationDraws) -> np.ndarray:
        """SBX crossover on consecutive parent pairs, then polynomial mutation."""
        beta, delta = self._operator_tables(draws)
        if self.vectorized:
            return self._variation_vectorized(parents, draws, beta, delta)
        return self._variation_scalar(parents, draws, beta, delta)

    def _variation_vectorized(
        self,
        parents: np.ndarray,
        draws: _GenerationDraws,
        beta: np.ndarray,
        delta: np.ndarray,
    ) -> np.ndarray:
        pop, n_var = parents.shape
        x1, x2 = parents[0::2], parents[1::2]
        apply = (
            (draws.sbx_gate <= self.config.crossover_probability)[:, None]
            & (draws.sbx_apply <= 0.5)
            & (np.abs(x1 - x2) >= 1e-14)
        )
        y1, y2 = np.minimum(x1, x2), np.maximum(x1, x2)
        c1 = 0.5 * ((y1 + y2) - beta * (y2 - y1))
        c2 = 0.5 * ((y1 + y2) + beta * (y2 - y1))
        children = np.empty((pop, n_var))
        children[0::2] = np.where(apply, c1, x1)
        children[1::2] = np.where(apply, c2, x2)
        # Polynomial mutation over the whole offspring batch.
        span = self.problem.upper - self.problem.lower
        mutate = (draws.mut_apply <= self._mutation_p) & (span > 0)
        return np.where(mutate, children + delta * span, children)

    def _variation_scalar(
        self,
        parents: np.ndarray,
        draws: _GenerationDraws,
        beta: np.ndarray,
        delta: np.ndarray,
    ) -> np.ndarray:
        pop, n_var = parents.shape
        children = parents.copy()
        for p in range(pop // 2):
            x1, x2 = parents[2 * p], parents[2 * p + 1]
            if draws.sbx_gate[p] > self.config.crossover_probability:
                continue
            for d in range(n_var):
                if draws.sbx_apply[p, d] > 0.5 or abs(x1[d] - x2[d]) < 1e-14:
                    continue
                y1, y2 = np.minimum(x1[d], x2[d]), np.maximum(x1[d], x2[d])
                b = beta[p, d]
                children[2 * p, d] = 0.5 * ((y1 + y2) - b * (y2 - y1))
                children[2 * p + 1, d] = 0.5 * ((y1 + y2) + b * (y2 - y1))
        span = self.problem.upper - self.problem.lower
        for i in range(pop):
            for d in range(n_var):
                if draws.mut_apply[i, d] > self._mutation_p or span[d] <= 0:
                    continue
                children[i, d] = children[i, d] + delta[i, d] * span[d]
        return children

    # ------------------------------------------------------------------
    # Environmental selection
    # ------------------------------------------------------------------
    def _environmental_selection(
        self, X: np.ndarray, F: np.ndarray, V: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        fronts = self._fronts(F, V)
        target = self.config.population_size
        selected: list[int] = []
        for front in fronts:
            if len(selected) + len(front) <= target:
                selected.extend(front.tolist())
                continue
            crowd_front = self._crowding(F, front)
            remaining = target - len(selected)
            if self.vectorized:
                order = np.argsort(-crowd_front, kind="stable")[:remaining]
            else:
                order = sorted(
                    range(len(front)), key=lambda k: crowd_front[k], reverse=True
                )[:remaining]
            selected.extend(front[np.asarray(order, dtype=int)].tolist())
            break
        idx = np.asarray(selected, dtype=int)
        Xs, Fs, Vs = X[idx], F[idx], V[idx]
        # Re-rank the survivor set so ranks/crowding reflect the new population.
        rank, crowd = self._rank(Fs, Vs)
        return Xs, Fs, Vs, rank, crowd

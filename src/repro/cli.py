"""Command-line interface: the demo walk-through without the GUI.

The VLDB demonstration walked attendees through building a flow,
configuring controllers, and watching the dashboards (Sec. 4). This CLI
is the terminal version::

    python -m repro.cli demo       # build + run a managed flow, show the dashboard
    python -m repro.cli trace      # run with the flight recorder, summarise / export
    python -m repro.cli fig2       # workload dependency analysis (Fig. 2 / Eq. 2)
    python -m repro.cli pareto     # resource share analysis (Fig. 4)
    python -m repro.cli shootout   # controller comparison (Sec. 3.3)
    python -m repro.cli chaos      # fault injection + invariant audit + MTTR
    python -m repro.cli scorecard  # run health digest + baseline regression gate
    python -m repro.cli scenario   # scenario catalog: list / show / run / gate

Every command prints deterministic output; run commands accept
``--seed`` (``scenario`` carries its seeds inside the specs).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro import (
    ChaosSchedule,
    FaultKind,
    FaultSpec,
    FlowBuilder,
    FlowerError,
    LayerKind,
    clickstream_flow_spec,
)
from repro.analysis import (
    ComparisonReport,
    Scenario,
    run_scenarios,
    settling_time,
    slo_violation_rate,
)
from repro.analysis.scorecard import SMOKE_SCENARIOS as _SMOKE_SCENARIOS
from repro.chaos import recovery_times
from repro.core.config import CONTROLLER_FACTORIES
from repro.dependency import fit_linear, pearson_r
from repro.monitoring import stacked_panels
from repro.observability import FlightRecorder, chain_for, to_chrome_trace
from repro.optimization import ResourceShareAnalyzer, ShareConstraint
from repro.workload import FlashCrowdRate, ConstantRate, SinusoidalRate


def _ensure_writable(path: str) -> None:
    """Fail fast on an unwritable trace path — before simulating hours."""
    try:
        with open(path, "a"):
            pass
    except OSError as exc:
        raise SystemExit(f"cannot write trace file {path!r}: {exc}")


def _managed_run(
    duration: int,
    seed: int,
    style: str,
    reference: float,
    recorder: FlightRecorder | None = None,
    exact: bool = True,
):
    workload = SinusoidalRate(
        mean=1500.0, amplitude=1200.0, period=duration, phase=-duration // 4
    )
    builder = (
        FlowBuilder("cli-flow", seed=seed)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(workload)
        .control_all(style=style, reference=reference, period=60)
        .exact(exact)
    )
    if recorder is not None:
        builder.observe(recorder=recorder)
    return builder.build().run(duration)


def _fast_banner(exact: bool) -> None:
    """The one-line marker every --fast run prints before its output."""
    if not exact:
        print(
            "workload path: APPROXIMATE (--fast / exact=False) — "
            "statistically equivalent, not bit-comparable to exact runs"
        )


def cmd_demo(args: argparse.Namespace) -> int:
    if args.trace:
        _ensure_writable(args.trace)
    recorder = FlightRecorder() if args.trace else None
    _fast_banner(not args.fast)
    result = _managed_run(
        args.duration, args.seed, args.style, args.reference,
        recorder=recorder, exact=not args.fast,
    )
    print(result.dashboard())
    print()
    for kind in LayerKind:
        capacity = result.capacity_trace(kind)
        label = result.flow.layer(kind).resource_label
        print(f"{kind.name.lower():<10} {label:<7} "
              f"{capacity.minimum():.0f}..{capacity.maximum():.0f}")
    print(f"total cost: ${result.total_cost:.4f}")
    if recorder is not None:
        lines = recorder.to_jsonl(args.trace)
        print(f"trace: {lines} lines ({len(recorder.bus)} events, "
              f"{len(recorder.decisions)} decisions) -> {args.trace}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    if args.out:
        _ensure_writable(args.out)
    if args.chrome:
        _ensure_writable(args.chrome)
    recorder = FlightRecorder(profile=args.profile)
    result = _managed_run(
        args.duration, args.seed, args.style, args.reference, recorder=recorder
    )
    filtering = (
        args.layer or args.kind
        or args.from_tick is not None or args.to_tick is not None
    )
    if args.causal:
        chain = chain_for(result, args.causal)
        if chain is None:
            sample = ", ".join(recorder.bus.traces()[:6]) or "none recorded"
            raise SystemExit(
                f"unknown trace id {args.causal!r} (expected loop@time or "
                f"fault:<kind>@<start>); recorded ids start with: {sample}"
            )
        print(chain.describe(horizon=result.duration_seconds))
    elif filtering:
        events = recorder.bus.events
        matched = [
            e
            for e in events
            if (not args.layer or e.layer == args.layer)
            and (not args.kind or e.kind == args.kind
                 or e.kind.startswith(args.kind + "."))
            and (args.from_tick is None or e.time >= args.from_tick)
            and (args.to_tick is None or e.time <= args.to_tick)
        ]
        for event in matched:
            suffix = f"  <{event.trace}#{event.span}>" if event.trace else ""
            print(event.describe() + suffix)
        print(f"{len(matched)} / {len(events)} events matched")
    else:
        print(recorder.summary())
    if args.out:
        lines = recorder.to_jsonl(args.out)
        print(f"\ntrace: {lines} lines -> {args.out}")
    if args.chrome:
        document = to_chrome_trace(recorder, args.chrome)
        print(
            f"chrome trace: {len(document['traceEvents'])} trace events -> "
            f"{args.chrome} (open in Perfetto / chrome://tracing)"
        )
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    # Static run: the workload shape passes straight through to CPU.
    workload = SinusoidalRate(
        mean=500.0, amplitude=300.0, period=args.duration, phase=-args.duration // 4
    )
    manager = (
        FlowBuilder("cli-fig2", seed=args.seed)
        .ingestion(shards=1)
        .analytics(vms=1)
        .storage(write_units=300)
        .workload(workload)
        .build()
    )
    result = manager.run(args.duration)
    records = result.trace("AWS/Kinesis", "IncomingRecords", period=60, statistic="Sum",
                           dimensions=result.layer_dimensions[LayerKind.INGESTION])
    cpu = result.trace("Custom/Storm", "CPUUtilization", period=60,
                       dimensions=result.layer_dimensions[LayerKind.ANALYTICS])
    print(stacked_panels(
        [records, cpu],
        titles=["Ingestion Layer (Kinesis) — records/min", "Analytics Layer (Storm) — CPU %"],
    ))
    model = fit_linear(records.values, cpu.values)
    print()
    print(f"correlation: r = {pearson_r(records.values, cpu.values):+.3f}")
    print(f"dependency:  {model.equation('CPU', 'WriteCapacity')}")
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    constraints = [
        ShareConstraint.at_least(5, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.INGESTION, LayerKind.STORAGE),
    ]
    analyzer = ResourceShareAnalyzer(clickstream_flow_spec(), constraints=constraints)
    front = analyzer.analyze(budget_per_hour=args.budget, population_size=80,
                             generations=args.generations, seed=args.seed)
    print(f"budget ${args.budget:.2f}/h — {len(front)} Pareto-optimal plans")
    if not front.solutions:
        print("no feasible plan found: raise the budget or the generation count")
        return 1
    print(front.table())
    print(f"\npicked ({args.pick}): {front.pick(args.pick, seed=args.seed)}")
    return 0


def _shootout_style(
    style: str, duration: int, seed: int, reference: float, exact: bool = True
) -> list[float | None]:
    """One controller style's shootout row (module-level: sweep workers pickle it)."""
    crowd_at = duration // 4
    workload = ConstantRate(700.0) + FlashCrowdRate(
        peak=2200.0, at=crowd_at, rise_seconds=120, decay_seconds=1500
    )
    manager = (
        FlowBuilder(f"cli-{style}", seed=seed)
        .ingestion(shards=1)
        .analytics(vms=1)
        .storage(write_units=200)
        .workload(workload)
        .control_all(style=style, reference=reference, period=60)
        .exact(exact)
        .build()
    )
    result = manager.run(duration)
    util = result.utilization_trace(LayerKind.INGESTION)
    settle = settling_time(util, 0.0, 85.0, start=crowd_at, hold_seconds=300)
    return [
        100.0 * slo_violation_rate(util, "<=", 85.0),
        float(settle) if settle is not None else None,
        result.total_cost,
    ]


def cmd_shootout(args: argparse.Namespace) -> int:
    columns = ["violations_%", "settle_s", "cost_$"]
    _fast_banner(not args.fast)
    report = ComparisonReport(
        "controller comparison under a flash crowd", columns
    )
    styles = sorted(CONTROLLER_FACTORIES)
    scenarios = [
        Scenario(
            name=style,
            fn=_shootout_style,
            kwargs=dict(
                style=style, duration=args.duration, seed=args.seed,
                reference=args.reference, exact=not args.fast,
            ),
        )
        for style in styles
    ]
    for style, row in zip(styles, run_scenarios(scenarios, jobs=args.jobs)):
        report.add_row(style, row)
    print(report.render())
    print(f"\nbest on SLO violations: {report.best_row('violations_%')}")
    return 0


def _parse_fault(text: str) -> FaultSpec:
    """``KIND:START[:DURATION[:INTENSITY]]`` -> :class:`FaultSpec`."""
    parts = text.split(":")
    if not 2 <= len(parts) <= 4:
        raise SystemExit(
            f"bad --fault {text!r}: expected KIND:START[:DURATION[:INTENSITY]]"
        )
    try:
        kind = FaultKind(parts[0])
    except ValueError:
        known = ", ".join(sorted(k.value for k in FaultKind))
        raise SystemExit(f"unknown fault kind {parts[0]!r}; one of: {known}")
    try:
        start = int(parts[1])
        duration = int(parts[2]) if len(parts) > 2 else 0
        intensity = float(parts[3]) if len(parts) > 3 else 0.0
        return FaultSpec(kind=kind, start=start, duration=duration, intensity=intensity)
    except (ValueError, FlowerError) as exc:
        raise SystemExit(f"bad --fault {text!r}: {exc}")


def _default_chaos(duration: int, seed: int) -> ChaosSchedule:
    """One fault per flow layer, spaced across the run."""
    return ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=duration // 6,
                  duration=duration // 12, intensity=0.5),
        FaultSpec(kind=FaultKind.WORKER_CRASH, start=duration // 2, intensity=1),
        FaultSpec(kind=FaultKind.THROTTLE_STORM, start=2 * duration // 3,
                  duration=duration // 12, intensity=0.6),
    ), seed=seed, name="cli-default")


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.schedule:
        try:
            with open(args.schedule) as handle:
                schedule = ChaosSchedule.from_json(handle.read())
        except (OSError, ValueError, FlowerError) as exc:
            raise SystemExit(f"cannot load schedule {args.schedule!r}: {exc}")
    elif args.fault:
        schedule = ChaosSchedule(
            faults=tuple(_parse_fault(text) for text in args.fault), seed=args.seed
        )
    else:
        schedule = _default_chaos(args.duration, args.seed)

    manager = (
        FlowBuilder("cli-chaos", seed=args.seed)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(ConstantRate(1500.0))
        .control_all(style=args.style, reference=args.reference, period=60)
        .chaos(schedule)
        .build()
    )
    result = manager.run(args.duration)

    print(f"fault timeline ({schedule.name}, seed {schedule.seed}):")
    for event in result.chaos_events:
        detail = f"  {event.detail}" if event.detail else ""
        print(f"  t={event.time:>6}  {event.phase:<6} {event.fault:<15} "
              f"[{event.layer}]{detail}")

    print("\nrecovery (utilization back into band and holding):")
    for sample in recovery_times(result):
        status = (
            f"{sample.recovery_seconds:.0f}s" if sample.recovered else "NOT RECOVERED"
        )
        print(f"  {sample.fault:<15} [{sample.layer}] injected t={sample.injected_at}: {status}")

    print()
    print(result.invariants.describe())
    print(f"total cost: ${result.total_cost:.4f}")
    return 0 if result.invariants.ok else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run N flows against one region and show the arbitration story."""
    from repro.cloud.region import RegionLimits
    from repro.cloud.storm import StormConfig
    from repro.core.config import LayerControlConfig, default_adaptive_controller
    from repro.core.fleet import (
        FleetFlowSpec,
        FleetScenarioSpec,
        RegionFleetManager,
        sweep_fleet_scenarios,
    )

    def controls():
        return {
            kind: LayerControlConfig(
                controller=default_adaptive_controller(kind, reference=args.reference),
                period=60,
            )
            for kind in LayerKind
        }

    flows = [
        FleetFlowSpec(
            name=f"flow{i}",
            workload=SinusoidalRate(
                mean=1500.0 + 400.0 * i,
                amplitude=1200.0,
                period=args.duration,
                phase=args.duration // 4,
            ),
            controls=controls(),
            storm=StormConfig(records_per_vm_per_second=800),
        )
        for i in range(args.flows)
    ]
    limits = RegionLimits(
        max_instances=args.max_instances,
        max_total_shards=args.max_shards,
        max_total_write_units=args.max_write_units,
        contention_threshold=0.7,
        contention_slope=0.3,
    )
    _fast_banner(not args.fast)
    if args.sweep > 1:
        # Process-parallel policy sweep: the same region squeeze as
        # independent scenario cases (name-derived seeds), fanned over
        # the runner's pinned-context pool.
        spec_cases = [
            FleetScenarioSpec(
                name=f"fleet-case{i}",
                flows=tuple(flows),
                limits=limits,
                duration=args.duration,
                coordinate_period=(
                    None if args.no_coordinator else args.coordinate_period
                ),
                exact=not args.fast,
                batch_execution=not args.no_batch,
            )
            for i in range(args.sweep)
        ]
        cards = sweep_fleet_scenarios(spec_cases, base_seed=args.seed, jobs=args.jobs)
        for card in cards.values():
            print(card.summary())
            print()
        print(f"{len(cards)} fleet cases swept with jobs={args.jobs}")
        return 0
    fleet = RegionFleetManager(
        flows,
        limits=limits,
        seed=args.seed,
        coordinate_period=None if args.no_coordinator else args.coordinate_period,
        exact=not args.fast,
        batch_execution=not args.no_batch,
    )
    result = fleet.run(args.duration)
    print(result.summary())
    if result.coordinator is not None and result.coordinator.records:
        print("\nanalytics cap trajectory (coordinator grants per flow):")
        for spec_name in sorted(result.flows):
            trajectory = result.coordinator.bound_trajectory(
                spec_name, LayerKind.ANALYTICS
            )
            if trajectory:
                caps = " ".join(str(cap) for _t, cap in trajectory[:16])
                more = " ..." if len(trajectory) > 16 else ""
                print(f"  {spec_name}: {caps}{more}")
    denials = result.denials_by_flow()
    if denials:
        print("\nregion admission denials (absorbed by each flow's retry stack):")
        for flow_id, counts in sorted(denials.items()):
            detail = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            print(f"  {flow_id}: {detail}")
    bad = [
        flow_id
        for flow_id, flow_result in result.flows.items()
        if flow_result.invariants is not None and not flow_result.invariants.ok
    ]
    if bad:
        print(f"\nINVARIANT VIOLATIONS in: {', '.join(sorted(bad))}")
        return 1
    return 0


def cmd_scorecard(args: argparse.Namespace) -> int:
    from repro.analysis.scorecard import SMOKE_SCENARIOS, run_smoke_scenario

    if (
        args.check
        and args.out
        and Path(args.out).resolve() == Path(args.baseline_dir).resolve()
    ):
        raise SystemExit(
            f"--out and --baseline-dir both resolve to {Path(args.out).resolve()}; "
            "the gate would overwrite the committed baselines with the very "
            "cards it is checking and compare each card against itself. "
            "Write artifacts elsewhere (e.g. --out artifacts), or regenerate "
            "baselines deliberately with --out and no --check."
        )

    names = args.scenario or list(SMOKE_SCENARIOS)
    failures: list[str] = []
    for name in names:
        card = run_smoke_scenario(name, seed=args.seed, duration=args.duration)
        print(card.summary())
        # Gate before writing: the baseline is read before --out touches
        # the filesystem, so a card can never be compared against itself.
        if args.check:
            baseline_path = Path(args.baseline_dir) / f"SCORECARD_{name}_smoke.json"
            if not baseline_path.exists():
                failures.append(f"{name}: no committed baseline at {baseline_path}")
                print(f"  gate            MISSING BASELINE ({baseline_path})")
            else:
                # Class dispatch: a fleet scenario's card must be
                # compared against a fleet baseline, not coerced into a
                # single-run one.
                drifts = card.compare(card.__class__.from_json_file(baseline_path))
                if drifts:
                    failures.append(f"{name}: {len(drifts)} drifted fields")
                    print(f"  gate            DRIFT vs {baseline_path}:")
                    for drift in drifts:
                        print(f"    {drift}")
                else:
                    print(f"  gate            ok (matches {baseline_path})")
        if args.out:
            out_path = Path(args.out) / f"SCORECARD_{name}_smoke.json"
            out_path.parent.mkdir(parents=True, exist_ok=True)
            out_path.write_text(card.to_json())
            print(f"  written         {out_path}")
        print()
    if failures:
        print("scorecard gate FAILED: " + "; ".join(failures))
        print(
            "if the change is intentional, regenerate baselines with: "
            f"python -m repro.cli scorecard --out {args.baseline_dir}"
        )
        return 1
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        CATALOG_NAMES,
        CatalogMatrix,
        catalog,
        catalog_scenario,
        run_catalog,
    )

    if args.action == "list":
        scenarios = catalog(args.variant)
        print(f"scenario catalog [{args.variant}] — {len(scenarios)} scenarios")
        for name, scenario in scenarios.items():
            faults = len(scenario.chaos.faults) if scenario.chaos else 0
            budget = (
                f"${scenario.budget_usd_per_hour:.2f}/h"
                if scenario.budget_usd_per_hour is not None else "none"
            )
            print(f"  {name:<28} {scenario.controller:<9} "
                  f"{scenario.duration:>7}s  faults={faults}  budget={budget}")
            print(f"    {scenario.description}")
        return 0

    if args.action == "show":
        if not args.name:
            raise SystemExit("scenario show: a scenario NAME is required")
        print(catalog_scenario(args.name[0], args.variant).to_json(), end="")
        return 0

    # run
    out_path = Path(args.out) if args.out else None
    baseline_path = Path(args.baseline)
    if args.check and out_path and out_path.resolve() == baseline_path.resolve():
        raise SystemExit(
            f"--out and --baseline both resolve to {baseline_path.resolve()}; "
            "the gate would overwrite the committed baseline with the very "
            "matrix it is checking and compare it against itself. Write "
            "artifacts elsewhere (e.g. --out artifacts/SCORECARD_catalog.json), "
            "or regenerate the baseline deliberately with --out and no --check."
        )
    scenarios = catalog(args.variant)
    if args.name:
        unknown = sorted(set(args.name) - set(scenarios))
        if unknown:
            raise SystemExit(
                f"unknown catalog scenario {unknown[0]!r}; one of: "
                + ", ".join(CATALOG_NAMES)
            )
        scenarios = {name: scenarios[name] for name in args.name}
    _fast_banner(not args.fast)
    matrix = run_catalog(
        scenarios, variant=args.variant, jobs=args.jobs, fast=args.fast
    )
    print(matrix.summary())
    failures: list[str] = []
    # Gate before writing, mirroring the scorecard command: the
    # baseline is read before --out touches the filesystem.
    if args.check:
        if not baseline_path.exists():
            failures.append(f"no committed baseline at {baseline_path}")
            print(f"\ngate: MISSING BASELINE ({baseline_path})")
        else:
            baseline = CatalogMatrix.from_json_file(baseline_path)
            if args.name:
                # A partial run gates against the baseline restricted
                # to the same names, so unrun scenarios are not drift.
                baseline = baseline.restrict(args.name)
            try:
                drifts = matrix.compare(baseline)
            except FlowerError as exc:
                raise SystemExit(f"catalog gate: {exc}")
            if drifts:
                failures.append(f"{len(drifts)} drifted fields")
                print(f"\ngate: DRIFT vs {baseline_path}:")
                for drift in drifts:
                    print(f"  {drift}")
            else:
                print(f"\ngate: ok (matches {baseline_path})")
    if out_path:
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(matrix.to_json())
        print(f"written: {out_path}")
    if failures:
        print("catalog gate FAILED: " + "; ".join(failures))
        print(
            "if the change is intentional, regenerate the baseline with: "
            f"python -m repro.cli scenario run --out {args.baseline}"
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Flower: a data analytics flow elasticity manager (VLDB'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a managed flow and show the dashboard")
    demo.add_argument("--duration", type=int, default=2 * 3600, help="simulated seconds")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--style", choices=sorted(CONTROLLER_FACTORIES), default="adaptive")
    demo.add_argument("--reference", type=float, default=60.0,
                      help="desired utilisation (the wizard's reference value)")
    demo.add_argument("--fast", action="store_true",
                      help="approximate (exact=False) workload path: statistically "
                           "equivalent, several times faster, not bit-comparable")
    demo.add_argument("--trace", default=None, metavar="PATH",
                      help="record a flight-recorder trace and write it as JSONL")
    demo.set_defaults(func=cmd_demo)

    trace = sub.add_parser(
        "trace", help="run a managed flow with the flight recorder and summarise it"
    )
    trace.add_argument("--duration", type=int, default=2 * 3600, help="simulated seconds")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--style", choices=sorted(CONTROLLER_FACTORIES), default="adaptive")
    trace.add_argument("--reference", type=float, default=60.0)
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="also export the trace as JSONL")
    trace.add_argument("--chrome", default=None, metavar="PATH",
                       help="also export a Chrome trace-event JSON file "
                            "(opens in Perfetto / chrome://tracing)")
    trace.add_argument("--profile", action="store_true",
                       help="time each component and task per tick")
    trace.add_argument("--layer", default=None,
                       help="print only events from this layer/loop")
    trace.add_argument("--kind", default=None,
                       help="print only events of this kind (prefix match on dots)")
    trace.add_argument("--from-tick", type=int, default=None, metavar="T",
                       help="print only events at simulated second >= T")
    trace.add_argument("--to-tick", type=int, default=None, metavar="T",
                       help="print only events at simulated second <= T")
    trace.add_argument("--causal", default=None, metavar="TRACE_ID",
                       help="print one reconstructed causal chain "
                            "(loop@time or fault:<kind>@<start>)")
    trace.set_defaults(func=cmd_trace)

    fig2 = sub.add_parser("fig2", help="workload dependency analysis on a static run")
    fig2.add_argument("--duration", type=int, default=3 * 3600)
    fig2.add_argument("--seed", type=int, default=7)
    fig2.set_defaults(func=cmd_fig2)

    pareto = sub.add_parser("pareto", help="resource share analysis (Fig. 4)")
    pareto.add_argument("--budget", type=float, default=1.5, help="dollars per hour")
    pareto.add_argument("--generations", type=int, default=150)
    pareto.add_argument("--seed", type=int, default=0)
    pareto.add_argument("--pick", default="balanced",
                        help="random | balanced | cheapest | max:<layer>")
    pareto.set_defaults(func=cmd_pareto)

    shootout = sub.add_parser("shootout", help="compare the four controller styles")
    shootout.add_argument("--duration", type=int, default=2 * 3600)
    shootout.add_argument("--seed", type=int, default=5)
    shootout.add_argument("--reference", type=float, default=60.0)
    shootout.add_argument("--fast", action="store_true",
                          help="approximate (exact=False) workload path")
    shootout.add_argument("--jobs", type=int, default=1,
                          help="worker processes for the style sweep "
                               "(results are identical to a serial run)")
    shootout.set_defaults(func=cmd_shootout)

    chaos = sub.add_parser(
        "chaos", help="run a managed flow under injected faults and audit recovery"
    )
    chaos.add_argument("--duration", type=int, default=2 * 3600, help="simulated seconds")
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--style", choices=sorted(CONTROLLER_FACTORIES), default="adaptive")
    chaos.add_argument("--reference", type=float, default=60.0)
    chaos.add_argument("--fault", action="append", metavar="KIND:START[:DURATION[:INTENSITY]]",
                       help="add one fault (repeatable); kinds: "
                            + ", ".join(sorted(k.value for k in FaultKind)))
    chaos.add_argument("--schedule", default=None, metavar="PATH",
                       help="load a ChaosSchedule JSON file (overrides --fault); "
                            "default scenario: one fault per layer")
    chaos.set_defaults(func=cmd_chaos)

    fleet = sub.add_parser(
        "fleet",
        help="run several flows against one region's shared account limits",
    )
    fleet.add_argument("--flows", type=int, default=3, help="number of flows")
    fleet.add_argument("--duration", type=int, default=2 * 3600, help="simulated seconds")
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--reference", type=float, default=60.0)
    fleet.add_argument("--max-instances", type=int, default=10,
                       help="account-wide EC2 instance limit")
    fleet.add_argument("--max-shards", type=int, default=12,
                       help="account-wide Kinesis shard limit")
    fleet.add_argument("--max-write-units", type=int, default=2400,
                       help="account-wide DynamoDB write-unit limit")
    fleet.add_argument("--coordinate-period", type=int, default=300,
                       help="seconds between coordinator arbitration passes")
    fleet.add_argument("--fast", action="store_true",
                       help="approximate (exact=False) workload path for every flow")
    fleet.add_argument("--sweep", type=int, default=1, metavar="N",
                       help="run the fleet as N independent scenario cases "
                            "(name-derived seeds) instead of one run")
    fleet.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --sweep (byte-identical to jobs=1)")
    fleet.add_argument("--no-batch", action="store_true",
                       help="disable the fleet-batched span executor and run "
                            "the N flow pipelines sequentially (bit-identical "
                            "per flow, slower; for perf A/B and debugging)")
    fleet.add_argument("--no-coordinator", action="store_true",
                       help="disable arbitration; region admission alone "
                            "polices the limits")
    fleet.set_defaults(func=cmd_fleet)

    scorecard = sub.add_parser(
        "scorecard",
        help="run the smoke scenarios, print their scorecards, and "
             "optionally gate against committed baselines",
    )
    scorecard.add_argument("--scenario", action="append",
                           choices=list(_SMOKE_SCENARIOS),
                           help="run only this scenario (repeatable; default: all)")
    scorecard.add_argument("--seed", type=int, default=7)
    scorecard.add_argument("--duration", type=int, default=2 * 3600,
                           help="simulated seconds per scenario")
    scorecard.add_argument("--out", default=None, metavar="DIR",
                           help="write SCORECARD_<scenario>_smoke.json files here")
    scorecard.add_argument("--check", action="store_true",
                           help="fail (exit 1) if any deterministic field drifts "
                                "from the committed baseline")
    scorecard.add_argument("--baseline-dir", default="results", metavar="DIR",
                           help="where committed baselines live (default: results)")
    scorecard.set_defaults(func=cmd_scorecard)

    scenario = sub.add_parser(
        "scenario",
        help="list, inspect, or run the declarative scenario catalog "
             "and gate its scorecard matrix",
    )
    scenario.add_argument("action", choices=("list", "show", "run"),
                          help="list the catalog, show one spec as JSON, "
                               "or run scenarios and score them")
    scenario.add_argument("name", nargs="*", metavar="NAME",
                          help="catalog scenario name(s); default for run: all")
    scenario.add_argument("--variant", choices=("smoke", "full"), default="smoke",
                          help="horizon variant (smoke: 2 h, the CI gate; "
                               "full: a day or more)")
    scenario.add_argument("--jobs", type=int, default=1,
                          help="worker processes for the run "
                               "(matrix is byte-identical at any value)")
    scenario.add_argument("--fast", action="store_true",
                          help="approximate (exact=False) workload path for every "
                               "scenario; the matrix then refuses to gate against "
                               "the exact committed baseline")
    scenario.add_argument("--out", default=None, metavar="PATH",
                          help="write the scorecard matrix JSON here")
    scenario.add_argument("--check", action="store_true",
                          help="fail (exit 1) if any scenario's card drifts from "
                               "the committed baseline matrix")
    scenario.add_argument("--baseline", default="results/SCORECARD_catalog.json",
                          metavar="PATH",
                          help="committed baseline matrix "
                               "(default: results/SCORECARD_catalog.json)")
    scenario.set_defaults(func=cmd_scenario)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Controller shoot-out (paper Sec. 3.3).

Drives the same flash-crowd workload with all four controller designs —
Flower's adaptive multi-stage-gain controller (Eq. 6-7 with memory),
the fixed-gain baseline [12], the quasi-adaptive baseline [14], and a
rule-based threshold autoscaler [1] — and compares SLO compliance,
settling time, throttling and cost.

Run with:  python examples/controller_shootout.py
"""

from repro import FlowBuilder, LayerKind
from repro.analysis import ComparisonReport, settling_time, slo_violation_rate
from repro.workload import ConstantRate, FlashCrowdRate

DURATION = 2 * 3600
CROWD_AT = 1800
SLO = 85.0
STYLES = ("adaptive", "fixed", "quasi", "rule")


def workload():
    return ConstantRate(700.0) + FlashCrowdRate(
        peak=2200.0, at=CROWD_AT, rise_seconds=120, decay_seconds=1500
    )


def run(style: str):
    manager = (
        FlowBuilder(f"shootout-{style}", seed=5)
        .ingestion(shards=1)
        .analytics(vms=1)
        .storage(write_units=200)
        .workload(workload())
        .control_all(style=style, reference=60.0, period=60)
        .build()
    )
    result = manager.run(DURATION)
    util = result.utilization_trace(LayerKind.INGESTION)
    settle = settling_time(util, 0.0, SLO, start=CROWD_AT, hold_seconds=300)
    return {
        "SLO violations %": 100.0 * slo_violation_rate(util, "<=", SLO),
        "settling s": float(settle) if settle is not None else None,
        "throttled records": sum(result.throttle_trace(LayerKind.INGESTION).values),
        "cost $": result.total_cost,
    }


def main() -> None:
    columns = ["SLO violations %", "settling s", "throttled records", "cost $"]
    report = ComparisonReport(
        f"Flash crowd at t={CROWD_AT}s (700 -> ~2900 rec/s), SLO util <= {SLO:.0f}%",
        columns,
    )
    for style in STYLES:
        print(f"running {style} ...")
        outcome = run(style)
        report.add_row(style, [outcome[c] for c in columns])
    print()
    print(report.render())
    print(f"\nbest on SLO violations: {report.best_row('SLO violations %')}")
    print(f"best on settling time:  {report.best_row('settling s')}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Advanced scenario: failures, dashboard reads and budget windows.

Combines three production concerns on top of the basic managed flow:

* **VM failure injection** — two analytics VMs die mid-run; the CPU
  controller replaces them;
* **read-capacity control** — the demo's sliding-window dashboard reads
  the aggregates, and a fourth controller manages the DynamoDB read
  units independently of the write units;
* **time-windowed resource shares** — a small night budget and a
  generous peak budget, solved per window by NSGA-II and enforced as
  controller bounds that switch at the window boundary.

Run with:  python examples/fault_tolerant_flow.py
"""

from repro import FlowBuilder, LayerKind
from repro.cloud.storm import StormConfig
from repro.core.flow import clickstream_flow_spec
from repro.optimization import BudgetWindow, ResourceShareAnalyzer, analyze_windows
from repro.simulation.faults import ScheduledVMFaults
from repro.workload import RampRate, StepRate

DURATION = 4 * 3600


def main() -> None:
    # 1. Budget windows: tight for the first (night) half, generous for
    #    the second (peak) half of the run.
    analyzer = ResourceShareAnalyzer(clickstream_flow_spec())
    schedule = analyze_windows(
        analyzer,
        [
            BudgetWindow(0, DURATION // 2, budget_per_hour=0.6),
            BudgetWindow(DURATION // 2, DURATION, budget_per_hour=2.0),
        ],
        pick="balanced",
        population_size=60,
        generations=80,
    )
    print("per-window resource shares (NSGA-II):")
    print(schedule.table())

    # 2. The managed flow: ramping click volume, stepped dashboard reads.
    manager = (
        FlowBuilder("fault-tolerant", seed=23)
        .ingestion(shards=2)
        .analytics(vms=3, storm=StormConfig(records_per_vm_per_second=1000))
        .storage(write_units=200)
        .workload(RampRate(800, 3200, t0=0, t1=DURATION))
        .reads(StepRate(base=40, level=180, at=DURATION // 2), read_units=100,
               style="adaptive", reference=60.0)
        .control_all(style="adaptive", reference=60.0, period=60)
        .share_schedule(schedule)
        .build()
    )

    # 3. Kill two analytics VMs one hour in.
    faults = ScheduledVMFaults(manager.fleet, kill_times=[3600, 3605])
    manager.engine.add_component(faults)

    result = manager.run(DURATION)

    print()
    print(result.dashboard())
    print()
    print(f"injected failures: {[(e.time, e.instance_id) for e in faults.events]}")
    vms = result.trace("Custom/Storm", "RunningVMs",
                       dimensions=result.layer_dimensions[LayerKind.ANALYTICS])
    print(f"VM count range: {vms.minimum():.0f}..{vms.maximum():.0f} "
          f"(dipped after the failures, restored by the controller)")
    rcu = result.trace("AWS/DynamoDB", "ProvisionedReadCapacityUnits",
                       dimensions=result.layer_dimensions[LayerKind.STORAGE])
    print(f"read capacity range: {rcu.minimum():.0f}..{rcu.maximum():.0f} RCU "
          f"(followed the dashboard read step)")
    print(f"total cost: ${result.total_cost:.4f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Resource share analysis (paper Sec. 3.2, Fig. 4).

Answers the paper's question: "Given the budget and estimated
dependencies between workloads, what would be the maximum share of
resources for each layer in a data analytics flow?"

Shows three variants:
  * the paper's own example constraints (5*r_A >= r_I, 2*r_A <= r_I,
    2*r_I <= r_S);
  * constraints derived from a *fitted* regression dependency;
  * how the front shifts when the budget doubles.

Run with:  python examples/resource_share_analysis.py
"""

from repro import LayerKind, clickstream_flow_spec
from repro.dependency import fit_linear
from repro.dependency.analyzer import DependencyModel, MetricRef
from repro.optimization import ResourceShareAnalyzer, ShareConstraint


def paper_example():
    print("=" * 72)
    print("Fig. 4 — the paper's example constraints, budget $1.50/hour")
    print("=" * 72)
    constraints = [
        ShareConstraint.at_least(5, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.INGESTION, LayerKind.STORAGE),
    ]
    for constraint in constraints:
        print(f"  constraint: {constraint.describe()}")
    analyzer = ResourceShareAnalyzer(clickstream_flow_spec(), constraints=constraints)
    front = analyzer.analyze(budget_per_hour=1.5, population_size=80,
                             generations=150, seed=0)
    print(front.table())
    print(f"\n  random pick (paper's default): {front.pick('random', seed=1)}")
    print(f"  balanced pick:                 {front.pick('balanced')}")
    print(f"  cheapest pick:                 {front.pick('cheapest')}")
    return analyzer


def fitted_dependency_example():
    print()
    print("=" * 72)
    print("Eq. 5 from a fitted dependency: r_A tied to r_I by regression")
    print("=" * 72)
    # Synthetic workload log: analytics units track ingestion units as
    # a_needed ~ 0.45 * shards + 0.8 with some scatter.
    shards = [2, 3, 4, 5, 6, 8, 10, 12, 14, 16]
    vms = [1.6, 2.2, 2.5, 3.1, 3.5, 4.4, 5.3, 6.2, 7.0, 8.1]
    fitted = fit_linear(shards, vms)
    model = DependencyModel(
        source=MetricRef(LayerKind.INGESTION, "Shards"),
        target=MetricRef(LayerKind.ANALYTICS, "VMs"),
        result=fitted,
    )
    print(f"  fitted dependency: {model.equation()}  (r={fitted.r:.3f})")
    lower, upper = ShareConstraint.from_dependency(
        model, target=LayerKind.ANALYTICS, source=LayerKind.INGESTION,
        tolerance_sigmas=3.0,
    )
    analyzer = ResourceShareAnalyzer(
        clickstream_flow_spec(), constraints=[lower, upper]
    )
    front = analyzer.analyze(budget_per_hour=1.5, population_size=80,
                             generations=150, seed=0)
    print(front.table())


def budget_sweep(analyzer: ResourceShareAnalyzer):
    print()
    print("=" * 72)
    print("Budget sweep — how the Pareto frontier moves with money")
    print("=" * 72)
    print(f"  {'budget $/h':>10}  {'plans':>5}  {'max shards':>10}  "
          f"{'max VMs':>8}  {'max WCU':>8}")
    for budget in (0.75, 1.5, 3.0):
        front = analyzer.analyze(budget_per_hour=budget, population_size=80,
                                 generations=120, seed=0)
        print(
            f"  {budget:>10.2f}  {len(front):>5}  "
            f"{max(s.ingestion for s in front.solutions):>10}  "
            f"{max(s.analytics for s in front.solutions):>8}  "
            f"{max(s.storage for s in front.solutions):>8}"
        )


def main() -> None:
    analyzer = paper_example()
    fitted_dependency_example()
    budget_sweep(analyzer)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: manage a click-stream analytics flow with Flower.

Builds the paper's reference flow (Fig. 1: Kinesis -> Storm -> DynamoDB),
attaches Flower's adaptive controllers to all three layers, drives it
with a diurnal click-stream for two simulated hours, and prints the
consolidated dashboard plus the run's cost.

Run with:  python examples/quickstart.py
"""

from repro import FlowBuilder, LayerKind
from repro.workload import SinusoidalRate


def main() -> None:
    # A traffic cycle compressed into the run window: ~300 -> ~2700 rec/s.
    workload = SinusoidalRate(mean=1500.0, amplitude=1200.0, period=2 * 3600,
                              phase=-1800)

    manager = (
        FlowBuilder("click-stream-analytics", seed=7)
        .ingestion(shards=2)          # Amazon Kinesis
        .analytics(vms=2)             # Apache Storm on EC2
        .storage(write_units=300)     # Amazon DynamoDB
        .workload(workload)
        .control_all(style="adaptive", reference=60.0, period=60)
        .build()
    )

    result = manager.run(2 * 3600)

    print(result.dashboard())
    print()
    for kind in LayerKind:
        capacity = result.capacity_trace(kind)
        utilization = result.utilization_trace(kind)
        label = result.flow.layer(kind).resource_label
        print(
            f"{kind.name.lower():<10} {label:<7} "
            f"range {capacity.minimum():.0f}..{capacity.maximum():.0f}   "
            f"mean utilization {utilization.mean():.1f}%"
        )
    print(f"\nTotal cost of the run: ${result.total_cost:.4f}")
    print(f"Controller actions: " + ", ".join(
        f"{kind.name.lower()}={result.loops[kind].actions_taken}" for kind in LayerKind
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cross-platform monitoring and alerting (paper Sec. 3.4).

Shows the "all-in-one-place visualizer": one dashboard consolidating
Kinesis, Storm and DynamoDB measures, with alert rules firing on
cross-layer conditions, plus CSV/JSON export of the collected data.

Run with:  python examples/monitoring_dashboard.py
"""

import tempfile
from pathlib import Path

from repro import FlowBuilder
from repro.monitoring import AlertManager, AlertRule, snapshots_to_csv, snapshots_to_json
from repro.workload import ConstantRate, FlashCrowdRate


def main() -> None:
    # An under-provisioned flow hit by a flash crowd, so alerts fire.
    workload = ConstantRate(800.0) + FlashCrowdRate(
        peak=1800.0, at=1200, rise_seconds=60, decay_seconds=600
    )
    manager = (
        FlowBuilder("monitored-flow", seed=9)
        .ingestion(shards=1)
        .analytics(vms=1)
        .storage(write_units=150)
        .workload(workload)
        .build()
    )

    # Alert rules over the consolidated snapshots — one rule set across
    # all three platforms, instead of one UI per system.
    alerts = AlertManager(rules=[
        AlertRule("ingestion.util%", ">", 90.0, "Kinesis shards near write limit"),
        AlertRule("ingestion.throttled", ">", 0.0, "Kinesis throttling writes"),
        AlertRule("analytics.cpu%", ">", 85.0, "Storm cluster CPU hot"),
        AlertRule("analytics.pending", ">", 10_000.0, "Storm tuple backlog growing"),
        AlertRule("storage.throttled", ">", 0.0, "DynamoDB throttling writes"),
    ])

    result = manager.run(3600)

    print(result.dashboard())
    print()
    print("alert firings (evaluated on each 1-minute snapshot):")
    fired_total = 0
    for snapshot in result.collector.snapshots:
        for alert in alerts.check(snapshot):
            fired_total += 1
            if fired_total <= 12:
                print(f"  {alert}")
    if fired_total > 12:
        print(f"  ... and {fired_total - 12} more")
    print(f"total alerts: {fired_total}")

    # Export the consolidated data for external tooling.
    out_dir = Path(tempfile.mkdtemp(prefix="flower-monitoring-"))
    snapshots_to_csv(result.collector.snapshots, out_dir / "snapshots.csv")
    snapshots_to_json(result.collector.snapshots, out_dir / "snapshots.json")
    print(f"\nexported snapshots to {out_dir}/snapshots.csv and .json")


if __name__ == "__main__":
    main()

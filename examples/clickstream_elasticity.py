#!/usr/bin/env python3
"""The full Flower workflow on the click-stream flow (paper Fig. 3).

Reproduces the demo walk-through end to end, programmatically:

1. **Workload dependency analysis** (Sec. 3.1) — run the flow statically
   to collect workload logs, then regress cross-layer measures (Eq. 1)
   to recover the Eq. 2 style dependency model.
2. **Resource share analysis** (Sec. 3.2) — feed the budget and the
   learned dependency into NSGA-II and pick a Pareto-optimal allocation.
3. **Resource provisioning** (Sec. 3.3) — run the flow under Flower's
   adaptive controllers, starting from the picked allocation.
4. **Cross-platform monitoring** (Sec. 3.4) — show the all-in-one-place
   dashboard of the managed run.

Run with:  python examples/clickstream_elasticity.py
"""

from repro import FlowBuilder, LayerKind, clickstream_flow_spec
from repro.dependency import WorkloadDependencyAnalyzer
from repro.optimization import ResourceShareAnalyzer, ShareConstraint
from repro.simulation import derive_rng
from repro.workload import NoisyRate, SinusoidalRate

SEED = 11
CALIBRATION = 3 * 3600
PRODUCTION = 4 * 3600
BUDGET_PER_HOUR = 1.0


def workload(horizon: int):
    base = SinusoidalRate(mean=900.0, amplitude=600.0, period=horizon, phase=-horizon // 4)
    return NoisyRate(base, derive_rng(SEED, "workload.noise"), horizon=horizon, sigma=0.08)


def step1_dependency_analysis():
    print("=" * 72)
    print("Step 1 — workload dependency analysis (statically provisioned run)")
    print("=" * 72)
    calibration = (
        FlowBuilder("calibration", seed=SEED)
        .ingestion(shards=2)
        .analytics(vms=1)
        .storage(write_units=300)
        .workload(workload(CALIBRATION))
        .build()
        .run(CALIBRATION)
    )
    analyzer = WorkloadDependencyAnalyzer(min_abs_r=0.7, alpha=0.01)
    analyzer.add_series(
        LayerKind.INGESTION, "IncomingRecords",
        calibration.trace("AWS/Kinesis", "IncomingRecords", period=60, statistic="Sum",
                          dimensions=calibration.layer_dimensions[LayerKind.INGESTION]),
    )
    analyzer.add_series(
        LayerKind.ANALYTICS, "CPUUtilization",
        calibration.trace("Custom/Storm", "CPUUtilization", period=60,
                          dimensions=calibration.layer_dimensions[LayerKind.ANALYTICS]),
    )
    analyzer.add_series(
        LayerKind.STORAGE, "ConsumedWCU",
        calibration.trace("AWS/DynamoDB", "ConsumedWriteCapacityUnits", period=60,
                          statistic="Sum",
                          dimensions=calibration.layer_dimensions[LayerKind.STORAGE]),
    )
    models = analyzer.analyze()
    print(f"significant cross-layer dependencies found: {len(models)}")
    for model in models:
        print(f"  {model}")
    return models


def step2_share_analysis():
    print()
    print("=" * 72)
    print(f"Step 2 — resource share analysis (budget ${BUDGET_PER_HOUR:.2f}/h, NSGA-II)")
    print("=" * 72)
    constraints = [
        ShareConstraint.at_least(5, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.INGESTION, LayerKind.STORAGE),
    ]
    analyzer = ResourceShareAnalyzer(clickstream_flow_spec(), constraints=constraints)
    front = analyzer.analyze(budget_per_hour=BUDGET_PER_HOUR,
                             population_size=80, generations=150, seed=SEED)
    print(front.table())
    picked = front.pick("balanced")
    print(f"\npicked allocation (balanced): {picked}")
    return picked


def step3_managed_run(picked):
    print()
    print("=" * 72)
    print("Step 3 — adaptive provisioning within the picked upper bounds")
    print("=" * 72)
    manager = (
        FlowBuilder("production", seed=SEED)
        .ingestion(shards=max(1, picked.ingestion // 2))
        .analytics(vms=max(1, picked.analytics // 2))
        .storage(write_units=max(1, picked.storage // 2))
        .workload(workload(PRODUCTION))
        .control_all(style="adaptive", reference=60.0, period=60)
        .build()
    )
    result = manager.run(PRODUCTION)
    for kind in LayerKind:
        capacity = result.capacity_trace(kind)
        bound = picked[kind]
        print(
            f"  {kind.name.lower():<10} scaled "
            f"{capacity.minimum():.0f}..{capacity.maximum():.0f} "
            f"(share-analysis upper bound: {bound})"
        )
    print(f"  total cost: ${result.total_cost:.4f} "
          f"(budget would allow ${BUDGET_PER_HOUR * PRODUCTION / 3600:.2f})")
    return result


def step4_monitoring(result):
    print()
    print("=" * 72)
    print("Step 4 — cross-platform monitoring (all-in-one-place view)")
    print("=" * 72)
    print(result.dashboard())


def main() -> None:
    models = step1_dependency_analysis()
    picked = step2_share_analysis()
    result = step3_managed_run(picked)
    step4_monitoring(result)


if __name__ == "__main__":
    main()

"""E5 — Sec. 1 / [15]: holistic vs single-tier elasticity savings.

Paper (Sec. 1, citing Zhu et al. [15]): "the ability to scale down both
web servers and cache tier leads to 65% saving of the peak operational
cost, compared to 45% if we only consider resizing the web tier" — the
motivation for managing *all* layers of the flow rather than one.

This benchmark runs a deep diurnal click-stream for 24 simulated hours
under three provisioning policies:

  static-peak  — every layer held at the peak capacity the elastic run
                 needed (the baseline the savings are measured against);
  analytics-only — only the analytics tier (the flow's "web tier"
                 analogue) is elastic;
  holistic     — Flower's controllers on all three layers.

Shape target: holistic savings clearly exceed single-tier savings, in
the neighbourhood of the paper's 65 % vs 45 % split.
"""

import math

import pytest

from repro import FlowBuilder, LayerKind
from repro.analysis import ComparisonReport
from repro.cloud.storm import StormConfig
from repro.simulation import derive_rng
from repro.workload import DiurnalRate, NoisyRate

from benchmarks.conftest import write_report

DURATION = 24 * 3600
SEED = 33

#: Storm sized so the VM count (the dominant cost) tracks the workload.
STORM = StormConfig(records_per_vm_per_second=1000)


def diurnal_workload():
    base = DiurnalRate(mean=1000.0, amplitude=900.0, peak_hour=20.0)
    return NoisyRate(base, derive_rng(SEED, "diurnal.noise"), horizon=DURATION, sigma=0.05)


def build(capacities, controlled_layers):
    builder = (
        FlowBuilder("cost-savings", seed=SEED)
        .ingestion(shards=capacities[LayerKind.INGESTION])
        .analytics(vms=capacities[LayerKind.ANALYTICS], storm=STORM)
        .storage(write_units=capacities[LayerKind.STORAGE])
        .workload(diurnal_workload())
    )
    for kind in controlled_layers:
        builder = builder.control(kind, style="adaptive", reference=60.0)
    return builder.build()


@pytest.fixture(scope="module")
def scenario_costs():
    # 1. Holistic elastic run: every layer controlled. Its per-layer
    #    capacity peaks define the static-peak baseline.
    start = {LayerKind.INGESTION: 2, LayerKind.ANALYTICS: 2, LayerKind.STORAGE: 300}
    holistic = build(start, list(LayerKind)).run(DURATION)
    peaks = {
        kind: int(math.ceil(holistic.capacity_trace(kind).maximum())) for kind in LayerKind
    }

    # 2. Static peak: all layers pinned at those peaks.
    static = build(peaks, []).run(DURATION)

    # 3. Single-tier: only analytics elastic, other layers at peak.
    single_caps = dict(peaks)
    single_caps[LayerKind.ANALYTICS] = start[LayerKind.ANALYTICS]
    single = build(single_caps, [LayerKind.ANALYTICS]).run(DURATION)

    return {"static-peak": static, "analytics-only": single, "holistic": holistic}, peaks


def test_cost_savings(benchmark, scenario_costs, results_dir):
    results, peaks = scenario_costs
    benchmark.pedantic(lambda: results["static-peak"].total_cost, rounds=1, iterations=1)

    peak_cost = results["static-peak"].total_cost
    savings = {
        name: 1.0 - run.total_cost / peak_cost for name, run in results.items()
    }

    report = ComparisonReport(
        "E5 — cost vs static peak provisioning (24 h diurnal click-stream)",
        ["cost_$", "savings_%", "throttled_rec"],
    )
    for name, run in results.items():
        throttled = sum(run.throttle_trace(LayerKind.INGESTION).values)
        report.add_row(name, [run.total_cost, 100.0 * savings[name], throttled])
    lines = [
        report.render(),
        "",
        f"  peak capacities used as the static baseline: "
        f"shards={peaks[LayerKind.INGESTION]}, vms={peaks[LayerKind.ANALYTICS]}, "
        f"wcu={peaks[LayerKind.STORAGE]}",
        f"  paper ([15]): scaling all tiers ~65% savings vs ~45% web tier only",
        f"  measured:     holistic {100 * savings['holistic']:.0f}% vs "
        f"analytics-only {100 * savings['analytics-only']:.0f}%",
    ]
    write_report(results_dir, "E5_cost_savings", "\n".join(lines))

    assert savings["static-peak"] == pytest.approx(0.0, abs=1e-9)
    # The paper's shape: both save, holistic saves clearly more.
    assert savings["analytics-only"] > 0.10
    assert savings["holistic"] > savings["analytics-only"] + 0.05
    assert 0.35 <= savings["holistic"] <= 0.90
    assert 0.10 <= savings["analytics-only"] <= 0.75

"""End-to-end tick throughput vs simulation horizon.

The online loop is the part of Flower that actually runs: the manager
"periodically collects live data from multiple sources such as
CloudWatch" (Sec. 3.3) every control period, over a metric history that
grows with the horizon. Before the incremental metric pipeline every
one of those reads re-scanned the whole history, so ticks/sec *fell* as
the run got longer — quadratic total cost. This benchmark measures
ticks/sec at 1x/4x/16x horizon on a fully managed flow with co-located
CloudWatch alarms (the heaviest sensing configuration the repo wires
up) and asserts the scaling stays near-linear: throughput at 16x must
hold most of the 1x throughput instead of collapsing.

Writes ``results/BENCH_e2e.json`` with the pinned pre-change numbers
for the speedup comparison; the reduced-scale smoke variant runs in the
CI benchmark-smoke job next to the NSGA-II smoke.
"""

import json
import time

from repro import FlowBuilder
from repro.cloud import MetricAlarm
from repro.cloud.dynamodb import NAMESPACE as DDB_NS
from repro.cloud.kinesis import NAMESPACE as KINESIS_NS
from repro.cloud.storm import NAMESPACE as STORM_NS
from repro.workload import SinusoidalRate

SEED = 7
BASE_HORIZON = 1800  # seconds at 1 s ticks

#: Pre-change throughput (commit 8b4c8cc, same machine, same scenario):
#: ticks/sec fell 7022 -> 1363 from 1x to 16x as every sensor, alarm
#: and collector read re-scanned the full metric history.
BEFORE_TICKS_PER_SEC = {1: 7021.9, 4: 3997.3, 16: 1363.2}


def managed_flow(horizon: int, name: str):
    """The benchmark flow: all layers adaptive at a 30 s control period,
    plus a threshold alarm co-located on every sensed metric."""
    manager = (
        FlowBuilder(name, seed=SEED)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(SinusoidalRate(mean=1500.0, amplitude=900.0, period=horizon))
        .control_all(style="adaptive", reference=60.0, period=30)
        .build()
    )
    for ns, metric, dims in [
        (KINESIS_NS, "WriteUtilization", {"StreamName": manager.stream.name}),
        (STORM_NS, "CPUUtilization", {"Topology": manager.cluster.name}),
        (DDB_NS, "WriteUtilization", {"TableName": manager.table.name}),
    ]:
        manager.cloudwatch.put_alarm(MetricAlarm(
            name=f"high-{metric}", namespace=ns, metric_name=metric,
            threshold=90.0, period=30, evaluation_periods=2, dimensions=dims,
        ))
    manager.engine.every(30, manager.cloudwatch.evaluate_alarms, name="alarms")
    return manager


def ticks_per_second(scale: int, base_horizon: int = BASE_HORIZON) -> float:
    horizon = base_horizon * scale
    manager = managed_flow(horizon, f"tickbench-{scale}x")
    started = time.perf_counter()
    manager.run(horizon)
    return horizon / (time.perf_counter() - started)


def test_e2e_tick_throughput(results_dir):
    measured = {scale: ticks_per_second(scale) for scale in (1, 4, 16)}

    report = {
        "experiment": "E2E_tick_throughput",
        "base_horizon_seconds": BASE_HORIZON,
        "tick_seconds": 1,
        "control_period": 30,
        "seed": SEED,
        "before_ticks_per_sec": {f"{k}x": v for k, v in BEFORE_TICKS_PER_SEC.items()},
        "before_note": "seed metric pipeline (commit 8b4c8cc), same machine",
        "after_ticks_per_sec": {f"{k}x": round(v, 1) for k, v in measured.items()},
        "speedup_at_16x": round(measured[16] / BEFORE_TICKS_PER_SEC[16], 2),
        "throughput_retention_1x_to_16x": round(measured[16] / measured[1], 3),
    }
    path = results_dir / "BENCH_e2e.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    # Near-linear scaling: a 16x longer run keeps most of the short
    # run's throughput. The pre-change pipeline retained only ~19%.
    assert measured[16] >= 0.5 * measured[1], (
        f"ticks/sec collapsed with horizon: {measured[1]:.0f} at 1x vs "
        f"{measured[16]:.0f} at 16x — the metric pipeline has gone quadratic again"
    )
    # And monotone degradation stays mild at the intermediate point too.
    assert measured[4] >= 0.5 * measured[1]


def test_e2e_tick_throughput_smoke(results_dir):
    """Reduced-scale variant for CI: same scenario, 600 s base horizon.

    Uses a generous scaling bound so shared-runner noise does not flake,
    but a return to per-read full-history scans still fails here — at
    9,600 ticks the old pipeline already lost well over half its
    throughput relative to the 600-tick run.
    """
    base = 600
    short = ticks_per_second(1, base_horizon=base)
    long = ticks_per_second(16, base_horizon=base)

    report = {
        "experiment": "E2E_tick_throughput_smoke",
        "base_horizon_seconds": base,
        "ticks_per_sec_1x": round(short, 1),
        "ticks_per_sec_16x": round(long, 1),
        "retention": round(long / short, 3),
    }
    path = results_dir / "BENCH_e2e_smoke.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    assert long >= 0.35 * short, (
        f"ticks/sec fell from {short:.0f} (1x) to {long:.0f} (16x) at smoke scale"
    )

"""E1 + E8 — Fig. 2: cross-layer workload correlation.

Paper: "The data arrival rate at the ingestion layer (Kinesis in
Fig. 1) is strongly correlated (coefficient = 0.95) with the CPU load
at the analytics layer (Storm)" over a ~550-minute click-stream run,
and (Sec. 3.1) "we witnessed no correlation between the write capacity
in Kinesis and write capacity in DynamoDB".

This benchmark replays a 550-minute click-stream against the statically
provisioned flow and reports the same two correlations. Shape target:
ingestion↔analytics r >= 0.9; ingestion↔storage |r| well below the
significance bar.
"""

import pytest

from repro import LayerKind
from repro.dependency import cross_correlation, pearson_r
from repro.monitoring import stacked_panels

from benchmarks.conftest import static_fig2_run, write_report

DURATION = 550 * 60  # the paper's ~550 minute window


@pytest.fixture(scope="module")
def fig2_series():
    result = static_fig2_run(duration=DURATION, seed=7)
    dims_in = result.layer_dimensions[LayerKind.INGESTION]
    dims_an = result.layer_dimensions[LayerKind.ANALYTICS]
    dims_st = result.layer_dimensions[LayerKind.STORAGE]
    records = result.trace("AWS/Kinesis", "IncomingRecords", period=60,
                           statistic="Sum", dimensions=dims_in)
    cpu = result.trace("Custom/Storm", "CPUUtilization", period=60,
                       statistic="Average", dimensions=dims_an)
    writes = result.trace("AWS/DynamoDB", "ConsumedWriteCapacityUnits", period=60,
                          statistic="Sum", dimensions=dims_st)
    return records, cpu, writes


def test_fig2_ingestion_analytics_correlation(benchmark, fig2_series, results_dir):
    records, cpu, writes = fig2_series

    def compute():
        return pearson_r(records.values, cpu.values)

    r = benchmark.pedantic(compute, rounds=1, iterations=1)

    r_storage = pearson_r(records.values, writes.values)
    lag_scan = cross_correlation(records.values, cpu.values, max_lag=5)
    best_lag, best_r = lag_scan.best()

    lines = [
        "E1/E8 — Fig. 2: workload dependency across layers (550 min, 1-min sampling)",
        f"  samples:                          {len(records)} minutes",
        f"  input records/min:                mean={records.mean():,.0f}  "
        f"min={records.minimum():,.0f}  max={records.maximum():,.0f}",
        f"  analytics CPU %:                  mean={cpu.mean():.1f}  "
        f"min={cpu.minimum():.1f}  max={cpu.maximum():.1f}",
        f"  r(ingestion records, storm CPU):  {r:+.3f}   (paper: +0.95)",
        f"  best lag (minutes):               {best_lag} (r={best_r:+.3f})",
        f"  r(ingestion records, ddb writes): {r_storage:+.3f}   (paper: no correlation)",
        "",
        stacked_panels(
            [records, cpu],
            titles=["Ingestion Layer (Kinesis) — input records/min",
                    "Analytics Layer (Storm) — CPU %"],
        ),
    ]
    write_report(results_dir, "E1_fig2_correlation", "\n".join(lines))

    assert len(records) == DURATION // 60
    assert r >= 0.90, f"expected strong ingestion->analytics correlation, got {r}"
    assert abs(r_storage) < 0.5, (
        f"storage writes should not track raw click volume, got r={r_storage}"
    )
    assert r > abs(r_storage) + 0.3

"""Always-on telemetry overhead against the untelemetered flow.

The telemetry registry (``repro.observability.telemetry``) is sampled
only at control boundaries — controller passes record their decision
counters and step-size histogram, and the snapshot task reads gauges
from services that already computed the values for control. The data
path itself is untouched, so the budget is strict: the fully managed
flow with telemetry on must stay within 2% of the same flow with
telemetry off.

Methodology: the two arms alternate for ``REPEATS`` rounds and the
*minimum* wall time per arm is compared — min-of-repeats strips
scheduler noise from a deterministic workload (every repeat does
identical work; anything above the minimum is interference, not cost)
and interleaving the arms cancels slow machine drift that would bias
whichever arm ran second. ``results/BENCH_telemetry.json`` records
both arms and the measured overhead.
"""

import json
import os
import time

from benchmarks.test_bench_e2e_tick_throughput import SEED

from repro import FlowBuilder
from repro.workload import SinusoidalRate

#: Simulated seconds per run: long enough that per-run wall time is
#: well above timer resolution, short enough for the CI smoke job.
HORIZON = 4 * 3600

#: Interleaved wall-clock repeats per arm; the minima are compared.
REPEATS = 7

#: The contract from DESIGN.md: telemetry must cost < 2%.
BUDGET_PCT = 2.0

#: What the test actually asserts. Defaults to the strict contract
#: budget; shared CI runners see noisy-neighbor wall-clock jitter well
#: above 2% even with interleaved min-of-repeats, so the workflow
#: relaxes the assertion via this env var (the report always records
#: the measured overhead against the strict contract budget).
ASSERT_BUDGET_PCT = float(os.environ.get("TELEMETRY_OVERHEAD_BUDGET_PCT", BUDGET_PCT))


def timed_run(telemetry: bool) -> float:
    manager = (
        FlowBuilder(f"telemetry-{'on' if telemetry else 'off'}", seed=SEED)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(SinusoidalRate(mean=1500.0, amplitude=900.0, period=HORIZON))
        .control_all(style="adaptive", reference=60.0, period=60)
        .telemetry(telemetry)
        .build()
    )
    started = time.perf_counter()
    manager.run(HORIZON)
    return time.perf_counter() - started


def test_telemetry_overhead(results_dir):
    on_times: list[float] = []
    off_times: list[float] = []
    for _ in range(REPEATS):
        on_times.append(timed_run(telemetry=True))
        off_times.append(timed_run(telemetry=False))
    best_on, best_off = min(on_times), min(off_times)
    overhead_pct = 100.0 * (best_on - best_off) / best_off

    report = {
        "experiment": "telemetry_overhead",
        "horizon_seconds": HORIZON,
        "repeats": REPEATS,
        "seed": SEED,
        "budget_pct": BUDGET_PCT,
        "assert_budget_pct": ASSERT_BUDGET_PCT,
        "telemetry_on_seconds_min": round(best_on, 4),
        "telemetry_off_seconds_min": round(best_off, 4),
        "telemetry_on_seconds_all": [round(t, 4) for t in on_times],
        "telemetry_off_seconds_all": [round(t, 4) for t in off_times],
        "overhead_pct": round(overhead_pct, 2),
        "note": (
            "min-of-repeats on a deterministic workload; telemetry is "
            "sampled only at control boundaries (decisions and snapshot "
            "ticks), never in the per-tick data path"
        ),
    }
    path = results_dir / "BENCH_telemetry.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    assert overhead_pct < ASSERT_BUDGET_PCT, (
        f"telemetry costs {overhead_pct:.2f}% "
        f"({best_on:.3f}s vs {best_off:.3f}s), budget is {ASSERT_BUDGET_PCT}%"
    )

"""Span-batched execution throughput vs the per-tick reference loop.

Same fully managed scenario as the e2e tick-throughput benchmark
(adaptive control on all layers at a 30 s period, co-located alarms),
run twice at each horizon: with ``.spans(False)`` forcing the per-tick
reference loop and with span execution (the default). Both paths are
bit-identical (``tests/test_span_equivalence.py``, fig6 fingerprint),
so the ratio is pure execution overhead removed.

Context for the numbers: the click-stream generator's RNG draws
interleave *within* each tick (arrival Poisson, per-record size
log-normals, distinct-page Poisson, all on one stream), so every
bit-exact implementation must keep them as per-tick calls. At this
benchmark's rates those draws alone cost ~33.0 us/tick on the
reference machine (the ``lognormal(size=~1500)`` is ~29.3 us of it) —
a hard ceiling of ~30,300 ticks/sec for *any* bit-exact data path.
Span execution reaches about two thirds of that ceiling, roughly
doubling the per-tick loop; the remaining third is the irreducible
RNG cost plus the per-tick recurrence the backlog/throttle coupling
forces. ``results/BENCH_span.json`` records the ceiling next to the
measurements so the speedup is read against what is achievable.

The reduced-scale smoke variant runs in the CI benchmark-smoke job.
"""

import json
import time

from benchmarks.test_bench_e2e_tick_throughput import BASE_HORIZON, SEED

from repro import FlowBuilder
from repro.cloud import MetricAlarm
from repro.cloud.dynamodb import NAMESPACE as DDB_NS
from repro.cloud.kinesis import NAMESPACE as KINESIS_NS
from repro.cloud.storm import NAMESPACE as STORM_NS
from repro.workload import SinusoidalRate

#: Per-tick loop at 16x horizon after the incremental metric pipeline
#: (commit 34b78c0, same machine, same scenario) — the PR baseline.
PINNED_BEFORE_16X = 9910.0

#: Measured cost of the generator's per-tick interleaved RNG draws at
#: this scenario's rates (reference machine): the bit-exactness ceiling.
RNG_FLOOR_US_PER_TICK = 33.0
CEILING_TICKS_PER_SEC = 30_257.0


def managed_flow(horizon: int, name: str, spans: bool):
    manager = (
        FlowBuilder(name, seed=SEED)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(SinusoidalRate(mean=1500.0, amplitude=900.0, period=horizon))
        .control_all(style="adaptive", reference=60.0, period=30)
        .spans(spans)
        .build()
    )
    for ns, metric, dims in [
        (KINESIS_NS, "WriteUtilization", {"StreamName": manager.stream.name}),
        (STORM_NS, "CPUUtilization", {"Topology": manager.cluster.name}),
        (DDB_NS, "WriteUtilization", {"TableName": manager.table.name}),
    ]:
        manager.cloudwatch.put_alarm(MetricAlarm(
            name=f"high-{metric}", namespace=ns, metric_name=metric,
            threshold=90.0, period=30, evaluation_periods=2, dimensions=dims,
        ))
    manager.engine.every(30, manager.cloudwatch.evaluate_alarms, name="alarms")
    return manager


def ticks_per_second(scale: int, spans: bool, base_horizon: int = BASE_HORIZON) -> float:
    horizon = base_horizon * scale
    manager = managed_flow(horizon, f"spanbench-{scale}x", spans)
    started = time.perf_counter()
    manager.run(horizon)
    return horizon / (time.perf_counter() - started)


def test_span_throughput(results_dir):
    spanned = {scale: ticks_per_second(scale, spans=True) for scale in (1, 4, 16)}
    reference_16x = ticks_per_second(16, spans=False)

    report = {
        "experiment": "span_throughput",
        "base_horizon_seconds": BASE_HORIZON,
        "tick_seconds": 1,
        "control_period": 30,
        "seed": SEED,
        "pinned_per_tick_16x": PINNED_BEFORE_16X,
        "pinned_note": "per-tick loop at commit 34b78c0 (PR 3), same machine",
        "reference_per_tick_16x": round(reference_16x, 1),
        "span_ticks_per_sec": {f"{k}x": round(v, 1) for k, v in spanned.items()},
        "speedup_vs_reference_16x": round(spanned[16] / reference_16x, 2),
        "speedup_vs_pinned_16x": round(spanned[16] / PINNED_BEFORE_16X, 2),
        "rng_floor_us_per_tick": RNG_FLOOR_US_PER_TICK,
        "bit_exact_ceiling_ticks_per_sec": CEILING_TICKS_PER_SEC,
        "ceiling_note": (
            "the generator's interleaved per-tick RNG draws (arrival Poisson, "
            "per-record lognormal sizes, distinct-page Poisson on one stream) "
            "bound any bit-exact implementation; span throughput is read "
            "against this ceiling, not against zero overhead"
        ),
        "ceiling_fraction_reached": round(spanned[16] / CEILING_TICKS_PER_SEC, 2),
    }
    path = results_dir / "BENCH_span.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    # Spans must clearly beat the per-tick loop measured in the same
    # run (machine-independent), with margin for runner noise.
    assert spanned[16] >= 1.6 * reference_16x, (
        f"span execution only reached {spanned[16]:.0f} t/s at 16x vs "
        f"{reference_16x:.0f} t/s for the per-tick loop"
    )
    # And spans must not lose throughput as the horizon grows.
    assert spanned[16] >= 0.8 * spanned[1]


def test_span_throughput_smoke(results_dir):
    """Reduced-scale CI variant: 600 s base horizon, generous bound."""
    base = 600
    reference = ticks_per_second(4, spans=False, base_horizon=base)
    spanned = ticks_per_second(4, spans=True, base_horizon=base)

    report = {
        "experiment": "span_throughput_smoke",
        "base_horizon_seconds": base,
        "reference_ticks_per_sec_4x": round(reference, 1),
        "span_ticks_per_sec_4x": round(spanned, 1),
        "speedup": round(spanned / reference, 2),
    }
    path = results_dir / "BENCH_span_smoke.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    assert spanned >= 1.25 * reference, (
        f"span execution only reached {spanned:.0f} t/s vs {reference:.0f} t/s "
        "for the per-tick loop at smoke scale"
    )

"""E7 — ablation of the gain memory ("history of controller decisions").

Paper (Sec. 3.3): "Our control system, unlike the existing solutions,
has the feature of updating the gain parameters in multi-stages and
keeping the history of the previously computed control gains for rapid
elasticity."

This ablation subjects the flow to two *identical* load shocks
separated by a calm period. Without memory, the Eq. 6-7 controller must
re-adapt its gain from scratch on the second shock; with memory it
warm-starts from the gain the first shock converged to. Shape target:
with memory, the second shock recovers at least as fast as the first
and at least as fast as the memory-less controller's second shock, with
less throttling overall.
"""

import pytest

from repro import FlowBuilder, LayerControlConfig, LayerKind
from repro.analysis import settling_time
from repro.core.config import default_adaptive_controller
from repro.workload import ConstantRate, StepRate

from benchmarks.conftest import write_report

DURATION = 4 * 3600
SHOCK1_AT = 3600
SHOCK2_AT = 3 * 3600
SHOCK_LEN = 1800
SETTLE_BAND = 85.0


def shock_workload():
    base = ConstantRate(600.0)
    shock1 = StepRate(base=0, level=2400, at=SHOCK1_AT, until=SHOCK1_AT + SHOCK_LEN)
    shock2 = StepRate(base=0, level=2400, at=SHOCK2_AT, until=SHOCK2_AT + SHOCK_LEN)
    return base + shock1 + shock2


def slow_adapting_controller(use_memory: bool):
    """Eq. 6-7 on the ingestion layer with a deliberately slow
    adaptation rate (small gamma), the regime where the paper's gain
    memory pays: without it, every regime shift re-learns the gain over
    many control periods; with it, re-entry warm-starts instantly."""
    from repro.control import AdaptiveGainConfig, AdaptiveGainController

    return AdaptiveGainController(
        AdaptiveGainConfig(
            reference=60.0,
            gamma=0.0001,
            l_min=0.002,
            l_max=0.06,
            use_memory=use_memory,
            memory_bin_width=10.0,
            deadband=5.0,
        )
    )


def run_variant(use_memory: bool):
    controls = {
        LayerKind.INGESTION: LayerControlConfig(
            controller=slow_adapting_controller(use_memory)
        ),
        LayerKind.ANALYTICS: LayerControlConfig(
            controller=default_adaptive_controller(LayerKind.ANALYTICS, use_memory=use_memory)
        ),
        LayerKind.STORAGE: LayerControlConfig(
            controller=default_adaptive_controller(LayerKind.STORAGE, use_memory=use_memory)
        ),
    }
    from repro.core.manager import FlowElasticityManager, ServiceCapacities

    manager = FlowElasticityManager(
        workload=shock_workload(),
        capacities=ServiceCapacities(shards=2, vms=2, write_units=300),
        controls=controls,
        seed=77,
    )
    result = manager.run(DURATION)
    util = result.utilization_trace(LayerKind.INGESTION)
    throttles = sum(result.throttle_trace(LayerKind.INGESTION).values)
    settle1 = settling_time(util.slice(0, SHOCK2_AT), 0.0, SETTLE_BAND,
                            start=SHOCK1_AT, hold_seconds=300)
    settle2 = settling_time(util, 0.0, SETTLE_BAND, start=SHOCK2_AT, hold_seconds=300)
    return {"settle_shock1_s": settle1, "settle_shock2_s": settle2, "throttled": throttles}


@pytest.fixture(scope="module")
def outcomes():
    return {"with-memory": run_variant(True), "without-memory": run_variant(False)}


def test_gain_memory_ablation(benchmark, outcomes, results_dir):
    benchmark.pedantic(lambda: run_variant(True), rounds=1, iterations=1)

    with_mem = outcomes["with-memory"]
    without = outcomes["without-memory"]
    lines = [
        "E7 — gain-memory ablation (two identical 40-min shocks, 2 h apart)",
        f"  {'variant':<16} {'settle shock1':>14} {'settle shock2':>14} {'throttled':>12}",
        f"  {'-' * 60}",
    ]
    for name, out in outcomes.items():
        s1 = f"{out['settle_shock1_s']}s" if out["settle_shock1_s"] is not None else "never"
        s2 = f"{out['settle_shock2_s']}s" if out["settle_shock2_s"] is not None else "never"
        lines.append(f"  {name:<16} {s1:>14} {s2:>14} {out['throttled']:>12,.0f}")
    lines.append(
        "  (memory warm-starts the gain on regime re-entry -> rapid elasticity)"
    )
    write_report(results_dir, "E7_gain_memory_ablation", "\n".join(lines))

    assert with_mem["settle_shock2_s"] is not None
    # With memory, the second shock settles at least as fast as the first.
    if with_mem["settle_shock1_s"] is not None:
        assert with_mem["settle_shock2_s"] <= with_mem["settle_shock1_s"]
    # And at least as fast as the memory-less controller's second shock.
    if without["settle_shock2_s"] is not None:
        assert with_mem["settle_shock2_s"] <= without["settle_shock2_s"]
    # Memory never throttles more in total.
    assert with_mem["throttled"] <= without["throttled"] * 1.05

"""MTTR under injected faults: adaptive vs fixed-gain vs quasi-adaptive.

One fault per layer lands mid-run — an ingestion shard brownout, an
analytics worker crash, a storage throttle storm — and each controller
style runs the identical disturbed scenario. Recovery is the settling
time of the disturbed layer's utilization back into the healthy band
(same metric machinery as the controller shootout), read off via
:func:`repro.chaos.recovery_times`. The always-on invariant checker
audits every run; its throughput overhead is measured against an
``.invariants(False)`` twin of the same scenario.

``results/BENCH_chaos.json`` records recovery per style per fault; the
reduced smoke variant runs in the CI benchmark-smoke job.
"""

import json
import time

from repro import ChaosSchedule, FaultKind, FaultSpec, FlowBuilder
from repro.chaos import recovery_times
from repro.workload import ConstantRate

SEED = 42
DURATION = 7200
STYLES = ("adaptive", "fixed", "quasi")

#: One fault per layer, spaced so each recovery window is clean.
LAYER_FAULTS = ChaosSchedule(faults=(
    FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=1200, duration=600, intensity=0.5),
    FaultSpec(kind=FaultKind.WORKER_CRASH, start=3000, intensity=1),
    FaultSpec(kind=FaultKind.THROTTLE_STORM, start=4800, duration=600, intensity=0.6),
), seed=SEED)


def chaos_flow(style: str, schedule: ChaosSchedule, duration: int, invariants: bool = True):
    return (
        FlowBuilder(f"chaos-{style}", seed=SEED)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(ConstantRate(1500.0))
        .control_all(style=style, reference=60.0, period=30)
        .chaos(schedule)
        .invariants(invariants)
        .build()
    )


def measure_style(style: str, schedule: ChaosSchedule, duration: int):
    manager = chaos_flow(style, schedule, duration)
    result = manager.run(duration)
    samples = recovery_times(result, band_high=90.0, hold_seconds=300, period=60)
    recovery = {
        s.fault: (None if s.recovery_seconds is None else int(s.recovery_seconds))
        for s in samples
    }
    report = result.invariants
    return {
        "recovery_seconds": recovery,
        "recovered_all": all(s.recovered for s in samples),
        "invariant_checks": report.checks,
        "invariant_violations": report.total_violations,
        "total_cost": round(result.total_cost, 2),
    }


def ticks_per_second(invariants: bool, repeats: int = 3) -> float:
    best = 0.0
    for _ in range(repeats):
        manager = chaos_flow("adaptive", LAYER_FAULTS, DURATION, invariants=invariants)
        started = time.perf_counter()
        manager.run(DURATION)
        best = max(best, DURATION / (time.perf_counter() - started))
    return best


def test_chaos_recovery(results_dir):
    styles = {style: measure_style(style, LAYER_FAULTS, DURATION) for style in STYLES}

    with_checker = ticks_per_second(invariants=True)
    without_checker = ticks_per_second(invariants=False)
    overhead = max(0.0, without_checker / with_checker - 1.0)

    report = {
        "experiment": "chaos_recovery",
        "duration_seconds": DURATION,
        "seed": SEED,
        "schedule": LAYER_FAULTS.to_dict(),
        "recovery_band": "utilization settles into [0, 90] and holds 300 s",
        "styles": styles,
        "invariant_overhead": {
            "ticks_per_sec_with_checker": round(with_checker, 1),
            "ticks_per_sec_without_checker": round(without_checker, 1),
            "overhead_fraction": round(overhead, 4),
        },
    }
    path = results_dir / "BENCH_chaos.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    # The adaptive controller must recover from all three layer faults
    # within a bounded time, with a clean invariant audit.
    adaptive = styles["adaptive"]
    assert adaptive["invariant_violations"] == 0
    assert adaptive["recovered_all"], adaptive
    for fault, seconds in adaptive["recovery_seconds"].items():
        assert seconds is not None and seconds <= 1800, (fault, seconds)
    # Every style's run must keep the simulator's books clean.
    for style, row in styles.items():
        assert row["invariant_violations"] == 0, style
    # The always-on checker must cost < 5% throughput.
    assert overhead < 0.05, f"invariant checker overhead {overhead:.1%}"


def test_chaos_recovery_smoke(results_dir):
    """Reduced CI variant: adaptive only, two faults, 3600 s."""
    schedule = ChaosSchedule(faults=(
        FaultSpec(kind=FaultKind.SHARD_BROWNOUT, start=600, duration=300, intensity=0.5),
        FaultSpec(kind=FaultKind.WORKER_CRASH, start=1500, intensity=1),
    ), seed=SEED)
    row = measure_style("adaptive", schedule, 3600)

    report = {
        "experiment": "chaos_recovery_smoke",
        "duration_seconds": 3600,
        "seed": SEED,
        "schedule": schedule.to_dict(),
        "adaptive": row,
    }
    path = results_dir / "BENCH_chaos_smoke.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    assert row["invariant_violations"] == 0
    assert row["recovered_all"], row

"""NSGA-II smoke benchmark — E3 at reduced scale, for CI.

The full E3 run (population 100 x 250 generations, ~25k evaluations)
takes tens of seconds on the scalar reference path. This smoke version
runs the same constrained Eq. 3-5 problem at population 40 x 40
generations, small enough for every CI push, and checks the two
properties a perf regression would break first:

- the vectorized path still beats the scalar reference path, and
- both paths produce bit-identical Pareto fronts from the same seed
  (the determinism contract in DESIGN.md).
"""

import json
import time

from repro.core.flow import clickstream_flow_spec
from repro.optimization import ResourceShareAnalyzer

from benchmarks.test_bench_fig4_pareto import BUDGET_PER_HOUR, paper_constraints

POPULATION = 40
GENERATIONS = 40
SEED = 0


def _analyzer():
    return ResourceShareAnalyzer(clickstream_flow_spec(), constraints=paper_constraints())


def _solve(vectorized):
    analyzer = _analyzer()
    start = time.perf_counter()
    result = analyzer.analyze(
        budget_per_hour=BUDGET_PER_HOUR,
        population_size=POPULATION,
        generations=GENERATIONS,
        seed=SEED,
        vectorized=vectorized,
    )
    return result, time.perf_counter() - start


def test_nsga2_smoke(results_dir):
    vec_result, vec_seconds = _solve(vectorized=True)
    ref_result, ref_seconds = _solve(vectorized=False)

    # Same seed => identical fronts, identical pick, identical budget use.
    assert [s.shares for s in vec_result.solutions] == [s.shares for s in ref_result.solutions]
    assert [s.hourly_cost for s in vec_result.solutions] == [
        s.hourly_cost for s in ref_result.solutions
    ]
    assert vec_result.evaluations == ref_result.evaluations

    # Shape: the reduced run still finds a usable feasible front.
    assert 3 <= len(vec_result) <= 60
    for solution in vec_result.solutions:
        shares = {k: float(v) for k, v in solution.shares}
        for constraint in paper_constraints():
            assert constraint.satisfied(shares, slack=1e-6), constraint.describe()
        assert solution.hourly_cost <= BUDGET_PER_HOUR + 1e-9

    # Perf canary: generous bound (full E3 asks for >= 5x) so CI noise
    # does not flake, but a vectorization regression still fails here.
    speedup = ref_seconds / vec_seconds
    assert speedup >= 2.0, f"vectorized path only {speedup:.1f}x faster than scalar reference"

    report = {
        "experiment": "E3_smoke",
        "population": POPULATION,
        "generations": GENERATIONS,
        "seed": SEED,
        "vectorized_seconds": round(vec_seconds, 4),
        "scalar_reference_seconds": round(ref_seconds, 4),
        "speedup": round(speedup, 2),
        "pareto_solutions": len(vec_result),
        "fronts_identical": True,
    }
    path = results_dir / "BENCH_nsga2_smoke.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

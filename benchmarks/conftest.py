"""Shared fixtures and helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's figures/tables (see
DESIGN.md's experiment index) and writes its report to ``results/`` so
EXPERIMENTS.md can quote the measured rows.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Persist a benchmark's report and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report written to {path}]")


def fig2_workload(horizon: int, seed: int = 7):
    """The Fig. 2 style workload: slow drift + bursts + minute noise.

    Calibrated to stay below one shard's write capacity so the fixed
    one-VM analytics layer sees the raw workload shape (Fig. 2 was
    measured on a statically provisioned flow).
    """
    from repro.simulation import derive_rng
    from repro.workload import BurstyRate, NoisyRate, SinusoidalRate

    base = SinusoidalRate(mean=500.0, amplitude=280.0, period=horizon, phase=horizon // 4)
    bursty = BurstyRate(
        base,
        derive_rng(seed, "fig2.bursts"),
        horizon=horizon,
        bursts_per_hour=0.8,
        multiplier=1.5,
        duration_seconds=420,
    )
    return NoisyRate(bursty, derive_rng(seed, "fig2.noise"), horizon=horizon, sigma=0.12)


def static_fig2_run(duration: int = 550 * 60, seed: int = 7):
    """Run the click-stream flow with static capacity (no controllers).

    The click catalogue is sized so that a 10-second aggregation window
    saturates the hot-page set, reproducing the paper's observation
    that storage writes decouple from raw click volume.
    """
    from repro import FlowBuilder
    from repro.workload import ClickStreamConfig

    manager = (
        FlowBuilder("fig2", seed=seed)
        .ingestion(shards=1)
        .analytics(vms=1)
        .storage(write_units=300)
        .workload(
            fig2_workload(duration, seed),
            clickstream=ClickStreamConfig(catalog_pages=150),
        )
        .build()
    )
    return manager.run(duration)

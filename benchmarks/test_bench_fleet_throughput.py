"""Fleet-batched execution throughput vs the sequential baselines.

A :class:`~repro.core.fleet.RegionFleetManager` owning N flows has
three execution paths, all bit-identical per flow
(``tests/test_fleet_batched.py``, ``benchmarks/_fleet_fingerprint.py``):

* **batched** (default) — one :class:`FleetSpanExecutor` runs every
  flow's data path per shared span, splitting each flow at its *own*
  capacity events only;
* **sequential spans** (``batch_execution=False``) — N independent
  pipeline components, every flow's capacity event fragmenting the
  shared span for all N flows;
* **per-tick reference** (``span_execution=False``) — the plain tick
  loop, N component dispatches per simulated second.

This benchmark runs the same region scenario through all three modes
at 1, 4 and 16 flows (interleaved best-of-2, so machine noise hits
every mode equally) and records both ratios in
``results/BENCH_fleet.json``: batched vs the per-tick reference (the
headline, same convention as ``BENCH_span.json``) and batched vs
sequential spans (the incremental win of this PR's executor).

Context for the second ratio: more than half of the batched wall time
is work every mode shares bit-for-bit — the per-flow workload draws
(the bit-exactness RNG floor, see ``BENCH_span.json``), the control
and sensor path, and metric emission — so the span-vs-span ratio is
bounded near ~2x at this scenario's scale even though the executor
removes nearly all of the sequential span path's fragmentation
overhead. The per-tick ratio shows the full distance the batched data
path covers.

The measured 16-flow runs are also diffed per flow (series, costs,
drops — repr-exact) between the batched and sequential modes, on both
the fast and exact workload paths, so the recorded speedup is
guaranteed to be a speedup of the *same* results.

The reduced-scale smoke variant runs in the CI benchmark-smoke job.
"""

import json
import time

from repro.cloud.region import RegionLimits
from repro.cloud.storm import StormConfig
from repro.core.config import LayerControlConfig, default_adaptive_controller
from repro.core.fleet import FleetFlowSpec, RegionFleetManager
from repro.core.flow import LayerKind
from repro.workload import SinusoidalRate

SEED = 7
DURATION = 3600
CONTROL_PERIOD = 300
SNAPSHOT_PERIOD = 600


def build_fleet(n: int, *, batch: bool, span: bool = True, exact: bool = False):
    """N staggered sinusoidal flows in one generously sized region."""
    flows = [
        FleetFlowSpec(
            name=f"fleet{i:02d}",
            workload=SinusoidalRate(
                mean=2000.0 + 100.0 * i,
                amplitude=400.0,
                period=1800,
                phase=(1800 // n) * i,
            ),
            controls={
                kind: LayerControlConfig(
                    controller=default_adaptive_controller(kind),
                    period=CONTROL_PERIOD,
                )
                for kind in LayerKind
            },
            storm=StormConfig(records_per_vm_per_second=800),
        )
        for i in range(n)
    ]
    limits = RegionLimits(
        max_instances=12 * n,
        max_total_shards=12 * n,
        max_total_write_units=4000 * n,
        contention_threshold=0.95,
        contention_slope=0.3,
    )
    return RegionFleetManager(
        flows,
        limits=limits,
        seed=SEED,
        exact=exact,
        batch_execution=batch,
        span_execution=span,
        snapshot_period=SNAPSHOT_PERIOD,
    )


def run_once(n: int, *, batch: bool, span: bool = True, duration: int = DURATION):
    fleet = build_fleet(n, batch=batch, span=span)
    started = time.perf_counter()
    fleet.run(duration)
    return duration / (time.perf_counter() - started)


def flow_digests(fleet) -> dict:
    """Per-flow repr-exact digest of everything a run produced."""
    digests = {}
    for name, manager in fleet.managers.items():
        store = manager.cloudwatch
        store.flush_pending()
        series = {
            repr(key): (s.times.tolist(), repr(s.values.tolist()))
            for key, s in sorted(store._series.items())
        }
        pipeline = manager._pipeline
        costs = sorted(
            (kind, meter._unit_seconds, meter._usage_volume, meter.total_cost)
            for kind, meter in pipeline.cost_meters.items()
        )
        digests[name] = {
            "series": series,
            "costs": repr(costs),
            "dropped": (pipeline.dropped_records, pipeline.dropped_writes),
        }
    return digests


def assert_identical(n: int, *, exact: bool, duration: int) -> None:
    batched = build_fleet(n, batch=True, exact=exact)
    batched.run(duration)
    sequential = build_fleet(n, batch=False, exact=exact)
    sequential.run(duration)
    da, db = flow_digests(batched), flow_digests(sequential)
    assert sorted(da) == sorted(db)
    for name in da:
        assert da[name] == db[name], f"{name} diverged (exact={exact})"


def measure(scales, modes, *, duration: int, repeats: int = 2) -> dict:
    """Interleaved best-of-N: every mode sees the same noise regime."""
    best: dict = {mode: {n: 0.0 for n in scales} for mode, _ in modes}
    for _ in range(repeats):
        for mode, kwargs in modes:
            for n in scales:
                tps = run_once(n, duration=duration, **kwargs)
                if tps > best[mode][n]:
                    best[mode][n] = tps
    return best


MODES = [
    ("batched", {"batch": True, "span": True}),
    ("sequential_spans", {"batch": False, "span": True}),
    ("per_tick", {"batch": False, "span": False}),
]


def test_fleet_throughput(results_dir):
    scales = (1, 4, 16)
    best = measure(scales, MODES, duration=DURATION)

    ratio_ref = best["batched"][16] / best["per_tick"][16]
    ratio_seq = best["batched"][16] / best["sequential_spans"][16]

    # The recorded speedup must be a speedup of the *same* numbers:
    # per-flow repr-exact identity at full fleet width on both paths.
    assert_identical(16, exact=False, duration=1800)
    assert_identical(16, exact=True, duration=900)

    report = {
        "experiment": "fleet_throughput",
        "duration_seconds": DURATION,
        "tick_seconds": 1,
        "control_period": CONTROL_PERIOD,
        "seed": SEED,
        "ticks_per_sec": {
            mode: {f"{n}_flows": round(v, 1) for n, v in by_n.items()}
            for mode, by_n in best.items()
        },
        "speedup_vs_per_tick_16_flows": round(ratio_ref, 2),
        "speedup_vs_sequential_spans_16_flows": round(ratio_seq, 2),
        "shared_work_note": (
            "batched and sequential spans share the bit-exact per-flow "
            "workload draws, control/sensor path and metric emission "
            "(>50% of batched wall time), which bounds the span-vs-span "
            "ratio near ~2x at this scale; the per-tick ratio is the "
            "full data-path speedup, same convention as BENCH_span.json"
        ),
        "per_flow_bit_identical": {"fast_16_flows": True, "exact_16_flows": True},
    }
    path = results_dir / "BENCH_fleet.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    assert ratio_ref >= 5.0, (
        f"batched fleet reached only {ratio_ref:.2f}x the per-tick "
        f"reference at 16 flows ({best['batched'][16]:.0f} vs "
        f"{best['per_tick'][16]:.0f} t/s)"
    )
    assert ratio_seq >= 1.3, (
        f"batched fleet reached only {ratio_seq:.2f}x sequential spans "
        f"at 16 flows ({best['batched'][16]:.0f} vs "
        f"{best['sequential_spans'][16]:.0f} t/s)"
    )
    # Batching must not lose per-flow throughput as the fleet grows:
    # 16 flows do 16x the work per global tick, so compare flow-ticks.
    assert 16 * best["batched"][16] >= 0.8 * best["batched"][1]


def test_fleet_throughput_smoke(results_dir):
    """Reduced-scale CI variant: 4 flows, 1800 s, generous bounds."""
    duration = 1800
    best = measure((4,), MODES, duration=duration)
    ratio_ref = best["batched"][4] / best["per_tick"][4]
    ratio_seq = best["batched"][4] / best["sequential_spans"][4]

    assert_identical(4, exact=False, duration=duration)

    report = {
        "experiment": "fleet_throughput_smoke",
        "duration_seconds": duration,
        "ticks_per_sec": {mode: round(by_n[4], 1) for mode, by_n in best.items()},
        "speedup_vs_per_tick_4_flows": round(ratio_ref, 2),
        "speedup_vs_sequential_spans_4_flows": round(ratio_seq, 2),
    }
    path = results_dir / "BENCH_fleet_smoke.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    assert ratio_ref >= 2.0, (
        f"batched fleet reached only {ratio_ref:.2f}x the per-tick "
        "reference at smoke scale"
    )
    assert ratio_seq >= 1.05, (
        f"batched fleet reached only {ratio_seq:.2f}x sequential spans "
        "at smoke scale"
    )

"""E9 — Sec. 4 step 3: controller-parameter sensitivity.

The demo lets attendees "adjust parameters of the controllers, such as
elasticity speed, monitoring period, or even their internal settings
and compare their impacts on SLOs". This benchmark runs those sweeps:

* **monitoring period** — how often the controller acts: short periods
  react fast but act on noisy windows; long periods are blind between
  actions (the flash crowd punishes them);
* **elasticity speed** (the Eq. 7 gain ceiling ``l_max``) — timid
  ceilings under-react; generous ones risk overshoot.

Shape targets: SLO violations grow monotonically-ish with the
monitoring period under a flash crowd, and the calibrated default gain
ceiling is no worse than the timid extreme.
"""

import pytest

from repro import FlowBuilder, LayerControlConfig, LayerKind
from repro.analysis import ComparisonReport, slo_violation_rate
from repro.control import AdaptiveGainConfig, AdaptiveGainController
from repro.workload import ConstantRate, FlashCrowdRate

from benchmarks.conftest import write_report

DURATION = 2 * 3600
CROWD_AT = 1800
SLO = 85.0


def workload():
    return ConstantRate(700.0) + FlashCrowdRate(
        peak=2600.0, at=CROWD_AT, rise_seconds=120, decay_seconds=1800
    )


def run_with(period: int, l_max_scale: float = 1.0):
    def controller(kind):
        base = {"gamma": 0.001, "l_min": 0.002, "l_max": 0.05}
        if kind == LayerKind.ANALYTICS:
            base = {"gamma": 0.002, "l_min": 0.005, "l_max": 0.08}
        if kind == LayerKind.STORAGE:
            base = {"gamma": 0.2, "l_min": 0.5, "l_max": 5.0}
        return AdaptiveGainController(AdaptiveGainConfig(
            reference=60.0,
            gamma=base["gamma"],
            l_min=base["l_min"],
            l_max=base["l_max"] * l_max_scale,
            deadband=5.0,
        ))

    controls = {
        kind: LayerControlConfig(controller=controller(kind), period=period, window=period)
        for kind in LayerKind
    }
    from repro.core.manager import FlowElasticityManager, ServiceCapacities

    manager = FlowElasticityManager(
        workload=workload(),
        capacities=ServiceCapacities(shards=1, vms=1, write_units=200),
        controls=controls,
        seed=29,
    )
    result = manager.run(DURATION)
    util = result.utilization_trace(LayerKind.INGESTION)
    return {
        "violations_%": 100.0 * slo_violation_rate(util, "<=", SLO),
        "throttled": sum(result.throttle_trace(LayerKind.INGESTION).values),
        "cost_$": result.total_cost,
        "actions": sum(result.loops[kind].actions_taken for kind in LayerKind),
    }


@pytest.fixture(scope="module")
def sweeps():
    periods = {p: run_with(period=p) for p in (30, 60, 120, 300)}
    gains = {s: run_with(period=60, l_max_scale=s) for s in (0.25, 1.0, 4.0)}
    return periods, gains


def test_parameter_sensitivity(benchmark, sweeps, results_dir):
    periods, gains = sweeps
    benchmark.pedantic(lambda: run_with(period=60), rounds=1, iterations=1)

    columns = ["violations_%", "throttled", "cost_$", "actions"]
    period_report = ComparisonReport(
        "E9a — monitoring period sweep (flash crowd, SLO util <= 85%)", columns
    )
    for period, outcome in periods.items():
        period_report.add_row(f"period={period}s", [outcome[c] for c in columns])
    gain_report = ComparisonReport(
        "E9b — elasticity speed sweep (l_max scaling, period 60 s)", columns
    )
    for scale, outcome in gains.items():
        gain_report.add_row(f"l_max x{scale:g}", [outcome[c] for c in columns])
    write_report(
        results_dir,
        "E9_parameter_sensitivity",
        period_report.render() + "\n\n" + gain_report.render(),
    )

    # A 5-minute monitoring period is blind through most of the crowd:
    # clearly worse than the 1-minute default.
    assert periods[300]["violations_%"] > periods[60]["violations_%"]
    # Fast periods act much more often than slow ones.
    assert periods[30]["actions"] > periods[300]["actions"]
    # The timid gain ceiling cannot beat the calibrated default.
    assert gains[1.0]["violations_%"] <= gains[0.25]["violations_%"] + 1e-9

"""Bit-exact fingerprint of the E6 fig6 end-to-end run.

Used to verify the metric-pipeline and span-execution optimizations
preserve the PR-2 determinism contract: run before and after the change
and diff the output. Every trace value is repr()'d at full precision,
so a single ULP of drift anywhere in the run changes the hash.

Usage::

    python benchmarks/_fig6_fingerprint.py [BLOB_OUT] [--reference]

``--reference`` disables span execution and runs the per-tick loop; a
matching hash with and without the flag is the span equivalence check
the CI benchmark-smoke job performs.
"""

import hashlib
import json
import sys
import time

from repro.core.flow import LayerKind

sys.path.insert(0, ".")
from benchmarks.test_bench_fig6_e2e_elasticity import DURATION, SEED, fig6_workload  # noqa: E402

from repro import FlowBuilder  # noqa: E402


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--reference"]
    spans = "--reference" not in sys.argv[1:]
    manager = (
        FlowBuilder("fig6", seed=SEED)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(fig6_workload())
        .control_all(style="adaptive", reference=60.0, period=60)
        .spans(spans)
        .build()
    )
    started = time.perf_counter()
    run = manager.run(DURATION)
    elapsed = time.perf_counter() - started

    lines = []
    for kind in LayerKind:
        for label, trace in (
            ("util", run.utilization_trace(kind)),
            ("cap", run.capacity_trace(kind, period=300)),
            ("throttle", run.throttle_trace(kind)),
        ):
            lines.append(
                f"{kind.name}.{label} times={list(trace.times)!r} values={[repr(v) for v in trace.values]!r}"
            )
    records = run.trace(
        "AWS/Kinesis", "IncomingRecords", period=300, statistic="Sum",
        dimensions=run.layer_dimensions[LayerKind.INGESTION],
    )
    lines.append(f"records values={[repr(v) for v in records.values]!r}")
    for snap in run.collector.snapshots:
        lines.append(f"snap t={snap.time} {sorted((k, repr(v)) for k, v in snap.values.items())!r}")
    lines.append(f"cost={[(k, repr(v)) for k, v in sorted(run.cost_by_layer.items())]!r}")
    lines.append(f"dropped={run.dropped_records},{run.dropped_writes}")

    blob = "\n".join(lines).encode()
    digest = hashlib.sha256(blob).hexdigest()
    print(
        json.dumps(
            {"sha256": digest, "wall_seconds": round(elapsed, 3), "span_execution": spans}
        )
    )
    out = args[0] if args else None
    if out:
        with open(out, "wb") as f:
            f.write(blob)


if __name__ == "__main__":
    main()

"""E4 — Sec. 3.3 / companion paper [9]: controller comparison.

Paper: "Our experiments in [9] have shown that our control system
outperforms the state of the art fixed-gain [12] and quasi-adaptive
[14] counterparts", and Sec. 1 argues the rule-based autoscalers of
cloud providers "often fail to adapt to unplanned or unforeseen changes
in demand".

This benchmark drives the same three-layer flow with each controller
style through a demanding workload (step + flash crowd on a diurnal
base) and reports SLO violations, throttled records, settling time
after the step, and resource cost. Shape target: Flower's adaptive
multi-stage-gain controller is never worse than the baselines on SLO
violations and settles at least as fast as the fixed-gain and
quasi-adaptive designs.
"""

import pytest

from repro import FlowBuilder, LayerKind
from repro.analysis import ComparisonReport, settling_time, slo_violation_rate
from repro.simulation import derive_rng
from repro.workload import FlashCrowdRate, NoisyRate, SinusoidalRate, StepRate

from benchmarks.conftest import write_report

DURATION = 4 * 3600
STEP_AT = 3600
SLO_UTIL = 85.0  # SLO: ingestion write utilisation <= 85 %
STYLES = ("adaptive", "fixed", "quasi", "rule")


def shootout_workload(seed=21):
    base = SinusoidalRate(mean=800.0, amplitude=250.0, period=DURATION)
    stepped = base + StepRate(base=0, level=1800, at=STEP_AT)
    crowd = stepped + FlashCrowdRate(peak=1500, at=3 * 3600, rise_seconds=120,
                                     decay_seconds=900)
    return NoisyRate(crowd, derive_rng(seed, "shootout.noise"), horizon=DURATION, sigma=0.05)


def run_style(style: str):
    manager = (
        FlowBuilder(f"shootout-{style}", seed=21)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(shootout_workload())
        .control_all(style=style, reference=60.0, period=60)
        .build()
    )
    result = manager.run(DURATION)
    util = result.utilization_trace(LayerKind.INGESTION)
    throttles = result.throttle_trace(LayerKind.INGESTION)
    settle = settling_time(util, 0.0, SLO_UTIL, start=STEP_AT, hold_seconds=600)
    return {
        "violations_%": 100.0 * slo_violation_rate(util, "<=", SLO_UTIL),
        "throttled_rec": sum(throttles.values),
        "settle_after_step_s": float(settle) if settle is not None else None,
        "cost_$": result.total_cost,
        "actions": sum(result.loops[kind].actions_taken for kind in LayerKind),
    }


@pytest.fixture(scope="module")
def outcomes():
    return {style: run_style(style) for style in STYLES}


def test_controller_comparison(benchmark, outcomes, results_dir):
    # Benchmark one representative run (the adaptive controller).
    benchmark.pedantic(lambda: run_style("adaptive"), rounds=1, iterations=1)

    columns = ["violations_%", "throttled_rec", "settle_after_step_s", "cost_$", "actions"]
    report = ComparisonReport(
        "E4 — controller comparison (step + flash crowd, 4 h, SLO: ingestion util <= 85%)",
        columns,
    )
    for style in STYLES:
        report.add_row(style, [outcomes[style][c] for c in columns])
    write_report(results_dir, "E4_controller_comparison", report.render())

    adaptive = outcomes["adaptive"]
    # Flower's controller meets the SLO at least as well as every baseline.
    for style in ("fixed", "quasi", "rule"):
        assert adaptive["violations_%"] <= outcomes[style]["violations_%"] + 1e-9, style
    # And settles after the step at least as fast as the control-theory baselines.
    assert adaptive["settle_after_step_s"] is not None
    for style in ("fixed", "quasi"):
        other = outcomes[style]["settle_after_step_s"]
        if other is not None:
            assert adaptive["settle_after_step_s"] <= other + 1e-9, style
    # Throttling under Flower is bounded by the worst baseline by a margin.
    worst = max(outcomes[s]["throttled_rec"] for s in ("fixed", "quasi", "rule"))
    assert adaptive["throttled_rec"] <= worst

"""E2 — Eq. 2: the fitted cross-layer dependency model.

Paper (Sec. 3.1): "the dependency between the ingestion and the
analytics layers is formulated as: CPU ~= 0.0002 * WriteCapacity + 4.8"
— a linear regression of analytics CPU on the ingestion layer's write
volume (records/minute).

This benchmark runs the workload dependency analyzer over the Fig. 2
logs and reports the fitted equation. Shape targets: positive slope of
the order of 2e-4 CPU-percent per record/minute, intercept near the
4.8 % idle CPU of the topology, and a significant fit.
"""

import pytest

from repro import LayerKind
from repro.dependency import WorkloadDependencyAnalyzer
from repro.dependency.analyzer import MetricRef

from benchmarks.conftest import static_fig2_run, write_report


@pytest.fixture(scope="module")
def analyzer():
    result = static_fig2_run(duration=550 * 60, seed=7)
    analyzer = WorkloadDependencyAnalyzer(min_abs_r=0.7, alpha=0.01)
    analyzer.add_series(
        LayerKind.INGESTION,
        "WriteCapacity",
        result.trace("AWS/Kinesis", "IncomingRecords", period=60, statistic="Sum",
                     dimensions=result.layer_dimensions[LayerKind.INGESTION]),
    )
    analyzer.add_series(
        LayerKind.ANALYTICS,
        "CPU",
        result.trace("Custom/Storm", "CPUUtilization", period=60,
                     dimensions=result.layer_dimensions[LayerKind.ANALYTICS]),
    )
    return analyzer


def test_eq2_regression(benchmark, analyzer, results_dir):
    source = MetricRef(LayerKind.INGESTION, "WriteCapacity")
    target = MetricRef(LayerKind.ANALYTICS, "CPU")

    model = benchmark.pedantic(
        lambda: analyzer.fit_pair(source, target), rounds=1, iterations=1
    )
    fit = model.result
    ci_low, ci_high = fit.slope_confidence_interval(0.95)
    # The paper's worked example: CPU needed to absorb one full shard
    # (1,000 records/second = 60,000 records/minute).
    shard_cpu = model.predict(60_000)

    lines = [
        "E2 — Eq. 2: fitted dependency model (CPU on ingestion records/min)",
        f"  fitted:     {fit.equation('CPU', 'WriteCapacity')}",
        "  paper:      CPU ~ 0.0002*WriteCapacity + 4.8",
        f"  r = {fit.r:.3f}, R^2 = {fit.r_squared:.3f}, p = {fit.p_value:.2e}, n = {fit.n}",
        f"  slope 95% CI: [{ci_low:.6f}, {ci_high:.6f}]",
        f"  CPU to absorb one full shard (60k rec/min): {shard_cpu:.1f}%",
    ]
    write_report(results_dir, "E2_eq2_regression", "\n".join(lines))

    assert model.is_significant()
    assert fit.slope == pytest.approx(2e-4, rel=0.5), "slope should be ~0.0002"
    assert fit.intercept == pytest.approx(4.8, abs=1.5), "intercept should be ~4.8 (idle CPU)"
    assert ci_low > 0, "slope CI must exclude zero"


def test_eq2_analyzer_discovers_the_dependency(analyzer, benchmark, results_dir):
    """The analyze() scan must surface the Eq. 2 pair on its own."""
    models = benchmark.pedantic(analyzer.analyze, rounds=1, iterations=1)
    pairs = {(m.source.metric, m.target.metric) for m in models}
    assert ("WriteCapacity", "CPU") in pairs

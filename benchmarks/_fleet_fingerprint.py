"""Per-flow bit-exact fingerprint of a region fleet run.

The fleet execution contract (DESIGN.md) promises that batched span
execution, sequential span execution and the per-tick reference loop
produce **bit-identical per-flow results**. This script runs one fleet
scenario and prints a sha256 per flow (over every metric series at
full repr precision, the cost-meter internals and the drop counters)
plus a combined hash — run it once per mode and diff the output.

Usage::

    python benchmarks/_fleet_fingerprint.py [BLOB_OUT] [--no-batch] [--reference]

``--no-batch`` keeps span execution but disables the fleet-batched
executor (N sequential pipeline components); ``--reference`` runs the
per-tick loop. Matching hashes across all three invocations is the
fleet equivalence check the CI benchmark-smoke job performs.
"""

import hashlib
import json
import sys
import time

sys.path.insert(0, ".")
from benchmarks.test_bench_fleet_throughput import build_fleet  # noqa: E402

DURATION = 1800
FLOWS = 4


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    batch = "--no-batch" not in sys.argv[1:]
    span = "--reference" not in sys.argv[1:]
    fleet = build_fleet(FLOWS, batch=batch, span=span)
    started = time.perf_counter()
    fleet.run(DURATION)
    elapsed = time.perf_counter() - started

    blobs: dict[str, bytes] = {}
    for name, manager in sorted(fleet.managers.items()):
        store = manager.cloudwatch
        store.flush_pending()
        lines = []
        for key in sorted(store._series):
            s = store._series[key]
            lines.append(
                f"{key!r} times={s.times.tolist()!r} "
                f"values={[repr(v) for v in s.values.tolist()]!r}"
            )
        pipeline = manager._pipeline
        costs = sorted(
            (kind, repr(meter._unit_seconds), repr(meter._usage_volume),
             repr(meter.total_cost))
            for kind, meter in pipeline.cost_meters.items()
        )
        lines.append(f"cost={costs!r}")
        lines.append(f"dropped={pipeline.dropped_records},{pipeline.dropped_writes}")
        blobs[name] = "\n".join(lines).encode()

    combined = hashlib.sha256()
    flows = {}
    for name, blob in sorted(blobs.items()):
        digest = hashlib.sha256(blob).hexdigest()
        flows[name] = digest
        combined.update(name.encode())
        combined.update(digest.encode())
    print(
        json.dumps(
            {
                "sha256": combined.hexdigest(),
                "flows": flows,
                "wall_seconds": round(elapsed, 3),
                "batch_execution": fleet.batch_execution,
                "span_execution": span,
            }
        )
    )
    out = args[0] if args else None
    if out:
        with open(out, "wb") as f:
            f.write(b"\n\n".join(blobs[name] for name in sorted(blobs)))


if __name__ == "__main__":
    main()

"""Micro-benchmarks of the library's hot paths.

Not a paper artefact — these track the cost of the building blocks the
experiments lean on (engine ticks, regression fits, NSGA-II
generations, metric aggregation), so performance regressions in the
substrate are caught the same way behavioural ones are.
"""

import numpy as np

from repro import FlightRecorder, FlowBuilder
from repro.cloud import SimCloudWatch
from repro.dependency import fit_linear
from repro.optimization import NSGA2, NSGA2Config, FunctionalProblem
from repro.workload import ConstantRate


def test_perf_simulation_hour(benchmark):
    """One simulated hour of the full three-layer pipeline (3600 ticks)."""

    def run():
        manager = (
            FlowBuilder("perf", seed=1)
            .workload(ConstantRate(1000))
            .control_all(style="adaptive")
            .build()
        )
        return manager.run(3600).duration_seconds

    assert benchmark(run) == 3600


def test_perf_recorder_disabled_hour(benchmark):
    """The flight-recorder claim: a flow built *without* a recorder pays
    nothing — this run should track ``test_perf_simulation_hour`` within
    noise (<5% overhead from the instrumentation's ``None`` checks)."""

    def run():
        manager = (
            FlowBuilder("perf-unobserved", seed=1)
            .workload(ConstantRate(1000))
            .control_all(style="adaptive")
            .build()
        )
        return manager.run(3600).duration_seconds

    assert benchmark(run) == 3600


def test_perf_recorder_enabled_hour(benchmark):
    """The fully-observed flow: bus + decision log + tick profiler all
    on — the upper bound of what observability costs."""

    def run():
        recorder = FlightRecorder(profile=True)
        manager = (
            FlowBuilder("perf-observed", seed=1)
            .workload(ConstantRate(1000))
            .control_all(style="adaptive")
            .observe(recorder=recorder)
            .build()
        )
        result = manager.run(3600)
        assert result.recorder is recorder
        return result.duration_seconds

    assert benchmark(run) == 3600


def test_perf_regression_fit(benchmark):
    """OLS with full inference on a 10k-point workload log."""
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1e5, size=10_000)
    y = 2e-4 * x + 4.8 + rng.normal(0, 0.5, size=10_000)

    result = benchmark(fit_linear, x, y)
    assert result.r > 0.99


def test_perf_nsga2_generations(benchmark):
    """Fifty NSGA-II generations on the 3-objective share problem shape."""
    problem = FunctionalProblem(
        objectives=[
            lambda x: -float(x[0]) / 32,
            lambda x: -float(x[1]) / 16,
            lambda x: -float(x[2]) / 2000,
        ],
        lower=[1.0, 1.0, 1.0],
        upper=[32.0, 16.0, 2000.0],
        constraints=[lambda x: 0.015 * x[0] + 0.1 * x[1] + 0.00065 * x[2] - 1.5],
        integer=True,
    )

    def run():
        return NSGA2(problem, NSGA2Config(population_size=40, generations=50), seed=0).run()

    result = benchmark(run)
    assert result.evaluations == 40 + 40 * 50


def test_perf_metric_aggregation(benchmark):
    """Aggregating an hour of 1-second datapoints into minute averages."""
    cw = SimCloudWatch()
    for t in range(1, 3601):
        cw.put_metric_data("NS", "M", float(t % 100), t)

    def aggregate():
        return cw.get_metric_statistics("NS", "M", 0, 3600, period=60)

    datapoints = benchmark(aggregate)
    assert len(datapoints) == 60

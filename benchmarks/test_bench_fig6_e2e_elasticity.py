"""E6 — Fig. 6: live elasticity control and monitoring, end to end.

The demo's final step: "Flower will accordingly launch visualizations
... The attendees will then observe how different controllers change
the cloud services capacities dynamically and the resulting
performance" (Sec. 4, Fig. 6).

This benchmark runs the fully managed flow (all three adaptive
controllers) through six hours of diurnal + flash-crowd traffic and
reproduces Fig. 6's content: the per-layer capacity and utilisation
series plus the consolidated dashboard. Shape targets: capacity tracks
the workload at every layer, utilisation is held near the reference,
and overload is transient.
"""

import pytest

from repro import FlowBuilder, LayerKind
from repro.dependency import pearson_r
from repro.analysis import slo_violation_rate
from repro.monitoring import stacked_panels
from repro.simulation import derive_rng
from repro.workload import FlashCrowdRate, NoisyRate, SinusoidalRate

from benchmarks.conftest import write_report

DURATION = 6 * 3600
SEED = 42


def fig6_workload():
    # One full traffic cycle compressed into the 6 h demo window (range
    # ~500 .. ~4500 records/s) so every layer has to scale visibly up
    # AND down during the run, like the demo's live dashboard.
    base = SinusoidalRate(mean=2500.0, amplitude=2000.0, period=DURATION,
                          phase=-DURATION // 4)
    crowd = base + FlashCrowdRate(peak=1500, at=4 * 3600 + 1800, rise_seconds=180,
                                  decay_seconds=1200)
    return NoisyRate(crowd, derive_rng(SEED, "fig6.noise"), horizon=DURATION, sigma=0.06)


@pytest.fixture(scope="module")
def run():
    manager = (
        FlowBuilder("fig6", seed=SEED)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(fig6_workload())
        .control_all(style="adaptive", reference=60.0, period=60)
        .build()
    )
    return manager.run(DURATION)


def test_fig6_e2e_elasticity(benchmark, run, results_dir):
    benchmark.pedantic(lambda: run.duration_seconds, rounds=1, iterations=1)

    records = run.trace(
        "AWS/Kinesis", "IncomingRecords", period=300, statistic="Sum",
        dimensions=run.layer_dimensions[LayerKind.INGESTION],
    )
    shards = run.capacity_trace(LayerKind.INGESTION, period=300)
    util_by_layer = {kind: run.utilization_trace(kind) for kind in LayerKind}
    capacity_by_layer = {kind: run.capacity_trace(kind, period=300) for kind in LayerKind}

    tracking_r = pearson_r(records.values, shards.values)
    lines = [
        "E6 — Fig. 6: elasticity control and monitoring (6 h, all layers adaptive)",
        f"  workload records (5-min sums): min={records.minimum():,.0f} "
        f"max={records.maximum():,.0f}",
        f"  shard count range:  {shards.minimum():.0f}..{shards.maximum():.0f}",
        f"  VM count range:     {capacity_by_layer[LayerKind.ANALYTICS].minimum():.0f}.."
        f"{capacity_by_layer[LayerKind.ANALYTICS].maximum():.0f}",
        f"  WCU range:          {capacity_by_layer[LayerKind.STORAGE].minimum():.0f}.."
        f"{capacity_by_layer[LayerKind.STORAGE].maximum():.0f}",
        f"  r(workload, shard capacity): {tracking_r:+.3f}",
    ]
    for kind in LayerKind:
        violations = 100.0 * slo_violation_rate(util_by_layer[kind], "<=", 90.0)
        lines.append(
            f"  {kind.name.lower():<10} util mean={util_by_layer[kind].mean():5.1f}%  "
            f"time above 90%: {violations:.1f}%"
        )
    lines += [
        "",
        stacked_panels(
            [records, shards,
             capacity_by_layer[LayerKind.ANALYTICS], capacity_by_layer[LayerKind.STORAGE]],
            titles=["workload — records per 5 min", "Kinesis shards",
                    "Storm VMs", "DynamoDB WCU"],
            height=6,
        ),
        "",
        run.dashboard(),
    ]
    write_report(results_dir, "E6_fig6_e2e_elasticity", "\n".join(lines))

    # Capacity tracks the workload (the Fig. 6 visual, as a statistic).
    assert tracking_r > 0.7
    # Every layer actually scaled during the day.
    for kind in LayerKind:
        trace = capacity_by_layer[kind]
        assert trace.maximum() > trace.minimum(), kind
    # Utilisation is held: limited time above 90 % at every layer.
    for kind in LayerKind:
        assert slo_violation_rate(util_by_layer[kind], "<=", 90.0) < 0.15, kind
    # Data keeps flowing: nothing was dropped outright.
    assert run.dropped_records == 0
    assert run.dropped_writes == 0

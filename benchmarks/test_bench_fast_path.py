"""Approximate fast-path throughput vs the bit-exact reference.

``tests/test_fast_workload.py`` establishes that the fast path is
*statistically* equivalent to the exact generator; this benchmark
measures what trading bit-exactness buys. The exact path's throughput
is bounded by the generator's interleaved per-tick RNG draws
(~30.3k ticks/sec on the reference machine — see
``test_bench_span_throughput.py``); the fast path replaces them with
block-vectorized draws and is the only way past that ceiling.

Two measurements, both recorded in ``results/BENCH_fast.json`` with
``exact`` flags so the approximate numbers can never masquerade as
exact ones:

* **single-flow span throughput at 16x horizon** — exact vs fast,
  interleaved best-of-2 so machine noise hits both paths equally; the
  fast path must clear 3x exact (the PR's acceptance gate);
* **parallel fleet sweep scaling** — a 4-case fast-path fleet sweep at
  jobs=1/2/4 on the pinned forkserver/spawn pool. Byte-identity of the
  gateable fields across jobs counts is asserted unconditionally;
  wall-clock scaling is recorded alongside ``cpu_count`` and only
  *asserted* where the machine has the cores to show it (CI runners
  and the reference box are often 1-2 cores, where the pool's only job
  is to not change the answers).

The reduced-scale smoke variant runs in the CI benchmark-smoke job.
"""

import dataclasses
import json
import os
import pickle
import time

from benchmarks.test_bench_e2e_tick_throughput import BASE_HORIZON, SEED
from benchmarks.test_bench_span_throughput import CEILING_TICKS_PER_SEC

from repro import FleetScenarioSpec, FlowBuilder, sweep_fleet_scenarios
from repro.cloud import MetricAlarm
from repro.cloud.dynamodb import NAMESPACE as DDB_NS
from repro.cloud.kinesis import NAMESPACE as KINESIS_NS
from repro.cloud.region import RegionLimits
from repro.cloud.storm import NAMESPACE as STORM_NS, StormConfig
from repro.core.config import LayerControlConfig, default_adaptive_controller
from repro.core.fleet import FleetFlowSpec
from repro.core.flow import LayerKind
from repro.workload import SinusoidalRate


def managed_flow(horizon: int, name: str, exact: bool):
    """The span-throughput benchmark's fully managed scenario, with the
    workload path selectable."""
    manager = (
        FlowBuilder(name, seed=SEED)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(SinusoidalRate(mean=1500.0, amplitude=900.0, period=horizon))
        .control_all(style="adaptive", reference=60.0, period=30)
        .spans(True)
        .exact(exact)
        .build()
    )
    for ns, metric, dims in [
        (KINESIS_NS, "WriteUtilization", {"StreamName": manager.stream.name}),
        (STORM_NS, "CPUUtilization", {"Topology": manager.cluster.name}),
        (DDB_NS, "WriteUtilization", {"TableName": manager.table.name}),
    ]:
        manager.cloudwatch.put_alarm(MetricAlarm(
            name=f"high-{metric}", namespace=ns, metric_name=metric,
            threshold=90.0, period=30, evaluation_periods=2, dimensions=dims,
        ))
    manager.engine.every(30, manager.cloudwatch.evaluate_alarms, name="alarms")
    return manager


def ticks_per_second(scale: int, exact: bool, base_horizon: int = BASE_HORIZON) -> float:
    horizon = base_horizon * scale
    manager = managed_flow(horizon, f"fastbench-{scale}x", exact)
    started = time.perf_counter()
    manager.run(horizon)
    return horizon / (time.perf_counter() - started)


def best_of(runs: int, scale: int, exact: bool, base_horizon: int = BASE_HORIZON) -> float:
    return max(ticks_per_second(scale, exact, base_horizon) for _ in range(runs))


def fleet_cases(n_cases: int, duration: int):
    flows = tuple(
        FleetFlowSpec(
            name=f"flow{i}",
            workload=SinusoidalRate(
                mean=1800.0 + 400.0 * i,
                amplitude=1400.0,
                period=duration,
                phase=duration // 4,
            ),
            controls={
                kind: LayerControlConfig(
                    controller=default_adaptive_controller(kind), period=60
                )
                for kind in LayerKind
            },
            storm=StormConfig(records_per_vm_per_second=800),
        )
        for i in range(3)
    )
    limits = RegionLimits(
        max_instances=10,
        max_total_shards=12,
        max_total_write_units=2400,
        contention_threshold=0.7,
        contention_slope=0.3,
    )
    return [
        FleetScenarioSpec(
            name=f"fastbench-fleet{i}",
            flows=flows,
            limits=limits,
            duration=duration,
            exact=False,
        )
        for i in range(n_cases)
    ]


def strip_wall(card):
    """Drop the informational wall-clock fields before byte comparison."""
    return dataclasses.replace(
        card,
        wall_seconds=0.0,
        flows={
            name: dataclasses.replace(flow, wall_seconds=0.0, ticks_per_second=0.0)
            for name, flow in card.flows.items()
        },
    )


def sweep_scaling(n_cases: int, duration: int, jobs_grid=(1, 2, 4)):
    """Time the same fast-path fleet sweep at each jobs count and check
    the results never depend on the jobs count."""
    timings = {}
    reference = None
    for jobs in jobs_grid:
        started = time.perf_counter()
        cards = sweep_fleet_scenarios(fleet_cases(n_cases, duration), base_seed=11, jobs=jobs)
        timings[jobs] = time.perf_counter() - started
        stripped = {name: pickle.dumps(strip_wall(card)) for name, card in cards.items()}
        if reference is None:
            reference = stripped
        else:
            assert stripped == reference, (
                f"fleet sweep at jobs={jobs} diverged from the serial sweep"
            )
    return timings


def test_fast_path_throughput(results_dir):
    # Interleave exact and fast runs so drift in machine load hits both.
    exact_16x = fast_16x = 0.0
    for _ in range(2):
        exact_16x = max(exact_16x, ticks_per_second(16, exact=True))
        fast_16x = max(fast_16x, ticks_per_second(16, exact=False))

    cores = os.cpu_count() or 1
    sweep_duration = 3600
    timings = sweep_scaling(n_cases=4, duration=sweep_duration)

    report = {
        "experiment": "fast_path_throughput",
        "base_horizon_seconds": BASE_HORIZON,
        "tick_seconds": 1,
        "control_period": 30,
        "seed": SEED,
        "single_flow_span_16x": {
            "exact_ticks_per_sec": {"value": round(exact_16x, 1), "exact": True},
            "fast_ticks_per_sec": {"value": round(fast_16x, 1), "exact": False},
            "speedup_fast_vs_exact": round(fast_16x / exact_16x, 2),
            "bit_exact_ceiling_ticks_per_sec": CEILING_TICKS_PER_SEC,
            "fast_vs_ceiling": round(fast_16x / CEILING_TICKS_PER_SEC, 2),
            "ceiling_cleared": fast_16x > CEILING_TICKS_PER_SEC,
        },
        "parallel_fleet_sweep": {
            "exact": False,
            "cases": 4,
            "flows_per_case": 3,
            "duration_seconds": sweep_duration,
            "cpu_count": cores,
            "wall_seconds_by_jobs": {
                str(jobs): round(wall, 3) for jobs, wall in timings.items()
            },
            "speedup_by_jobs": {
                str(jobs): round(timings[1] / wall, 2) for jobs, wall in timings.items()
            },
            "scaling_note": (
                "results are asserted byte-identical across jobs counts; "
                "wall-clock speedup is informational and bounded by cpu_count"
            ),
        },
        "approximation_note": (
            "fast numbers come from the approximate workload path "
            "(exact=False): statistically equivalent, not bit-comparable "
            "to the exact reference — see DESIGN.md's approximation contract"
        ),
    }
    path = results_dir / "BENCH_fast.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    # The acceptance gate: the approximate path must buy at least 3x
    # over exact span execution at the 16x horizon.
    assert fast_16x >= 3.0 * exact_16x, (
        f"fast path only reached {fast_16x:.0f} t/s at 16x vs "
        f"{exact_16x:.0f} t/s exact"
    )
    # Parallel speedup only where the machine can physically show it.
    if cores >= 4:
        assert timings[1] / timings[4] >= 1.5, (
            f"jobs=4 sweep showed no speedup on a {cores}-core machine: "
            f"{timings}"
        )


def test_fast_path_throughput_smoke(results_dir):
    """Reduced-scale CI variant: 600 s base horizon, generous bound."""
    base = 600
    exact = fast = 0.0
    for _ in range(2):
        exact = max(exact, ticks_per_second(4, exact=True, base_horizon=base))
        fast = max(fast, ticks_per_second(4, exact=False, base_horizon=base))
    timings = sweep_scaling(n_cases=2, duration=1200, jobs_grid=(1, 2))

    report = {
        "experiment": "fast_path_throughput_smoke",
        "base_horizon_seconds": base,
        "exact_ticks_per_sec_4x": {"value": round(exact, 1), "exact": True},
        "fast_ticks_per_sec_4x": {"value": round(fast, 1), "exact": False},
        "speedup": round(fast / exact, 2),
        "fleet_sweep_wall_seconds_by_jobs": {
            str(jobs): round(wall, 3) for jobs, wall in timings.items()
        },
        "cpu_count": os.cpu_count() or 1,
    }
    path = results_dir / "BENCH_fast_smoke.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[report written to {path}]")

    assert fast >= 2.0 * exact, (
        f"fast path only reached {fast:.0f} t/s vs {exact:.0f} t/s exact "
        "at smoke scale"
    )

"""E3 — Fig. 4: Pareto-optimal resource shares.

Paper (Sec. 3.2): with the click-stream flow and the assumptive
dependency constraints ``5*r_A >= r_I``, ``2*r_A <= r_I`` and
``2*r_I <= r_S``, "the algorithm finds six Pareto optimal solutions,
each representing the resource shares of Kinesis, Storm, and DynamoDB
simultaneously".

This benchmark builds exactly that constrained Eq. 3-5 problem and
searches it with NSGA-II. Shape targets: a small Pareto set of mutually
non-dominated, fully feasible allocations with the budget binding.
"""

import pytest

from repro.core.flow import LayerKind, clickstream_flow_spec
from repro.optimization import ResourceShareAnalyzer, ShareConstraint

from benchmarks.conftest import write_report

BUDGET_PER_HOUR = 1.50  # dollars; sized so a handful of plans are optimal


def paper_constraints():
    return [
        ShareConstraint.at_least(5, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.ANALYTICS, LayerKind.INGESTION),
        ShareConstraint.at_most(2, LayerKind.INGESTION, LayerKind.STORAGE),
    ]


def test_fig4_pareto_front(benchmark, results_dir):
    analyzer = ResourceShareAnalyzer(clickstream_flow_spec(), constraints=paper_constraints())

    result = benchmark.pedantic(
        lambda: analyzer.analyze(
            budget_per_hour=BUDGET_PER_HOUR, population_size=100, generations=250, seed=0
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        "E3 — Fig. 4: Pareto optimal resource shares",
        f"  budget: ${BUDGET_PER_HOUR:.2f}/hour; constraints: "
        + "; ".join(c.describe() for c in paper_constraints()),
        f"  NSGA-II evaluations: {result.evaluations}",
        f"  Pareto solutions found: {len(result)}   (paper found 6)",
        "",
        result.table(),
        "",
        f"  picked (random, as the paper suggests): {result.pick('random', seed=1)}",
        f"  picked (balanced): {result.pick('balanced')}",
    ]
    write_report(results_dir, "E3_fig4_pareto", "\n".join(lines))

    # Shape: a small front of feasible, mutually non-dominated plans.
    assert 3 <= len(result) <= 60
    for solution in result.solutions:
        shares = {k: float(v) for k, v in solution.shares}
        for constraint in paper_constraints():
            assert constraint.satisfied(shares, slack=1e-6), constraint.describe()
        assert solution.hourly_cost <= BUDGET_PER_HOUR + 1e-9
    # Budget binds: the most expensive plan spends nearly all of it.
    assert max(s.hourly_cost for s in result.solutions) >= 0.9 * BUDGET_PER_HOUR
    # Non-dominance across the de-duplicated integer front.
    for a in result.solutions:
        for b in result.solutions:
            if a is b:
                continue
            assert not (
                b.ingestion >= a.ingestion
                and b.analytics >= a.analytics
                and b.storage >= a.storage
                and (b.ingestion, b.analytics, b.storage)
                != (a.ingestion, a.analytics, a.storage)
            )

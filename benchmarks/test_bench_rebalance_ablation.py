"""E10 — ablation: actuation latency vs monitoring cadence.

DESIGN.md calls out actuation latency as a load-bearing design choice of
the substrate: a fixed-parallelism Storm topology pauses on every
rebalance, so *scaling has a cost*. This ablation shows the interaction
the model exposes — a controller acting faster than the
rebalance-plus-drain cycle enters a rebalance storm (each action causes
the backlog that justifies the next action), while a controller whose
monitoring period covers the cycle converges on the right fleet size.

Not a paper figure; it validates a simulator design decision the
controller experiments rest on.
"""

import pytest

from repro import FlowBuilder, LayerKind
from repro.analysis import ComparisonReport
from repro.cloud import BoltSpec, TopologyConfig
from repro.workload import StepRate

from benchmarks.conftest import write_report

DURATION = 4800


def run_with_period(period: int):
    topology = TopologyConfig(
        bolts=(
            BoltSpec("parse", records_per_executor_per_second=250, executors=16),
            BoltSpec("aggregate", records_per_executor_per_second=250, executors=16),
        ),
        executor_slots_per_vm=4,
        rebalance_seconds=30,
    )
    manager = (
        FlowBuilder(f"rebalance-{period}", seed=19)
        .ingestion(shards=4)
        .analytics(vms=2, topology=topology)
        .storage(write_units=300)
        .workload(StepRate(base=800, level=2400, at=1200))
        .control(LayerKind.ANALYTICS, style="adaptive", reference=60.0, period=period)
        .build()
    )
    result = manager.run(DURATION)
    vms = result.capacity_trace(LayerKind.ANALYTICS)
    return {
        "peak_vms": vms.maximum(),
        "final_vms": vms.values[-1],
        "actions": result.loops[LayerKind.ANALYTICS].actions_taken,
        "cost_$": result.total_cost,
    }


@pytest.fixture(scope="module")
def outcomes():
    return {period: run_with_period(period) for period in (60, 120, 300)}


def test_rebalance_ablation(benchmark, outcomes, results_dir):
    benchmark.pedantic(lambda: run_with_period(300), rounds=1, iterations=1)

    columns = ["peak_vms", "final_vms", "actions", "cost_$"]
    report = ComparisonReport(
        "E10 — rebalance-storm ablation (fixed-parallelism topology, step load; "
        "the workload needs ~8 VMs)",
        columns,
    )
    for period, outcome in outcomes.items():
        report.add_row(f"period={period}s", [outcome[c] for c in columns])
    write_report(results_dir, "E10_rebalance_ablation", report.render())

    # Fast control spirals (rebalance storm); slow control converges.
    assert outcomes[60]["peak_vms"] > 3 * outcomes[300]["peak_vms"]
    assert outcomes[300]["final_vms"] <= 16
    assert outcomes[300]["cost_$"] < outcomes[60]["cost_$"]

"""End-to-end test of the full Flower workflow (Fig. 3).

Dependency analysis on real simulated logs → Eq. 5 constraints from the
fitted model → NSGA-II share analysis → a managed run bounded by the
picked shares. This is the paper's whole pipeline in one test.
"""

import pytest

from repro import FlowBuilder, LayerKind
from repro.core.flow import FlowSpec, LayerSpec
from repro.dependency import WorkloadDependencyAnalyzer
from repro.optimization import ResourceShareAnalyzer, ShareConstraint
from repro.workload import SinusoidalRate


@pytest.fixture(scope="module")
def calibration_run():
    workload = SinusoidalRate(mean=700.0, amplitude=400.0, period=7200, phase=-1800)
    manager = (
        FlowBuilder("workflow-calibration", seed=31)
        .ingestion(shards=2)
        .analytics(vms=1)
        .storage(write_units=300)
        .workload(workload)
        .build()
    )
    return manager.run(7200)


class TestFullWorkflow:
    def test_dependency_to_shares_to_bounded_run(self, calibration_run):
        # Step 1 — dependency analysis on the calibration logs.
        analyzer = WorkloadDependencyAnalyzer(min_abs_r=0.7, alpha=0.01)
        records_ref = analyzer.add_series(
            LayerKind.INGESTION, "Records",
            calibration_run.trace(
                "AWS/Kinesis", "IncomingRecords", period=60, statistic="Sum",
                dimensions=calibration_run.layer_dimensions[LayerKind.INGESTION]),
        )
        cpu_ref = analyzer.add_series(
            LayerKind.ANALYTICS, "CPU",
            calibration_run.trace(
                "Custom/Storm", "CPUUtilization", period=60,
                dimensions=calibration_run.layer_dimensions[LayerKind.ANALYTICS]),
        )
        model = analyzer.dependency_between(records_ref, cpu_ref)
        assert model is not None, "the load->CPU dependency must be discovered"
        assert model.result.slope > 0

        # Step 2 — share analysis under a budget with constraints.
        flow = FlowSpec(
            name="workflow",
            layers=(
                LayerSpec(LayerKind.INGESTION, "Kinesis", "kinesis.shard", "Shards", 1, 32),
                LayerSpec(LayerKind.ANALYTICS, "Storm", "ec2.m4.large", "VMs", 1, 16),
                LayerSpec(LayerKind.STORAGE, "DynamoDB", "dynamodb.wcu", "WCU", 1, 2000),
            ),
        )
        share_analyzer = ResourceShareAnalyzer(flow, constraints=[
            ShareConstraint.at_least(5, LayerKind.ANALYTICS, LayerKind.INGESTION),
            ShareConstraint.at_most(2, LayerKind.INGESTION, LayerKind.STORAGE),
        ])
        front = share_analyzer.analyze(
            budget_per_hour=1.2, population_size=60, generations=80, seed=31
        )
        assert len(front) >= 1
        picked = front.pick("balanced")
        assert picked.hourly_cost <= 1.2 + 1e-9

        # Step 3 — a managed run bounded by the picked shares.
        manager = (
            FlowBuilder("workflow-production", seed=32)
            .ingestion(shards=min(2, picked.ingestion))
            .analytics(vms=min(2, picked.analytics))
            .storage(write_units=min(300, picked.storage))
            .workload(SinusoidalRate(mean=900.0, amplitude=600.0, period=3600, phase=-900))
            .control_all(style="adaptive", reference=60.0)
            .share_bounds(picked)
            .build()
        )
        result = manager.run(3600)

        # Step 4 — the consolidated monitoring view exists and every
        # layer stayed inside its share.
        assert "ingestion.shards" in result.dashboard()
        for kind in LayerKind:
            assert result.capacity_trace(kind).maximum() <= picked[kind]

    def test_calibration_run_matches_eq1_form(self, calibration_run):
        """The calibration logs satisfy the paper's Eq. 1 linear form
        with a near-zero residual relative to the signal."""
        analyzer = WorkloadDependencyAnalyzer()
        records = analyzer.add_series(
            LayerKind.INGESTION, "Records",
            calibration_run.trace(
                "AWS/Kinesis", "IncomingRecords", period=60, statistic="Sum",
                dimensions=calibration_run.layer_dimensions[LayerKind.INGESTION]),
        )
        cpu = analyzer.add_series(
            LayerKind.ANALYTICS, "CPU",
            calibration_run.trace(
                "Custom/Storm", "CPUUtilization", period=60,
                dimensions=calibration_run.layer_dimensions[LayerKind.ANALYTICS]),
        )
        fitted = analyzer.fit_pair(records, cpu).result
        assert fitted.r_squared > 0.95
        assert fitted.residual_std < 2.0  # CPU percentage points

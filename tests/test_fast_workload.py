"""Tests for the approximate (``exact=False``) fast workload path.

The approximation contract (DESIGN.md) in executable form:

* **distributional equivalence** — at a fixed seed grid, the fast
  generator's arrivals, payload bytes and distinct pages match the
  exact generator's in mean, variance and two-sample KS distance;
* **determinism per seed** — same seed, same pattern, same tick length
  give the same fast stream;
* **span/tick identity within the fast path** — block draws align to
  the absolute tick index, so fast span runs are bit-identical to fast
  per-tick runs (generator- and manager-level), however unevenly the
  spans fall;
* **exactness flagging end-to-end** — the flag rides from
  ``FlowBuilder.exact()`` through results to scorecards, fast cards
  refuse to compare against exact baselines, and fleet sweeps stay
  byte-identical across jobs counts.
"""

import dataclasses
import math
import pickle

import numpy as np
import pytest

from repro import FleetScenarioSpec, FlowBuilder, LayerKind, sweep_fleet_scenarios
from repro.analysis.scorecard import FleetScorecard, RunScorecard
from repro.cloud.region import RegionLimits
from repro.cloud.storm import StormConfig
from repro.core.config import LayerControlConfig, default_adaptive_controller
from repro.core.errors import ConfigurationError
from repro.core.fleet import FleetFlowSpec, RegionFleetManager
from repro.simulation import SimClock, derive_rng
from repro.workload import (
    ClickStreamConfig,
    ClickStreamGenerator,
    ConstantRate,
    FastClickStreamGenerator,
    SinusoidalRate,
)

#: The fixed seed grid every distributional test runs on (>= 3 seeds,
#: per the acceptance criteria).
SEEDS = (3, 17, 401)
TICKS = 4000


def span_columns(generator, ticks=TICKS):
    """``(records, payload, distinct)`` as float arrays."""
    columns = generator.generate_span(1, ticks, 1)
    return [np.asarray(column, dtype=float) for column in columns]


def tick_columns(generator, ticks):
    clock = SimClock(tick_seconds=1)
    columns = ([], [], [])
    for _ in range(ticks):
        clock.advance()
        batch = generator.generate(clock)
        columns[0].append(batch.records)
        columns[1].append(batch.payload_bytes)
        columns[2].append(batch.distinct_keys)
    return columns


def ks_statistic(a, b) -> float:
    """Two-sample Kolmogorov-Smirnov distance."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


#: KS acceptance threshold at alpha ~= 0.001 for two samples of TICKS
#: draws each. The seeds are fixed, so this never flakes — it documents
#: how close the distributions are required to be.
KS_THRESHOLD = 1.949 * math.sqrt(2.0 / TICKS)


def generator_pair(seed, rate=1500.0, config=None, pattern=None):
    pattern = pattern or ConstantRate(rate)
    exact = ClickStreamGenerator(
        pattern, rng=derive_rng(seed, "exact"), config=config
    )
    fast = FastClickStreamGenerator(
        pattern, rng=derive_rng(seed, "fast"), config=config
    )
    return exact, fast


class TestDistributionalEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_arrivals_match(self, seed):
        exact, fast = generator_pair(seed)
        e, f = span_columns(exact)[0], span_columns(fast)[0]
        assert f.mean() == pytest.approx(e.mean(), rel=0.02)
        # Poisson: variance tracks the mean on both paths.
        assert f.var() / f.mean() == pytest.approx(1.0, abs=0.1)
        assert e.var() / e.mean() == pytest.approx(1.0, abs=0.1)
        assert ks_statistic(e, f) < KS_THRESHOLD

    @pytest.mark.parametrize("seed", SEEDS)
    def test_payload_bytes_match(self, seed):
        exact, fast = generator_pair(seed)
        e, f = span_columns(exact)[1], span_columns(fast)[1]
        assert f.mean() == pytest.approx(e.mean(), rel=0.02)
        assert f.std() == pytest.approx(e.std(), rel=0.05)
        assert ks_statistic(e, f) < KS_THRESHOLD

    @pytest.mark.parametrize("seed", SEEDS)
    def test_distinct_pages_match(self, seed):
        exact, fast = generator_pair(seed)
        e, f = span_columns(exact)[2], span_columns(fast)[2]
        assert f.mean() == pytest.approx(e.mean(), rel=0.02)
        assert f.std() == pytest.approx(e.std(), rel=0.08)
        assert ks_statistic(e, f) < KS_THRESHOLD

    @pytest.mark.parametrize("seed", SEEDS)
    def test_low_rate_payload_moments(self, seed):
        """At low arrival rates the lognormal-sum CLT is weakest, so the
        fast path is held to moment tolerances there (KS would compare
        a mildly skewed sum against its normal approximation)."""
        exact, fast = generator_pair(seed, rate=8.0)
        e, f = span_columns(exact)[1], span_columns(fast)[1]
        assert f.mean() == pytest.approx(e.mean(), rel=0.05)
        assert f.std() == pytest.approx(e.std(), rel=0.15)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_varying_rate_totals_match(self, seed):
        pattern = SinusoidalRate(mean=1200.0, amplitude=900.0, period=TICKS)
        exact, fast = generator_pair(seed, pattern=pattern)
        e = span_columns(exact)
        f = span_columns(fast)
        for e_col, f_col in zip(e, f):
            assert f_col.sum() == pytest.approx(e_col.sum(), rel=0.02)
        assert fast.total_records == pytest.approx(exact.total_records, rel=0.02)
        assert fast.total_bytes == pytest.approx(exact.total_bytes, rel=0.02)

    def test_sigma_zero_payload_is_deterministic(self):
        config = ClickStreamConfig(record_bytes_sigma=0.0, mean_record_bytes=200)
        _exact, fast = generator_pair(11, config=config)
        records, payload, _distinct = span_columns(fast)
        assert np.array_equal(payload, records * 200)

    def test_large_batch_summary_mirrors_reference(self):
        """Ticks above LARGE_BATCH records get the reference path's
        deterministic ``records * mean`` summary, not a normal draw."""
        _exact, fast = generator_pair(5, rate=float(2 * FastClickStreamGenerator.LARGE_BATCH))
        records, payload, _distinct = span_columns(fast, ticks=64)
        assert (records > FastClickStreamGenerator.LARGE_BATCH).all()
        assert np.array_equal(payload, records * 350)


class TestFastDeterminism:
    def test_same_seed_same_stream(self):
        a = span_columns(generator_pair(9)[1])
        b = span_columns(generator_pair(9)[1])
        for col_a, col_b in zip(a, b):
            assert np.array_equal(col_a, col_b)

    def test_span_and_tick_bit_identical(self):
        _, by_span = generator_pair(9)
        _, by_tick = generator_pair(9)
        ticks = 3000  # crosses a block boundary
        spanned = by_span.generate_span(1, ticks, 1)
        ticked = tick_columns(by_tick, ticks)
        assert spanned == tuple(ticked)
        assert by_span.total_records == by_tick.total_records
        assert by_span.total_bytes == by_tick.total_bytes

    def test_uneven_span_boundaries_identical(self):
        """Block draws align to the absolute tick index, so how the
        engine happens to slice spans cannot change the stream."""
        _, reference = generator_pair(9)
        _, uneven = generator_pair(9)
        whole = reference.generate_span(1, 3000, 1)
        pieces = ([], [], [])
        start = 1
        for count in (7, 1000, 13, 1024, 956):
            part = uneven.generate_span(start, count, 1)
            for column, piece in zip(pieces, part):
                column.extend(piece)
            start += count
        assert tuple(pieces) == whole

    def test_time_must_be_monotonic(self):
        block = FastClickStreamGenerator.BLOCK
        _, fast = generator_pair(9)
        fast.generate_span(1, block, 1)
        # Advancing into the next block evicts the one behind it …
        fast.generate_span(block + 1, block, 1)
        # … so rewinding to evicted ticks is an error, not a re-draw.
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            fast.generate_span(1, 8, 1)

    def test_tick_length_cannot_change_mid_stream(self):
        _, fast = generator_pair(9)
        fast.generate_span(1, 8, 1)
        with pytest.raises(ConfigurationError, match="tick length"):
            fast.generate_span(60, 8, 60)

    def test_exact_flags(self):
        exact, fast = generator_pair(9)
        assert exact.exact is True
        assert fast.exact is False


def _flow(duration, spans, exact, seed=7):
    return (
        FlowBuilder("fastflow", seed=seed)
        .ingestion(shards=2)
        .analytics(vms=2)
        .storage(write_units=300)
        .workload(SinusoidalRate(mean=1500.0, amplitude=900.0, period=duration))
        .control_all(style="adaptive", reference=60.0, period=30)
        .spans(spans)
        .exact(exact)
        .build()
    )


def _result_fingerprint(result):
    lines = []
    for kind in LayerKind:
        for label, trace in (
            ("util", result.utilization_trace(kind)),
            ("cap", result.capacity_trace(kind, period=300)),
            ("throttle", result.throttle_trace(kind)),
        ):
            lines.append(
                f"{kind.name}.{label} {list(trace.times)!r} "
                f"{[repr(v) for v in trace.values]!r}"
            )
    lines.append(f"cost={[(k, repr(v)) for k, v in sorted(result.cost_by_layer.items())]!r}")
    lines.append(f"drops={result.dropped_records},{result.dropped_writes}")
    return "\n".join(lines)


class TestManagerFastPath:
    def test_fast_span_equals_fast_per_tick_end_to_end(self):
        duration = 1800
        spanned = _flow(duration, spans=True, exact=False).run(duration)
        ticked = _flow(duration, spans=False, exact=False).run(duration)
        assert _result_fingerprint(spanned) == _result_fingerprint(ticked)

    def test_result_carries_exactness(self):
        assert _flow(120, spans=True, exact=False).run(120).exact is False
        assert _flow(120, spans=True, exact=True).run(120).exact is True

    def test_builder_defaults_to_exact(self):
        manager = (
            FlowBuilder("default", seed=1)
            .workload(ConstantRate(100.0))
            .build()
        )
        assert manager.exact is True
        assert isinstance(manager.generator, ClickStreamGenerator)
        assert not isinstance(manager.generator, FastClickStreamGenerator)

    def test_fast_manager_uses_fast_generator(self):
        manager = _flow(120, spans=True, exact=False)
        assert isinstance(manager.generator, FastClickStreamGenerator)

    def test_fast_run_is_deterministic(self):
        duration = 900
        a = _flow(duration, spans=True, exact=False).run(duration)
        b = _flow(duration, spans=True, exact=False).run(duration)
        assert _result_fingerprint(a) == _result_fingerprint(b)


class TestExactnessGuardrails:
    def _card(self, exact):
        return RunScorecard(
            name="guard", seed=1, duration_seconds=60, total_cost=1.0, exact=exact
        )

    def test_scorecard_carries_exactness(self):
        result = _flow(120, spans=True, exact=False).run(120)
        card = RunScorecard.from_result("fast", result)
        assert card.exact is False
        assert "APPROXIMATE" in card.summary()
        assert RunScorecard.from_dict(card.to_dict()).exact is False

    def test_mixed_exactness_comparison_raises(self):
        fast, exact = self._card(False), self._card(True)
        with pytest.raises(ConfigurationError, match="not bit-comparable"):
            fast.compare(exact)
        with pytest.raises(ConfigurationError, match="not bit-comparable"):
            exact.compare(fast)

    def test_same_exactness_comparison_allowed(self):
        assert self._card(False).compare(self._card(False)) == []
        assert self._card(True).compare(self._card(True)) == []

    def test_fleet_mixed_exactness_comparison_raises(self):
        fast = FleetScorecard(name="f", seed=1, duration_seconds=60, exact=False)
        exact = FleetScorecard(name="f", seed=1, duration_seconds=60, exact=True)
        with pytest.raises(ConfigurationError, match="not bit-comparable"):
            fast.compare(exact)

    def test_legacy_cards_default_to_exact(self):
        card = self._card(True)
        data = card.to_dict()
        del data["exact"]
        assert RunScorecard.from_dict(data).exact is True


def _fleet_specs(n_flows=3, duration=1800):
    return tuple(
        FleetFlowSpec(
            name=f"flow{i}",
            workload=SinusoidalRate(
                mean=1800.0 + 400.0 * i,
                amplitude=1400.0,
                period=duration,
                phase=duration // 4,
            ),
            controls={
                kind: LayerControlConfig(
                    controller=default_adaptive_controller(kind), period=60
                )
                for kind in LayerKind
            },
            storm=StormConfig(records_per_vm_per_second=800),
        )
        for i in range(n_flows)
    )


def _fleet_limits():
    return RegionLimits(
        max_instances=10,
        max_total_shards=12,
        max_total_write_units=2400,
        contention_threshold=0.7,
        contention_slope=0.3,
    )


def _fast_fleet_cases(n_cases=2, duration=1800):
    return [
        FleetScenarioSpec(
            name=f"fast-fleet{i}",
            flows=_fleet_specs(duration=duration),
            limits=_fleet_limits(),
            duration=duration,
            exact=False,
        )
        for i in range(n_cases)
    ]


class TestFleetFastPath:
    def test_fleet_result_carries_exactness(self):
        fleet = RegionFleetManager(
            list(_fleet_specs(duration=900)),
            limits=_fleet_limits(),
            seed=7,
            exact=False,
        )
        result = fleet.run(900)
        assert result.exact is False
        assert all(flow.exact is False for flow in result.flows.values())
        card = FleetScorecard.from_fleet_result("fast-fleet", result, seed=7)
        assert card.exact is False
        assert all(flow_card.exact is False for flow_card in card.flows.values())
        assert "APPROXIMATE" in card.summary()

    def test_manager_kwargs_cannot_override_exactness(self):
        spec = _fleet_specs(n_flows=1)[0]
        spec = dataclasses.replace(spec, manager_kwargs={"exact": False})
        with pytest.raises(ConfigurationError, match="fleet-level"):
            RegionFleetManager([spec])

    @staticmethod
    def _strip_wall(card):
        """Wall-clock fields are informational and vary run to run."""
        return dataclasses.replace(
            card,
            wall_seconds=0.0,
            flows={
                name: dataclasses.replace(
                    flow_card, wall_seconds=0.0, ticks_per_second=0.0
                )
                for name, flow_card in card.flows.items()
            },
        )

    def test_fast_sweep_jobs2_pickle_identical_to_jobs1(self):
        cases = _fast_fleet_cases()
        serial = sweep_fleet_scenarios(cases, base_seed=11, jobs=1)
        parallel = sweep_fleet_scenarios(_fast_fleet_cases(), base_seed=11, jobs=2)
        assert list(serial) == list(parallel)
        for name in serial:
            assert pickle.dumps(self._strip_wall(serial[name])) == pickle.dumps(
                self._strip_wall(parallel[name])
            )
            assert serial[name].exact is False

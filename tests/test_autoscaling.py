"""Unit tests for the alarm-driven auto-scaler (paper ref [1])."""

import pytest

from repro.cloud import MetricAlarm, SimCloudWatch
from repro.cloud.autoscaling import (
    AdjustmentType,
    AutoScaler,
    ScalingActivity,
    ScalingPolicy,
)
from repro.control import CallbackActuator
from repro.core.errors import ConfigurationError


class _Capacity:
    def __init__(self, value=10.0):
        self.value = value

    def actuator(self, maximum=100.0):
        return CallbackActuator(
            getter=lambda now: self.value,
            setter=lambda v, now: setattr(self, "value", v),
            minimum=1,
            maximum=maximum,
        )


def high_cpu_alarm(threshold=80.0):
    return MetricAlarm("high-cpu", "NS", "CPU", threshold=threshold,
                       comparison=">", period=60, evaluation_periods=1)


class TestScalingPolicy:
    def test_change_in_capacity(self):
        policy = ScalingPolicy("up", adjustment=2)
        assert policy.target_capacity(10) == 12.0

    def test_negative_change(self):
        policy = ScalingPolicy("down", adjustment=-3)
        assert policy.target_capacity(10) == 7.0

    def test_exact_capacity(self):
        policy = ScalingPolicy("exact", adjustment=5,
                               adjustment_type=AdjustmentType.EXACT_CAPACITY)
        assert policy.target_capacity(10) == 5.0

    def test_percent_change(self):
        policy = ScalingPolicy("pct", adjustment=50,
                               adjustment_type=AdjustmentType.PERCENT_CHANGE_IN_CAPACITY)
        assert policy.target_capacity(10) == 15.0

    def test_percent_change_respects_min_magnitude(self):
        policy = ScalingPolicy("pct", adjustment=10,
                               adjustment_type=AdjustmentType.PERCENT_CHANGE_IN_CAPACITY,
                               min_adjustment_magnitude=3)
        # 10% of 10 is 1, floored up to 3.
        assert policy.target_capacity(10) == 13.0

    def test_percent_down(self):
        policy = ScalingPolicy("pct-down", adjustment=-50,
                               adjustment_type=AdjustmentType.PERCENT_CHANGE_IN_CAPACITY)
        assert policy.target_capacity(10) == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScalingPolicy("", adjustment=1)
        with pytest.raises(ConfigurationError):
            ScalingPolicy("x", adjustment=1, cooldown=-1)
        with pytest.raises(ConfigurationError):
            ScalingPolicy("x", adjustment=-1,
                          adjustment_type=AdjustmentType.EXACT_CAPACITY)


class TestAutoScaler:
    def _scaler(self, capacity, alarm, policy):
        cw = SimCloudWatch()
        scaler = AutoScaler(cloudwatch=cw, actuator=capacity.actuator())
        scaler.attach(alarm, policy)
        return cw, scaler

    def test_fires_when_alarm_breaches(self):
        capacity = _Capacity(10.0)
        cw, scaler = self._scaler(capacity, high_cpu_alarm(), ScalingPolicy("up", 2))
        cw.put_metric_data("NS", "CPU", 95.0, 60)
        activities = scaler.evaluate(60)
        assert len(activities) == 1
        assert capacity.value == 12.0
        assert activities[0] == ScalingActivity(60, "up", "high-cpu", 10.0, 12.0)

    def test_no_fire_when_ok(self):
        capacity = _Capacity(10.0)
        cw, scaler = self._scaler(capacity, high_cpu_alarm(), ScalingPolicy("up", 2))
        cw.put_metric_data("NS", "CPU", 20.0, 60)
        assert scaler.evaluate(60) == []
        assert capacity.value == 10.0

    def test_cooldown_blocks_refiring(self):
        capacity = _Capacity(10.0)
        cw, scaler = self._scaler(
            capacity, high_cpu_alarm(), ScalingPolicy("up", 2, cooldown=300)
        )
        for t in (60, 120, 180, 360):
            cw.put_metric_data("NS", "CPU", 95.0, t)
        assert len(scaler.evaluate(60)) == 1
        assert scaler.evaluate(120) == []  # cooling down
        assert len(scaler.evaluate(360)) == 1
        assert capacity.value == 14.0

    def test_multiple_policies_fire_independently(self):
        capacity = _Capacity(10.0)
        cw = SimCloudWatch()
        scaler = AutoScaler(cloudwatch=cw, actuator=capacity.actuator())
        scaler.attach(high_cpu_alarm(80.0), ScalingPolicy("up", 2))
        low = MetricAlarm("low-cpu", "NS", "CPU", threshold=20.0, comparison="<",
                          period=60, evaluation_periods=1)
        scaler.attach(low, ScalingPolicy("down", -1))
        cw.put_metric_data("NS", "CPU", 10.0, 60)
        activities = scaler.evaluate(60)
        assert [a.policy for a in activities] == ["down"]
        assert capacity.value == 9.0

    def test_activity_history_accumulates(self):
        capacity = _Capacity(10.0)
        cw, scaler = self._scaler(
            capacity, high_cpu_alarm(), ScalingPolicy("up", 1, cooldown=0)
        )
        for t in (60, 120):
            cw.put_metric_data("NS", "CPU", 95.0, t)
            scaler.evaluate(t)
        assert len(scaler.activities) == 2

    def test_duplicate_policy_name_rejected(self):
        capacity = _Capacity()
        cw = SimCloudWatch()
        scaler = AutoScaler(cloudwatch=cw, actuator=capacity.actuator())
        scaler.attach(high_cpu_alarm(), ScalingPolicy("up", 1))
        with pytest.raises(ConfigurationError):
            scaler.attach(high_cpu_alarm(), ScalingPolicy("up", 2))

    def test_actuator_limits_still_apply(self):
        capacity = _Capacity(10.0)
        cw = SimCloudWatch()
        scaler = AutoScaler(cloudwatch=cw, actuator=capacity.actuator(maximum=11))
        scaler.attach(high_cpu_alarm(), ScalingPolicy("up", 5))
        cw.put_metric_data("NS", "CPU", 95.0, 60)
        activities = scaler.evaluate(60)
        assert activities[0].capacity_after == 11.0


class TestEndToEndWithServices:
    def test_scales_a_kinesis_stream(self):
        """The provider-style scaler driving a real simulated service."""
        from repro.cloud import SimKinesisStream
        from repro.control import KinesisShardActuator
        from repro.simulation import SimClock

        cw = SimCloudWatch()
        stream = SimKinesisStream(shards=1)
        scaler = AutoScaler(cloudwatch=cw, actuator=KinesisShardActuator(stream))
        alarm = MetricAlarm(
            "hot-stream", "AWS/Kinesis", "WriteUtilization", threshold=80.0,
            comparison=">", period=60, evaluation_periods=1,
            dimensions={"StreamName": stream.name},
        )
        scaler.attach(alarm, ScalingPolicy("add-shard", 1, cooldown=0))

        clock = SimClock(tick_seconds=1)
        for _ in range(60):
            clock.advance()
            stream.put_records(950, 0, clock)
            stream.emit_metrics(cw, clock)
        activities = scaler.evaluate(60)
        assert [a.policy for a in activities] == ["add-shard"]
        assert activities[0].capacity_after == 2.0

    def test_alarm_with_no_data_yet_is_insufficient(self):
        cw = SimCloudWatch()
        alarm = MetricAlarm("empty", "NS", "Ghost", threshold=1.0, period=60)
        assert alarm.evaluate(cw, 60) == "INSUFFICIENT_DATA"

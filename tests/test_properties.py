"""Cross-module property-based tests (hypothesis).

These pin down invariants that unit tests with fixed inputs cannot:
optimizer solutions always respect bounds and integrality, controllers
respond monotonically to their error signal, cost metering is additive,
and the metric store's aggregates are consistent with the raw series.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud import SimCloudWatch
from repro.cloud.pricing import CostMeter, PriceBook
from repro.control import (
    AdaptiveGainConfig,
    AdaptiveGainController,
    FixedGainConfig,
    FixedGainController,
)
from repro.optimization import NSGA2, NSGA2Config, FunctionalProblem


class TestNSGA2Properties:
    @given(
        st.integers(min_value=0, max_value=10 ** 6),
        st.floats(min_value=-50, max_value=0),
        st.floats(min_value=1, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_solutions_always_within_bounds(self, seed, lower, upper):
        problem = FunctionalProblem(
            objectives=[lambda x: float(x[0] ** 2), lambda x: float((x[0] - 1) ** 2)],
            lower=[lower],
            upper=[upper],
        )
        result = NSGA2(problem, NSGA2Config(population_size=12, generations=5), seed=seed).run()
        for ind in result.population:
            assert lower - 1e-9 <= ind.x[0] <= upper + 1e-9

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_integer_problems_stay_integral(self, seed):
        problem = FunctionalProblem(
            objectives=[lambda x: -float(x.sum()), lambda x: float(x[0] - x[1])],
            lower=[1.0, 1.0],
            upper=[50.0, 50.0],
            integer=True,
        )
        result = NSGA2(problem, NSGA2Config(population_size=12, generations=5), seed=seed).run()
        for ind in result.population:
            assert np.allclose(ind.x, np.round(ind.x))

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_front_members_are_rank_zero_and_feasible(self, seed):
        problem = FunctionalProblem(
            objectives=[lambda x: float(x[0]), lambda x: float(-x[0] + x[1])],
            lower=[0.0, 0.0],
            upper=[10.0, 10.0],
            constraints=[lambda x: float(x[0] + x[1]) - 12.0],
        )
        result = NSGA2(problem, NSGA2Config(population_size=16, generations=8), seed=seed).run()
        for ind in result.front:
            assert ind.rank == 0
            assert ind.violation == 0.0


class TestControllerProperties:
    @given(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=1, max_value=1000),
    )
    @settings(max_examples=50)
    def test_adaptive_response_is_monotone_in_measurement(self, y1, y2, u):
        """A higher measurement never yields a smaller capacity request."""
        def fresh():
            return AdaptiveGainController(AdaptiveGainConfig(
                reference=60.0, gamma=0.01, l_min=0.1, l_max=1.0, use_memory=False
            ))

        lo, hi = sorted((y1, y2))
        assert fresh().compute(u, lo, 0) <= fresh().compute(u, hi, 0) + 1e-9

    @given(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=1, max_value=1000),
        st.floats(min_value=0.01, max_value=2.0),
    )
    @settings(max_examples=50)
    def test_fixed_gain_step_proportional_to_error(self, y, u, gain):
        controller = FixedGainController(FixedGainConfig(reference=60.0, gain=gain))
        step = controller.compute(u, y, 0) - u
        assert step == pytest.approx(gain * (y - 60.0))

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_adaptive_gain_always_within_bounds(self, measurements):
        controller = AdaptiveGainController(AdaptiveGainConfig(
            reference=60.0, gamma=0.5, l_min=0.2, l_max=0.9
        ))
        u = 10.0
        for k, y in enumerate(measurements):
            u = controller.compute(u, y, 60 * k)
            assert 0.2 <= controller.gain <= 0.9


class TestCostProperties:
    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.integers(min_value=1, max_value=600)),
        min_size=1, max_size=30,
    ))
    @settings(max_examples=30)
    def test_metering_is_additive(self, accruals):
        """One meter over all accruals equals the sum of split meters."""
        book = PriceBook()
        whole = CostMeter(book, "ec2.m4.large")
        first = CostMeter(book, "ec2.m4.large")
        second = CostMeter(book, "ec2.m4.large")
        for index, (units, seconds) in enumerate(accruals):
            whole.accrue(units, seconds)
            (first if index % 2 == 0 else second).accrue(units, seconds)
        assert whole.total_cost == pytest.approx(first.total_cost + second.total_cost)


class TestCloudWatchProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
    @settings(max_examples=30)
    def test_sum_of_period_sums_equals_total(self, values):
        cw = SimCloudWatch()
        for i, v in enumerate(values):
            cw.put_metric_data("NS", "M", v, i + 1)
        end = len(values)
        periods = cw.get_metric_statistics("NS", "M", 0, end, period=7, statistic="Sum")
        assert sum(v for _t, v in periods) == pytest.approx(sum(values), rel=1e-9, abs=1e-6)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=60),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=30)
    def test_average_bounded_by_extremes(self, values, period):
        cw = SimCloudWatch()
        for i, v in enumerate(values):
            cw.put_metric_data("NS", "M", v, i + 1)
        stats = cw.get_metric_statistics("NS", "M", 0, len(values), period, "Average")
        for _t, v in stats:
            assert min(values) - 1e-9 <= v <= max(values) + 1e-9


class TestRetryActuatorProperties:
    """The retry/circuit-breaker wrapper must stay truthful (returned
    capacity is the real one) and quiet (no inner calls while the
    circuit is open) for any failure pattern."""

    @given(
        failing=st.lists(st.booleans(), min_size=1, max_size=40),
        max_attempts=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_breaker_state_machine_invariants(self, failing, max_attempts):
        from tests.test_chaos import _ScriptedActuator
        from repro.control.actuators import RetryingActuator

        inner = _ScriptedActuator()
        actuator = RetryingActuator(
            inner,
            max_attempts=max_attempts,
            breaker_threshold=2,
            cooldown_seconds=60,
            max_cooldown_seconds=240,
        )
        now = 0
        for fails in failing:
            now += 30
            open_before = now < actuator.circuit_open_until
            attempts_before = inner.attempts
            inner.script = [True] * max_attempts if fails else []
            applied = actuator.apply(12.0, now)
            # Truthful: the return value is the capacity actually in force.
            assert applied == inner.capacity
            # Quiet: an open circuit sheds without touching the inner API.
            if open_before:
                assert inner.attempts == attempts_before
            # Backoff never exceeds its configured ceiling.
            assert actuator.circuit_open_until - now <= 240
        assert actuator.failed_attempts <= inner.attempts

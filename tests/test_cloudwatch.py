"""Unit tests for the simulated CloudWatch metric store and alarms."""

import pytest

from repro.cloud import MetricAlarm, SimCloudWatch
from repro.core.errors import MonitoringError


@pytest.fixture
def cw():
    return SimCloudWatch()


def _fill(cw, values, namespace="NS", metric="M", start=1, step=1, dims=None):
    for i, v in enumerate(values):
        cw.put_metric_data(namespace, metric, v, start + i * step, dims)


class TestPutAndGet:
    def test_raw_series_roundtrip(self, cw):
        _fill(cw, [1.0, 2.0, 3.0])
        times, values = cw.get_series("NS", "M")
        assert times == [1, 2, 3]
        assert values == [1.0, 2.0, 3.0]

    def test_rejects_time_regression(self, cw):
        cw.put_metric_data("NS", "M", 1.0, 10)
        with pytest.raises(MonitoringError):
            cw.put_metric_data("NS", "M", 2.0, 5)

    def test_same_timestamp_allowed(self, cw):
        cw.put_metric_data("NS", "M", 1.0, 10)
        cw.put_metric_data("NS", "M", 2.0, 10)
        assert cw.get_series("NS", "M")[1] == [1.0, 2.0]

    def test_dimensions_separate_series(self, cw):
        cw.put_metric_data("NS", "M", 1.0, 1, {"Stream": "a"})
        cw.put_metric_data("NS", "M", 9.0, 1, {"Stream": "b"})
        assert cw.get_series("NS", "M", {"Stream": "a"})[1] == [1.0]
        assert cw.get_series("NS", "M", {"Stream": "b"})[1] == [9.0]

    def test_unknown_metric_raises_with_known_list(self, cw):
        cw.put_metric_data("NS", "M", 1.0, 1)
        with pytest.raises(MonitoringError, match="NS/M"):
            cw.get_series("NS", "Nope")

    def test_list_metrics_filters_by_namespace(self, cw):
        cw.put_metric_data("A", "x", 1.0, 1)
        cw.put_metric_data("B", "y", 1.0, 1)
        assert cw.list_metrics("A") == [("A", "x")]
        assert set(cw.list_metrics()) == {("A", "x"), ("B", "y")}


class TestStatistics:
    def test_average_per_period(self, cw):
        _fill(cw, [10.0, 20.0, 30.0, 40.0])  # t=1..4
        stats = cw.get_metric_statistics("NS", "M", 0, 4, period=2)
        assert stats == [(2, 15.0), (4, 35.0)]

    def test_sum_max_min_count(self, cw):
        _fill(cw, [1.0, 2.0, 3.0])
        assert cw.get_metric_statistics("NS", "M", 0, 3, 3, "Sum") == [(3, 6.0)]
        assert cw.get_metric_statistics("NS", "M", 0, 3, 3, "Maximum") == [(3, 3.0)]
        assert cw.get_metric_statistics("NS", "M", 0, 3, 3, "Minimum") == [(3, 1.0)]
        assert cw.get_metric_statistics("NS", "M", 0, 3, 3, "SampleCount") == [(3, 3.0)]

    def test_percentile_statistic(self, cw):
        _fill(cw, [float(v) for v in range(1, 101)])
        stats = cw.get_metric_statistics("NS", "M", 0, 100, 100, "p50")
        assert stats[0][1] == pytest.approx(50.5)

    def test_windows_are_right_closed(self, cw):
        _fill(cw, [1.0, 2.0])  # t=1, t=2
        # Period (0, 1] contains t=1 only.
        stats = cw.get_metric_statistics("NS", "M", 0, 2, period=1)
        assert stats == [(1, 1.0), (2, 2.0)]

    def test_empty_periods_are_omitted(self, cw):
        cw.put_metric_data("NS", "M", 5.0, 10)
        stats = cw.get_metric_statistics("NS", "M", 0, 30, period=10)
        assert stats == [(10, 5.0)]

    def test_rejects_bad_period_and_range(self, cw):
        _fill(cw, [1.0])
        with pytest.raises(MonitoringError):
            cw.get_metric_statistics("NS", "M", 0, 10, period=0)
        with pytest.raises(MonitoringError):
            cw.get_metric_statistics("NS", "M", 10, 10, period=1)

    def test_get_metric_value_with_default(self, cw):
        assert cw.get_metric_value("NS", "Missing", now=10, window=10, default=7.0) == 7.0

    def test_get_metric_value_without_default_raises(self, cw):
        with pytest.raises(MonitoringError):
            cw.get_metric_value("NS", "Missing", now=10, window=10)

    def test_get_metric_value_window(self, cw):
        _fill(cw, [1.0, 2.0, 3.0, 4.0])  # t=1..4
        # Window (2, 4] -> values 3, 4.
        assert cw.get_metric_value("NS", "M", now=4, window=2) == 3.5


class TestAlarms:
    def test_alarm_fires_after_evaluation_periods(self, cw):
        fired = []
        alarm = MetricAlarm(
            name="high", namespace="NS", metric_name="M", threshold=50.0,
            comparison=">", period=1, evaluation_periods=2, on_alarm=fired.append,
        )
        cw.put_alarm(alarm)
        _fill(cw, [60.0, 40.0, 70.0, 80.0])  # t=1..4
        assert alarm.evaluate(cw, 2) == "OK"  # 60, 40 -> not all above
        assert alarm.evaluate(cw, 4) == "ALARM"  # 70, 80
        assert fired == [4]

    def test_insufficient_data_state(self, cw):
        alarm = MetricAlarm("a", "NS", "M", threshold=1.0, period=1, evaluation_periods=3)
        cw.put_metric_data("NS", "M", 5.0, 1)
        assert alarm.evaluate(cw, 1) == "INSUFFICIENT_DATA"

    def test_ok_callback_on_recovery(self, cw):
        recovered = []
        alarm = MetricAlarm(
            "a", "NS", "M", threshold=50.0, comparison=">",
            period=1, evaluation_periods=1, on_ok=recovered.append,
        )
        _fill(cw, [60.0, 10.0])
        assert alarm.evaluate(cw, 1) == "ALARM"
        assert alarm.evaluate(cw, 2) == "OK"
        assert recovered == [2]

    def test_evaluate_alarms_returns_breaching(self, cw):
        a1 = MetricAlarm("hot", "NS", "M", threshold=5.0, comparison=">", period=1)
        a2 = MetricAlarm("cold", "NS", "M", threshold=100.0, comparison=">", period=1)
        cw.put_alarm(a1)
        cw.put_alarm(a2)
        cw.put_metric_data("NS", "M", 50.0, 1)
        breaching = cw.evaluate_alarms(1)
        assert breaching == [a1]

    def test_rejects_bad_comparison(self):
        with pytest.raises(MonitoringError):
            MetricAlarm("a", "NS", "M", threshold=1.0, comparison="!=")

    def test_rejects_bad_evaluation_periods(self):
        with pytest.raises(MonitoringError):
            MetricAlarm("a", "NS", "M", threshold=1.0, evaluation_periods=0)

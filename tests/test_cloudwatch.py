"""Unit tests for the simulated CloudWatch metric store and alarms."""

import numpy as np
import pytest

from repro.cloud import SUPPORTED_STATISTICS, MetricAlarm, SimCloudWatch, validate_statistic
from repro.cloud.cloudwatch import _aggregate
from repro.core.errors import MonitoringError


@pytest.fixture
def cw():
    return SimCloudWatch()


def _fill(cw, values, namespace="NS", metric="M", start=1, step=1, dims=None):
    for i, v in enumerate(values):
        cw.put_metric_data(namespace, metric, v, start + i * step, dims)


class TestPutAndGet:
    def test_raw_series_roundtrip(self, cw):
        _fill(cw, [1.0, 2.0, 3.0])
        times, values = cw.get_series("NS", "M")
        assert times == [1, 2, 3]
        assert values == [1.0, 2.0, 3.0]

    def test_rejects_time_regression(self, cw):
        cw.put_metric_data("NS", "M", 1.0, 10)
        with pytest.raises(MonitoringError):
            cw.put_metric_data("NS", "M", 2.0, 5)

    def test_same_timestamp_allowed(self, cw):
        cw.put_metric_data("NS", "M", 1.0, 10)
        cw.put_metric_data("NS", "M", 2.0, 10)
        assert cw.get_series("NS", "M")[1] == [1.0, 2.0]

    def test_dimensions_separate_series(self, cw):
        cw.put_metric_data("NS", "M", 1.0, 1, {"Stream": "a"})
        cw.put_metric_data("NS", "M", 9.0, 1, {"Stream": "b"})
        assert cw.get_series("NS", "M", {"Stream": "a"})[1] == [1.0]
        assert cw.get_series("NS", "M", {"Stream": "b"})[1] == [9.0]

    def test_unknown_metric_raises_with_known_list(self, cw):
        cw.put_metric_data("NS", "M", 1.0, 1)
        with pytest.raises(MonitoringError, match="NS/M"):
            cw.get_series("NS", "Nope")

    def test_list_metrics_filters_by_namespace(self, cw):
        cw.put_metric_data("A", "x", 1.0, 1)
        cw.put_metric_data("B", "y", 1.0, 1)
        assert cw.list_metrics("A") == [("A", "x")]
        assert set(cw.list_metrics()) == {("A", "x"), ("B", "y")}


class TestStatistics:
    def test_average_per_period(self, cw):
        _fill(cw, [10.0, 20.0, 30.0, 40.0])  # t=1..4
        stats = cw.get_metric_statistics("NS", "M", 0, 4, period=2)
        assert stats == [(2, 15.0), (4, 35.0)]

    def test_sum_max_min_count(self, cw):
        _fill(cw, [1.0, 2.0, 3.0])
        assert cw.get_metric_statistics("NS", "M", 0, 3, 3, "Sum") == [(3, 6.0)]
        assert cw.get_metric_statistics("NS", "M", 0, 3, 3, "Maximum") == [(3, 3.0)]
        assert cw.get_metric_statistics("NS", "M", 0, 3, 3, "Minimum") == [(3, 1.0)]
        assert cw.get_metric_statistics("NS", "M", 0, 3, 3, "SampleCount") == [(3, 3.0)]

    def test_percentile_statistic(self, cw):
        _fill(cw, [float(v) for v in range(1, 101)])
        stats = cw.get_metric_statistics("NS", "M", 0, 100, 100, "p50")
        assert stats[0][1] == pytest.approx(50.5)

    def test_windows_are_right_closed(self, cw):
        _fill(cw, [1.0, 2.0])  # t=1, t=2
        # Period (0, 1] contains t=1 only.
        stats = cw.get_metric_statistics("NS", "M", 0, 2, period=1)
        assert stats == [(1, 1.0), (2, 2.0)]

    def test_empty_periods_are_omitted(self, cw):
        cw.put_metric_data("NS", "M", 5.0, 10)
        stats = cw.get_metric_statistics("NS", "M", 0, 30, period=10)
        assert stats == [(10, 5.0)]

    def test_rejects_bad_period_and_range(self, cw):
        _fill(cw, [1.0])
        with pytest.raises(MonitoringError):
            cw.get_metric_statistics("NS", "M", 0, 10, period=0)
        with pytest.raises(MonitoringError):
            cw.get_metric_statistics("NS", "M", 10, 10, period=1)

    def test_get_metric_value_with_default(self, cw):
        assert cw.get_metric_value("NS", "Missing", now=10, window=10, default=7.0) == 7.0

    def test_get_metric_value_without_default_raises(self, cw):
        with pytest.raises(MonitoringError):
            cw.get_metric_value("NS", "Missing", now=10, window=10)

    def test_get_metric_value_window(self, cw):
        _fill(cw, [1.0, 2.0, 3.0, 4.0])  # t=1..4
        # Window (2, 4] -> values 3, 4.
        assert cw.get_metric_value("NS", "M", now=4, window=2) == 3.5


def _brute_window(times, values, start, end):
    """The seed implementation's full-scan filter: start < t <= end."""
    return [v for t, v in zip(times, values) if start < t <= end]


def _brute_statistics(times, values, start, end, period, statistic):
    """The seed implementation: one full re-scan per candidate period."""
    results = []
    period_end = end
    while period_end > start:
        period_start = max(period_end - period, start)
        window = _brute_window(times, values, period_start, period_end)
        if window:
            results.append((period_end, _aggregate(window, statistic)))
        period_end -= period
    results.reverse()
    return results


class TestWindowBoundaries:
    """Right-closed ``(start, end]`` semantics at exact tick boundaries."""

    def test_start_boundary_excluded_end_included(self, cw):
        _fill(cw, [1.0, 2.0, 3.0, 4.0])  # t=1..4
        # (1, 3]: t=1 is on the start boundary and must be excluded;
        # t=3 is on the end boundary and must be included.
        assert cw.get_metric_value("NS", "M", now=3, window=2) == pytest.approx(2.5)
        assert cw.get_metric_statistics("NS", "M", 1, 3, 2) == [(3, 2.5)]

    def test_duplicate_timestamps_on_boundary(self, cw):
        for v in (1.0, 2.0, 3.0):
            cw.put_metric_data("NS", "M", v, 10)
        cw.put_metric_data("NS", "M", 9.0, 11)
        # All three t=10 points sit on the end boundary of (0, 10].
        assert cw.get_metric_value("NS", "M", now=10, window=10, statistic="Sum") == 6.0
        # ...and on the (excluded) start boundary of (10, 11].
        assert cw.get_metric_value("NS", "M", now=11, window=1, statistic="Sum") == 9.0

    def test_empty_window_default_with_existing_series(self, cw):
        _fill(cw, [1.0, 2.0])  # t=1, t=2
        # The series exists but the window (5, 10] is empty.
        assert cw.get_metric_value("NS", "M", now=10, window=5, default=-1.0) == -1.0
        with pytest.raises(MonitoringError, match=r"\(5, 10\]"):
            cw.get_metric_value("NS", "M", now=10, window=5)

    def test_single_datapoint_percentile(self, cw):
        cw.put_metric_data("NS", "M", 42.0, 1)
        for stat in ("p0", "p50", "p99", "p100"):
            assert cw.get_metric_value("NS", "M", now=1, window=1, statistic=stat) == 42.0
        assert cw.get_metric_statistics("NS", "M", 0, 1, 1, "p99") == [(1, 42.0)]


class TestBisectAgainstBruteForce:
    """The O(log n) fast path must equal the seed full-scan bit for bit."""

    def test_randomized_windows(self, cw):
        rng = np.random.default_rng(1234)
        steps = rng.integers(0, 3, size=400)  # duplicates and gaps
        times = np.cumsum(steps).tolist()
        values = rng.normal(50.0, 20.0, size=400).tolist()
        for t, v in zip(times, values):
            cw.put_metric_data("NS", "M", v, int(t))
        horizon = int(times[-1])
        for _ in range(200):
            a, b = sorted(rng.integers(-5, horizon + 5, size=2))
            if a == b:
                b += 1
            got = cw.get_series("NS", "M")
            window = cw._series[("NS", "M", ())].window(int(a), int(b))
            assert window == _brute_window(got[0], got[1], a, b)

    @pytest.mark.parametrize("statistic", ["Average", "Sum", "Maximum", "Minimum",
                                           "SampleCount", "p50", "p99"])
    def test_randomized_period_aggregation(self, statistic):
        rng = np.random.default_rng(987)
        cw = SimCloudWatch()
        times = np.cumsum(rng.integers(0, 4, size=300)).tolist()
        values = rng.uniform(0.0, 100.0, size=300).tolist()
        for t, v in zip(times, values):
            cw.put_metric_data("NS", "M", v, int(t))
        horizon = int(times[-1])
        for _ in range(60):
            a, b = sorted(int(x) for x in rng.integers(-3, horizon + 3, size=2))
            if a == b:
                b += 1
            period = int(rng.integers(1, 50))
            got = cw.get_metric_statistics("NS", "M", a, b, period, statistic)
            want = _brute_statistics(times, values, a, b, period, statistic)
            assert got == want  # bit-exact, not approx


class TestReadMemo:
    def test_memo_never_serves_stale_data(self, cw):
        _fill(cw, [10.0, 20.0])  # t=1, t=2
        assert cw.get_metric_value("NS", "M", now=2, window=2) == 15.0
        cw.put_metric_data("NS", "M", 90.0, 2)  # same timestamp, new data
        assert cw.get_metric_value("NS", "M", now=2, window=2) == 40.0
        assert cw.get_metric_statistics("NS", "M", 0, 2, 2) == [(2, 40.0)]
        cw.put_metric_data("NS", "M", 100.0, 3)
        assert cw.get_metric_statistics("NS", "M", 0, 3, 3) == [(3, 55.0)]

    def test_memoized_statistics_are_copies(self, cw):
        _fill(cw, [1.0, 2.0])
        first = cw.get_metric_statistics("NS", "M", 0, 2, 1)
        first.append((99, 99.0))  # a caller mutating its result...
        second = cw.get_metric_statistics("NS", "M", 0, 2, 1)
        assert second == [(1, 1.0), (2, 2.0)]  # ...must not poison the memo

    def test_empty_window_is_memoized_per_version(self, cw):
        _fill(cw, [1.0], start=1)
        assert cw.get_metric_value("NS", "M", now=10, window=2, default=0.0) == 0.0
        cw.put_metric_data("NS", "M", 7.0, 9)
        assert cw.get_metric_value("NS", "M", now=10, window=2, default=0.0) == 7.0


class TestStatisticValidation:
    def test_named_statistics_accepted(self):
        for stat in SUPPORTED_STATISTICS:
            assert validate_statistic(stat) == stat

    def test_percentiles_accepted(self):
        for stat in ("p0", "p50", "p99", "p99.9", "p100"):
            assert validate_statistic(stat) == stat

    def test_bad_statistics_rejected(self):
        for stat in ("Mean", "avg", "p101", "p-1", "pfoo", ""):
            with pytest.raises(MonitoringError):
                validate_statistic(stat)

    def test_malformed_percentiles_rejected(self):
        """Regression: ``float()`` accepts far more than CloudWatch's
        ``pNN[.N]`` grammar — whitespace, signs, underscores, exponents
        and ``nan`` must all be rejected, not parsed."""
        for stat in (
            "p 50", "p50 ", "p+50", "p-0", "p1_0", "p1e1", "pnan", "pinf",
            "p0x10", "p50.", "p.5", "p50.5.5", "p1234", "p100.1",
        ):
            with pytest.raises(MonitoringError):
                validate_statistic(stat)

    def test_percentile_boundaries_accepted(self):
        for stat in ("p0", "p0.0", "p100", "p100.0", "p99.999"):
            assert validate_statistic(stat) == stat

    def test_get_metric_statistics_rejects_unknown_statistic(self, cw):
        _fill(cw, [1.0])
        with pytest.raises(MonitoringError, match="unsupported statistic"):
            cw.get_metric_statistics("NS", "M", 0, 1, 1, "Median")

    def test_alarm_rejects_bad_statistic_at_construction(self):
        with pytest.raises(MonitoringError, match="percentile"):
            MetricAlarm("a", "NS", "M", threshold=1.0, statistic="p200")

    def test_alarm_accepts_percentile_statistic(self, cw):
        alarm = MetricAlarm("tail", "NS", "M", threshold=90.0, statistic="p99", period=10)
        cw.put_alarm(alarm)
        _fill(cw, [95.0] * 10)  # t=1..10
        assert alarm.evaluate(cw, 10) == "ALARM"


class TestAlarms:
    def test_alarm_fires_after_evaluation_periods(self, cw):
        fired = []
        alarm = MetricAlarm(
            name="high", namespace="NS", metric_name="M", threshold=50.0,
            comparison=">", period=1, evaluation_periods=2, on_alarm=fired.append,
        )
        cw.put_alarm(alarm)
        _fill(cw, [60.0, 40.0, 70.0, 80.0])  # t=1..4
        assert alarm.evaluate(cw, 2) == "OK"  # 60, 40 -> not all above
        assert alarm.evaluate(cw, 4) == "ALARM"  # 70, 80
        assert fired == [4]

    def test_insufficient_data_state(self, cw):
        alarm = MetricAlarm("a", "NS", "M", threshold=1.0, period=1, evaluation_periods=3)
        cw.put_metric_data("NS", "M", 5.0, 1)
        assert alarm.evaluate(cw, 1) == "INSUFFICIENT_DATA"

    def test_ok_callback_on_recovery(self, cw):
        recovered = []
        alarm = MetricAlarm(
            "a", "NS", "M", threshold=50.0, comparison=">",
            period=1, evaluation_periods=1, on_ok=recovered.append,
        )
        _fill(cw, [60.0, 10.0])
        assert alarm.evaluate(cw, 1) == "ALARM"
        assert alarm.evaluate(cw, 2) == "OK"
        assert recovered == [2]

    def test_evaluate_alarms_returns_breaching(self, cw):
        a1 = MetricAlarm("hot", "NS", "M", threshold=5.0, comparison=">", period=1)
        a2 = MetricAlarm("cold", "NS", "M", threshold=100.0, comparison=">", period=1)
        cw.put_alarm(a1)
        cw.put_alarm(a2)
        cw.put_metric_data("NS", "M", 50.0, 1)
        breaching = cw.evaluate_alarms(1)
        assert breaching == [a1]

    def test_rejects_bad_comparison(self):
        with pytest.raises(MonitoringError):
            MetricAlarm("a", "NS", "M", threshold=1.0, comparison="!=")

    def test_rejects_bad_evaluation_periods(self):
        with pytest.raises(MonitoringError):
            MetricAlarm("a", "NS", "M", threshold=1.0, evaluation_periods=0)

"""Tests for the shared-region capacity pool and account limits.

The contract under test (see ``repro/cloud/region.py``): usage is
*committed* capacity summed purely at query time, only increases are
gated, a denial changes nothing and raises a
:class:`RegionCapacityError` that the retry stack classifies as
transient, and the contention factor is a pure function of pool load.
"""

import pytest

from repro.cloud.dynamodb import SimDynamoDBTable
from repro.cloud.ec2 import EC2Config, SimEC2Fleet
from repro.cloud.kinesis import KinesisConfig, SimKinesisStream
from repro.cloud.region import RegionContext, RegionLimits
from repro.core.errors import (
    CapacityError,
    ConfigurationError,
    RegionCapacityError,
    TransientAPIError,
)


class TestRegionLimitsValidation:
    def test_defaults_valid(self):
        RegionLimits()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_instances=0),
            dict(max_total_shards=0),
            dict(max_total_write_units=0),
            dict(max_total_read_units=0),
            dict(contention_threshold=0.0),
            dict(contention_threshold=1.5),
            dict(contention_slope=-0.1),
            dict(contention_slope=1.0),
        ],
    )
    def test_bad_limits_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RegionLimits(**kwargs)


class TestRegistration:
    def test_duplicate_flow_id_rejected_per_service(self):
        region = RegionContext()
        fleet = SimEC2Fleet(initial_instances=1)
        fleet.attach_region(region, "f1")
        other = SimEC2Fleet(initial_instances=1)
        with pytest.raises(ConfigurationError, match="already registered"):
            other.attach_region(region, "f1")

    def test_flow_ids_union_over_services(self):
        region = RegionContext()
        SimEC2Fleet(initial_instances=1).attach_region(region, "a")
        SimKinesisStream(name="s", shards=1).attach_region(region, "b")
        assert region.flow_ids == ["a", "b"]


class TestCommittedAccounting:
    def test_booting_instances_count_in_full(self):
        region = RegionContext()
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=60), initial_instances=2)
        fleet.attach_region(region, "f1")
        fleet.set_desired(5, now=10)
        # Still booting at t=10, but the account already promised them.
        assert region.instances_in_use(10) == 5
        assert region.headroom(10)["instances"] == RegionLimits().max_instances - 5

    def test_inflight_reshard_target_counts(self):
        region = RegionContext()
        stream = SimKinesisStream(
            name="s", shards=2, config=KinesisConfig(base_reshard_seconds=300)
        )
        stream.attach_region(region, "f1")
        stream.update_shard_count(4, now=0)
        assert region.shards_in_use(0) == 4  # target, not current

    def test_pending_update_table_counts(self):
        region = RegionContext()
        table = SimDynamoDBTable(name="t", write_units=100, read_units=50)
        table.attach_region(region, "f1")
        table.update_write_capacity(400, now=0)
        assert region.write_units_in_use(0) == 400

    def test_accounting_sums_across_flows(self):
        region = RegionContext()
        for i, shards in enumerate((2, 3)):
            SimKinesisStream(name=f"s{i}", shards=shards).attach_region(
                region, f"f{i}"
            )
        assert region.shards_in_use(0) == 5


class TestAdmission:
    def test_over_limit_launch_denied_and_nothing_changes(self):
        region = RegionContext(limits=RegionLimits(max_instances=3))
        fleet_a = SimEC2Fleet(initial_instances=2)
        fleet_a.attach_region(region, "a")
        fleet_b = SimEC2Fleet(initial_instances=1)
        fleet_b.attach_region(region, "b")
        with pytest.raises(RegionCapacityError):
            fleet_b.set_desired(2, now=0)
        # All-or-nothing: the denied request committed nothing.
        assert fleet_b.provisioned_count(0) == 1
        assert region.instances_in_use(0) == 3
        assert region.denials_by_flow() == {"b": {"instances": 1}}

    def test_scale_down_always_succeeds(self):
        region = RegionContext(limits=RegionLimits(max_instances=3))
        fleet = SimEC2Fleet(initial_instances=3)
        fleet.attach_region(region, "a")
        assert fleet.set_desired(1, now=0) == 1

    def test_freed_headroom_admits_the_retry(self):
        region = RegionContext(limits=RegionLimits(max_instances=4))
        fleet_a = SimEC2Fleet(initial_instances=3)
        fleet_a.attach_region(region, "a")
        fleet_b = SimEC2Fleet(initial_instances=1)
        fleet_b.attach_region(region, "b")
        with pytest.raises(RegionCapacityError):
            fleet_b.set_desired(2, now=0)
        fleet_a.set_desired(1, now=10)  # neighbor scales down
        assert fleet_b.set_desired(2, now=20) == 2  # retry now fits

    def test_over_limit_reshard_denied(self):
        region = RegionContext(limits=RegionLimits(max_total_shards=4))
        s1 = SimKinesisStream(name="s1", shards=3)
        s1.attach_region(region, "a")
        s2 = SimKinesisStream(name="s2", shards=1)
        s2.attach_region(region, "b")
        with pytest.raises(RegionCapacityError):
            s2.update_shard_count(2, now=0)
        assert s2.committed_shards() == 1
        assert region.total_denials("b") == 1

    def test_over_limit_update_table_denied(self):
        region = RegionContext(limits=RegionLimits(max_total_write_units=500))
        t1 = SimDynamoDBTable(name="t1", write_units=400, read_units=10)
        t1.attach_region(region, "a")
        t2 = SimDynamoDBTable(name="t2", write_units=100, read_units=10)
        t2.attach_region(region, "b")
        with pytest.raises(RegionCapacityError):
            t2.update_write_capacity(200, now=0)
        assert t2.committed_write_units() == 100

    def test_read_units_gated_independently(self):
        region = RegionContext(limits=RegionLimits(max_total_read_units=100))
        table = SimDynamoDBTable(name="t", write_units=10, read_units=80)
        table.attach_region(region, "a")
        with pytest.raises(RegionCapacityError):
            table.update_read_capacity(150, now=0)
        # Write units were not near their limit, so writes still grow.
        assert table.update_write_capacity(50, now=0) == 50

    def test_error_is_truthful_on_both_axes(self):
        """A region denial is a capacity error AND transient — the
        retry/breaker actuator stack absorbs it with no special case."""
        assert issubclass(RegionCapacityError, CapacityError)
        assert issubclass(RegionCapacityError, TransientAPIError)


class TestContention:
    def _region(self, max_instances=10, threshold=0.5, slope=0.4):
        return RegionContext(
            limits=RegionLimits(
                max_instances=max_instances,
                contention_threshold=threshold,
                contention_slope=slope,
            )
        )

    def test_no_contention_below_threshold(self):
        region = self._region()
        SimEC2Fleet(initial_instances=5).attach_region(region, "a")
        assert region.contention_factor(0) == 1.0

    def test_linear_ramp_above_threshold(self):
        region = self._region()
        SimEC2Fleet(initial_instances=8).attach_region(region, "a")
        # utilization 0.8, over = (0.8-0.5)/0.5 = 0.6 -> 1 - 0.4*0.6
        assert region.contention_factor(0) == pytest.approx(1.0 - 0.4 * 0.6)

    def test_full_pool_hits_max_loss(self):
        region = self._region()
        SimEC2Fleet(initial_instances=10).attach_region(region, "a")
        assert region.contention_factor(0) == pytest.approx(0.6)

    def test_zero_slope_disables_contention(self):
        region = self._region(slope=0.0)
        SimEC2Fleet(initial_instances=10).attach_region(region, "a")
        assert region.contention_factor(0) == 1.0

    def test_threshold_one_disables_contention(self):
        region = self._region(threshold=1.0)
        SimEC2Fleet(initial_instances=10).attach_region(region, "a")
        assert region.contention_factor(0) == 1.0

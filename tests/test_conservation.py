"""Conservation-law property tests for the service simulators.

No simulator may create or destroy records: everything offered is
accepted or throttled; everything accepted is read, processed or still
buffered. These invariants hold under arbitrary interleavings of puts,
reads and capacity changes.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud import (
    DynamoDBConfig,
    EC2Config,
    SimDynamoDBTable,
    SimEC2Fleet,
    SimKinesisStream,
    SimStormCluster,
    StormConfig,
)
from repro.simulation import SimClock

put_amounts = st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=50)


class TestKinesisConservation:
    @given(put_amounts)
    @settings(max_examples=30)
    def test_put_splits_into_accepted_plus_throttled(self, amounts):
        stream = SimKinesisStream(shards=2)
        clock = SimClock()
        for records in amounts:
            clock.advance()
            result = stream.put_records(records, records * 100, clock)
            assert result.accepted_records + result.throttled_records == records
            assert result.accepted_records >= 0
            assert result.throttled_records >= 0

    @given(put_amounts, st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_reads_never_exceed_accepted(self, puts, reads):
        stream = SimKinesisStream(shards=2)
        clock = SimClock()
        total_accepted = 0
        total_read = 0
        for i in range(max(len(puts), len(reads))):
            clock.advance()
            if i < len(puts):
                total_accepted += stream.put_records(puts[i], 0, clock).accepted_records
            if i < len(reads):
                total_read += stream.get_records(reads[i], clock)
        assert total_read + stream.backlog_records == total_accepted

    @given(put_amounts, st.integers(min_value=1, max_value=16))
    @settings(max_examples=20)
    def test_conservation_across_resharding(self, amounts, target):
        stream = SimKinesisStream(shards=2)
        clock = SimClock()
        accepted = 0
        read = 0
        for i, records in enumerate(amounts):
            clock.advance()
            if i == len(amounts) // 2:
                stream.update_shard_count(target, clock.now)
            accepted += stream.put_records(records, 0, clock).accepted_records
            read += stream.get_records(records // 2, clock)
        assert read + stream.backlog_records == accepted


class TestStormConservation:
    @given(put_amounts)
    @settings(max_examples=20)
    def test_pulled_equals_processed_plus_pending(self, amounts):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=0), initial_instances=1)
        cluster = SimStormCluster(fleet, StormConfig(cpu_noise_std=0.0),
                                  np.random.default_rng(0))
        stream = SimKinesisStream(shards=8)
        clock = SimClock()
        accepted = 0
        processed = 0
        for records in amounts:
            clock.advance()
            accepted += stream.put_records(records, 0, clock).accepted_records
            cluster.pull_and_process(stream, 0, clock)
            processed += cluster._tick_processed
        assert processed + cluster.pending_records + stream.backlog_records == accepted


class TestDynamoDBConservation:
    @given(put_amounts)
    @settings(max_examples=30)
    def test_write_splits_into_accepted_plus_throttled(self, amounts):
        table = SimDynamoDBTable(write_units=500, config=DynamoDBConfig(burst_seconds=100))
        clock = SimClock()
        for units in amounts:
            clock.advance()
            result = table.write(units, clock)
            assert result.accepted_units + result.throttled_units == units

    @given(put_amounts)
    @settings(max_examples=30)
    def test_burst_bucket_never_negative_or_above_cap(self, amounts):
        config = DynamoDBConfig(burst_seconds=60)
        table = SimDynamoDBTable(write_units=200, config=config)
        clock = SimClock()
        for units in amounts:
            clock.advance()
            table.write(units, clock)
            assert 0.0 <= table.burst_balance <= 60 * 200


class TestManagedFlowConservation:
    def test_end_to_end_record_accounting(self):
        """Generated = ingested + producer backlog + dropped, and
        ingested = processed + stream backlog + storm pending."""
        from repro import FlowBuilder, LayerKind
        from repro.workload import StepRate

        manager = (
            FlowBuilder("conserve", seed=13)
            .ingestion(shards=1)
            .analytics(vms=1)
            .storage(write_units=200)
            .workload(StepRate(base=500, level=3000, at=600))  # overload
            .build()
        )
        result = manager.run(1800)
        generated = manager.generator.total_records
        ingested = sum(result.trace(
            "AWS/Kinesis", "IncomingRecords", statistic="Sum",
            dimensions=result.layer_dimensions[LayerKind.INGESTION]).values)
        processed = sum(result.trace(
            "Custom/Storm", "ProcessedRecords", statistic="Sum",
            dimensions=result.layer_dimensions[LayerKind.ANALYTICS]).values)
        producer_backlog = manager._pipeline._producer_backlog_records
        assert ingested + producer_backlog + result.dropped_records == generated
        assert processed + manager.stream.backlog_records + manager.cluster.pending_records \
            == ingested

"""Conservation-law property tests for the service simulators.

No simulator may create or destroy records: everything offered is
accepted or throttled; everything accepted is read, processed or still
buffered. These invariants hold under arbitrary interleavings of puts,
reads and capacity changes.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud import (
    DynamoDBConfig,
    EC2Config,
    SimDynamoDBTable,
    SimEC2Fleet,
    SimKinesisStream,
    SimStormCluster,
    StormConfig,
)
from repro.simulation import SimClock

put_amounts = st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=50)


class TestKinesisConservation:
    @given(put_amounts)
    @settings(max_examples=30)
    def test_put_splits_into_accepted_plus_throttled(self, amounts):
        stream = SimKinesisStream(shards=2)
        clock = SimClock()
        for records in amounts:
            clock.advance()
            result = stream.put_records(records, records * 100, clock)
            assert result.accepted_records + result.throttled_records == records
            assert result.accepted_records >= 0
            assert result.throttled_records >= 0

    @given(put_amounts, st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_reads_never_exceed_accepted(self, puts, reads):
        stream = SimKinesisStream(shards=2)
        clock = SimClock()
        total_accepted = 0
        total_read = 0
        for i in range(max(len(puts), len(reads))):
            clock.advance()
            if i < len(puts):
                total_accepted += stream.put_records(puts[i], 0, clock).accepted_records
            if i < len(reads):
                total_read += stream.get_records(reads[i], clock)
        assert total_read + stream.backlog_records == total_accepted

    @given(put_amounts, st.integers(min_value=1, max_value=16))
    @settings(max_examples=20)
    def test_conservation_across_resharding(self, amounts, target):
        stream = SimKinesisStream(shards=2)
        clock = SimClock()
        accepted = 0
        read = 0
        for i, records in enumerate(amounts):
            clock.advance()
            if i == len(amounts) // 2:
                stream.update_shard_count(target, clock.now)
            accepted += stream.put_records(records, 0, clock).accepted_records
            read += stream.get_records(records // 2, clock)
        assert read + stream.backlog_records == accepted


class TestStormConservation:
    @given(put_amounts)
    @settings(max_examples=20)
    def test_pulled_equals_processed_plus_pending(self, amounts):
        fleet = SimEC2Fleet(config=EC2Config(boot_seconds=0), initial_instances=1)
        cluster = SimStormCluster(fleet, StormConfig(cpu_noise_std=0.0),
                                  np.random.default_rng(0))
        stream = SimKinesisStream(shards=8)
        clock = SimClock()
        accepted = 0
        processed = 0
        for records in amounts:
            clock.advance()
            accepted += stream.put_records(records, 0, clock).accepted_records
            cluster.pull_and_process(stream, 0, clock)
            processed += cluster._tick_processed
        assert processed + cluster.pending_records + stream.backlog_records == accepted


class TestDynamoDBConservation:
    @given(put_amounts)
    @settings(max_examples=30)
    def test_write_splits_into_accepted_plus_throttled(self, amounts):
        table = SimDynamoDBTable(write_units=500, config=DynamoDBConfig(burst_seconds=100))
        clock = SimClock()
        for units in amounts:
            clock.advance()
            result = table.write(units, clock)
            assert result.accepted_units + result.throttled_units == units

    @given(put_amounts)
    @settings(max_examples=30)
    def test_burst_bucket_never_negative_or_above_cap(self, amounts):
        config = DynamoDBConfig(burst_seconds=60)
        table = SimDynamoDBTable(write_units=200, config=config)
        clock = SimClock()
        for units in amounts:
            clock.advance()
            table.write(units, clock)
            assert 0.0 <= table.burst_balance <= 60 * 200


class TestManagedFlowConservation:
    def test_end_to_end_record_accounting(self):
        """Generated = ingested + producer backlog + dropped, and
        ingested = processed + stream backlog + storm pending."""
        from repro import FlowBuilder, LayerKind
        from repro.workload import StepRate

        manager = (
            FlowBuilder("conserve", seed=13)
            .ingestion(shards=1)
            .analytics(vms=1)
            .storage(write_units=200)
            .workload(StepRate(base=500, level=3000, at=600))  # overload
            .build()
        )
        result = manager.run(1800)
        generated = manager.generator.total_records
        ingested = sum(result.trace(
            "AWS/Kinesis", "IncomingRecords", statistic="Sum",
            dimensions=result.layer_dimensions[LayerKind.INGESTION]).values)
        processed = sum(result.trace(
            "Custom/Storm", "ProcessedRecords", statistic="Sum",
            dimensions=result.layer_dimensions[LayerKind.ANALYTICS]).values)
        producer_backlog = manager._pipeline._producer_backlog_records
        assert ingested + producer_backlog + result.dropped_records == generated
        assert processed + manager.stream.backlog_records + manager.cluster.pending_records \
            == ingested


# ----------------------------------------------------------------------
# Conservation under arbitrary fault interleavings (chaos harness)
# ----------------------------------------------------------------------
from repro import ChaosSchedule, FaultKind, FaultSpec, FlowBuilder as _FlowBuilder  # noqa: E402
from repro.workload import SinusoidalRate as _SinusoidalRate  # noqa: E402


@st.composite
def _chaos_schedules(draw):
    """Random but valid schedules: windows staggered so same-kind
    overlap (rejected by the DSL) cannot be drawn."""
    specs = []
    cursor = draw(st.integers(min_value=30, max_value=120))
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(sorted(FaultKind)))
        if kind is FaultKind.WORKER_CRASH:
            specs.append(FaultSpec(
                kind=kind, start=cursor, intensity=draw(st.integers(min_value=1, max_value=2))
            ))
            cursor += draw(st.integers(min_value=10, max_value=60))
            continue
        duration = draw(st.integers(min_value=30, max_value=240))
        if kind in (FaultKind.SHARD_BROWNOUT, FaultKind.THROTTLE_STORM):
            intensity = draw(st.floats(min_value=0.2, max_value=0.8))
        elif kind is FaultKind.RESHARD_STALL:
            intensity = float(draw(st.integers(min_value=2, max_value=5)))
        elif kind is FaultKind.METRIC_DELAY:
            intensity = float(draw(st.integers(min_value=30, max_value=180)))
        else:
            intensity = 0.0
        spec = FaultSpec(kind=kind, start=cursor, duration=duration, intensity=intensity)
        cursor = spec.end + draw(st.integers(min_value=5, max_value=60))
        specs.append(spec)
    return ChaosSchedule(
        faults=tuple(specs), seed=draw(st.integers(min_value=0, max_value=999))
    )


class TestChaosInvariantProperties:
    """No fault interleaving may create/destroy records, push a
    capacity out of bounds, or desynchronize the cost meters — the
    always-on checker audits all of it at every boundary."""

    @given(schedule=_chaos_schedules(), spans=st.booleans())
    @settings(max_examples=8, deadline=None)
    def test_invariants_hold_under_fault_interleavings(self, schedule, spans):
        manager = (
            _FlowBuilder("chaos-prop", seed=7)
            .ingestion(shards=2)
            .analytics(vms=3)
            .storage(write_units=250)
            .workload(_SinusoidalRate(mean=1000, amplitude=500, period=400))
            .control_all(style="adaptive", reference=60.0, period=60)
            .tick(5)
            .spans(spans)
            .chaos(schedule)
            .build()
        )
        result = manager.run(1200)
        report = result.invariants
        assert report.ok, report.describe()
        assert report.checks > 0
        # Capacity bounds hold at the end of the disturbed run too.
        stream, table, fleet = manager.stream, manager.table, manager.fleet
        assert stream.config.min_shards <= stream._shards <= stream.config.max_shards
        assert table.config.min_write_units <= table._write_units <= table.config.max_write_units
        assert fleet.provisioned_count(1200) <= fleet.config.max_instances

"""Unit tests for the workload dependency analyzer."""

import numpy as np
import pytest

from repro.core.errors import RegressionError
from repro.core.flow import LayerKind
from repro.dependency import WorkloadDependencyAnalyzer
from repro.dependency.analyzer import MetricRef
from repro.workload import Trace


def correlated_traces(n=200, slope=0.0002, intercept=4.8, noise=0.2, seed=0):
    """Traces reproducing the Eq. 2 relationship on a shared minute grid."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 60000, size=n)
    y = slope * x + intercept + rng.normal(0, noise, size=n)
    times = [60 * (i + 1) for i in range(n)]
    return (
        Trace.from_series("records", times, x),
        Trace.from_series("cpu", times, y),
    )


@pytest.fixture
def analyzer():
    analyzer = WorkloadDependencyAnalyzer(min_abs_r=0.7, alpha=0.01)
    records, cpu = correlated_traces()
    analyzer.add_series(LayerKind.INGESTION, "IncomingRecords", records)
    analyzer.add_series(LayerKind.ANALYTICS, "CPUUtilization", cpu)
    return analyzer


class TestFitPair:
    def test_recovers_eq2_coefficients(self, analyzer):
        model = analyzer.fit_pair(
            MetricRef(LayerKind.INGESTION, "IncomingRecords"),
            MetricRef(LayerKind.ANALYTICS, "CPUUtilization"),
        )
        assert model.result.slope == pytest.approx(0.0002, rel=0.05)
        assert model.result.intercept == pytest.approx(4.8, rel=0.05)
        assert model.is_significant()

    def test_predict_uses_fitted_model(self, analyzer):
        model = analyzer.fit_pair(
            MetricRef(LayerKind.INGESTION, "IncomingRecords"),
            MetricRef(LayerKind.ANALYTICS, "CPUUtilization"),
        )
        # Paper reasoning: CPU needed for a full shard's 1,000 rec/s.
        assert model.predict(60000) == pytest.approx(0.0002 * 60000 + 4.8, rel=0.1)

    def test_source_equals_target_rejected(self, analyzer):
        ref = MetricRef(LayerKind.INGESTION, "IncomingRecords")
        with pytest.raises(RegressionError):
            analyzer.fit_pair(ref, ref)

    def test_unknown_series_rejected(self, analyzer):
        with pytest.raises(RegressionError, match="registered"):
            analyzer.fit_pair(
                MetricRef(LayerKind.STORAGE, "Nope"),
                MetricRef(LayerKind.ANALYTICS, "CPUUtilization"),
            )


class TestAnalyze:
    def test_finds_significant_cross_layer_pairs(self, analyzer):
        models = analyzer.analyze()
        pairs = {(m.source.metric, m.target.metric) for m in models}
        assert ("IncomingRecords", "CPUUtilization") in pairs
        assert ("CPUUtilization", "IncomingRecords") in pairs

    def test_uncorrelated_pair_excluded(self, analyzer):
        rng = np.random.default_rng(42)
        times = [60 * (i + 1) for i in range(200)]
        noise = Trace.from_series("wcu", times, rng.normal(100, 10, size=200))
        analyzer.add_series(LayerKind.STORAGE, "ConsumedWriteCapacityUnits", noise)
        models = analyzer.analyze()
        storage_models = [m for m in models if LayerKind.STORAGE in (m.source.layer, m.target.layer)]
        assert storage_models == []

    def test_dependency_between_returns_none_when_weak(self, analyzer):
        rng = np.random.default_rng(42)
        times = [60 * (i + 1) for i in range(200)]
        noise = Trace.from_series("wcu", times, rng.normal(100, 10, size=200))
        ref = analyzer.add_series(LayerKind.STORAGE, "ConsumedWriteCapacityUnits", noise)
        model = analyzer.dependency_between(
            MetricRef(LayerKind.INGESTION, "IncomingRecords"), ref
        )
        assert model is None

    def _add_bytes_series(self, analyzer):
        """IncomingBytes = 350 * IncomingRecords: a same-layer dependency."""
        records = analyzer.series[MetricRef(LayerKind.INGESTION, "IncomingRecords")]
        byte_trace = Trace.from_series(
            "bytes", records.times, [350.0 * v for v in records.values]
        )
        analyzer.add_series(LayerKind.INGESTION, "IncomingBytes", byte_trace)

    def test_same_layer_pairs_skipped_by_default(self, analyzer):
        self._add_bytes_series(analyzer)
        models = analyzer.analyze()
        assert all(m.source.layer != m.target.layer for m in models)

    def test_same_layer_pairs_included_on_request(self, analyzer):
        self._add_bytes_series(analyzer)
        models = analyzer.analyze(cross_layer_only=False)
        assert any(m.source.layer == m.target.layer for m in models)

    def test_sorted_by_strength(self, analyzer):
        models = analyzer.analyze()
        strengths = [abs(m.result.r) for m in models]
        assert strengths == sorted(strengths, reverse=True)


class TestAlignment:
    def test_misaligned_traces_rejected(self):
        analyzer = WorkloadDependencyAnalyzer()
        a = Trace("a", [(0, 1.0), (60, 2.0), (120, 3.0)])
        b = Trace("b", [(1, 1.0), (61, 2.0), (121, 3.0)])
        ra = analyzer.add_series(LayerKind.INGESTION, "a", a)
        rb = analyzer.add_series(LayerKind.ANALYTICS, "b", b)
        with pytest.raises(RegressionError, match="timestamps"):
            analyzer.fit_pair(ra, rb)

    def test_partial_overlap_works(self):
        analyzer = WorkloadDependencyAnalyzer()
        a = Trace("a", [(t, float(t)) for t in range(0, 600, 60)])
        b = Trace("b", [(t, 2.0 * t) for t in range(180, 900, 60)])
        ra = analyzer.add_series(LayerKind.INGESTION, "a", a)
        rb = analyzer.add_series(LayerKind.ANALYTICS, "b", b)
        model = analyzer.fit_pair(ra, rb)
        assert model.result.slope == pytest.approx(2.0)


class TestValidation:
    def test_rejects_short_series(self):
        analyzer = WorkloadDependencyAnalyzer()
        with pytest.raises(RegressionError):
            analyzer.add_series(LayerKind.INGESTION, "x", Trace("x", [(0, 1.0)]))

    def test_rejects_bad_thresholds(self):
        with pytest.raises(RegressionError):
            WorkloadDependencyAnalyzer(min_abs_r=1.5)
        with pytest.raises(RegressionError):
            WorkloadDependencyAnalyzer(alpha=0.0)

    def test_str_rendering(self, analyzer):
        model = analyzer.analyze()[0]
        text = str(model)
        assert "r=" in text and "p=" in text

"""Unit and property tests for traces."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.workload import Trace


@pytest.fixture
def trace():
    return Trace("t", [(0, 1.0), (60, 2.0), (120, 4.0), (180, 3.0)])


class TestConstruction:
    def test_append_and_access(self, trace):
        assert len(trace) == 4
        assert trace.times == [0, 60, 120, 180]
        assert trace[2] == (120, 4.0)

    def test_requires_strictly_increasing_times(self):
        trace = Trace("t", [(0, 1.0)])
        with pytest.raises(ConfigurationError):
            trace.append(0, 2.0)
        with pytest.raises(ConfigurationError):
            trace.append(-5, 2.0)

    def test_from_series(self):
        trace = Trace.from_series("s", [1, 2], [10.0, 20.0])
        assert list(trace) == [(1, 10.0), (2, 20.0)]

    def test_iteration(self, trace):
        assert list(trace)[0] == (0, 1.0)


class TestValueAt:
    def test_step_hold_semantics(self, trace):
        assert trace.value_at(0) == 1.0
        assert trace.value_at(59) == 1.0
        assert trace.value_at(60) == 2.0
        assert trace.value_at(500) == 3.0

    def test_before_first_point_raises(self, trace):
        with pytest.raises(ConfigurationError):
            trace.value_at(-1)


class TestStatistics:
    def test_basic_stats(self, trace):
        assert trace.mean() == pytest.approx(2.5)
        assert trace.minimum() == 1.0
        assert trace.maximum() == 4.0
        assert trace.std() == pytest.approx(1.118, rel=1e-3)

    def test_percentile_interpolates(self, trace):
        assert trace.percentile(0) == 1.0
        assert trace.percentile(100) == 4.0
        assert trace.percentile(50) == pytest.approx(2.5)

    def test_percentile_bounds(self, trace):
        with pytest.raises(ConfigurationError):
            trace.percentile(101)

    def test_time_weighted_mean_weights_hold_times(self):
        # Value 10 held for 90 s, value 0 held for 10 s (median interval).
        trace = Trace("t", [(0, 10.0), (90, 0.0)])
        # intervals: [90], final interval = median(90) = 90 -> equal weights
        assert trace.time_weighted_mean() == pytest.approx(5.0)

    def test_empty_trace_stats_raise(self):
        with pytest.raises(ConfigurationError):
            Trace("empty").mean()


class TestTransforms:
    def test_slice_is_half_open(self, trace):
        part = trace.slice(60, 180)
        assert part.times == [60, 120]

    def test_resample_mean(self):
        trace = Trace("t", [(0, 1.0), (30, 3.0), (60, 5.0), (90, 7.0)])
        out = trace.resample(60)
        assert list(out) == [(60, 2.0), (120, 6.0)]

    def test_resample_sum_max_min(self):
        trace = Trace("t", [(0, 1.0), (30, 3.0)])
        assert trace.resample(60, "sum").values == [4.0]
        assert trace.resample(60, "max").values == [3.0]
        assert trace.resample(60, "min").values == [1.0]

    def test_resample_rejects_unknown_statistic(self, trace):
        with pytest.raises(ConfigurationError):
            trace.resample(60, "median")

    def test_resample_aligns_on_first_timestamp(self):
        trace = Trace("t", [(100, 1.0), (130, 3.0), (160, 5.0)])
        out = trace.resample(60)
        assert out.times == [160, 220]


class TestPersistence:
    def test_csv_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = Trace.from_csv(path, "t")
        assert list(loaded) == list(trace)

    def test_from_csv_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ConfigurationError):
            Trace.from_csv(path)


class TestMalformedCsv:
    """Imported traces fail at the offending row, with the file and
    line number named — never deep inside ``append``."""

    def _write(self, tmp_path, body):
        path = tmp_path / "trace.csv"
        path.write_text("time,value\n" + body)
        return path

    def test_decreasing_timestamp_names_the_line(self, tmp_path):
        path = self._write(tmp_path, "0,1.0\n60,2.0\n30,3.0\n")
        with pytest.raises(ConfigurationError, match=r"line 4.*strictly increasing.*30 after 60"):
            Trace.from_csv(path)

    def test_duplicate_timestamp_is_called_duplicate(self, tmp_path):
        path = self._write(tmp_path, "0,1.0\n60,2.0\n60,3.0\n")
        with pytest.raises(ConfigurationError, match=r"line 4.*duplicate timestamp"):
            Trace.from_csv(path)

    def test_wrong_column_count(self, tmp_path):
        path = self._write(tmp_path, "0,1.0\n60,2.0,9\n")
        with pytest.raises(ConfigurationError, match=r"line 3.*expected 2 columns.*got 3"):
            Trace.from_csv(path)

    def test_non_integer_time(self, tmp_path):
        path = self._write(tmp_path, "0,1.0\nsoon,2.0\n")
        with pytest.raises(ConfigurationError, match=r"line 3.*'soon' is not an integer"):
            Trace.from_csv(path)

    def test_non_numeric_value(self, tmp_path):
        path = self._write(tmp_path, "0,1.0\n60,lots\n")
        with pytest.raises(ConfigurationError, match=r"line 3.*'lots' is not a number"):
            Trace.from_csv(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = self._write(tmp_path, "0,1.0\n\n60,2.0\n\n")
        trace = Trace.from_csv(path)
        assert list(trace) == [(0, 1.0), (60, 2.0)]


class TestProperties:
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=50))
    def test_percentile_bounded_by_extremes(self, values):
        trace = Trace("p", list(enumerate(values)))
        assert trace.minimum() <= trace.percentile(37.5) <= trace.maximum()

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=120),
    )
    def test_resample_mean_stays_within_range(self, values, period):
        trace = Trace("p", [(i * 10, v) for i, v in enumerate(values)])
        out = trace.resample(period)
        assert len(out) >= 1
        assert trace.minimum() - 1e-9 <= out.minimum()
        assert out.maximum() <= trace.maximum() + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=50))
    def test_value_at_matches_last_known_point(self, values):
        trace = Trace("p", [(i * 5, v) for i, v in enumerate(values)])
        for i, v in enumerate(values):
            assert trace.value_at(i * 5 + 3) == v

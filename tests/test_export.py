"""Unit tests for monitoring exporters."""

import csv
import json

import pytest

from repro.core.errors import MonitoringError
from repro.monitoring import snapshots_to_csv, snapshots_to_json, traces_to_csv
from repro.monitoring.collector import FlowSnapshot
from repro.workload import Trace


@pytest.fixture
def snapshots():
    return [
        FlowSnapshot(time=60, values={"cpu": 50.0, "shards": 2.0}),
        FlowSnapshot(time=120, values={"cpu": 55.0, "shards": 3.0}),
    ]


class TestSnapshotsToCsv:
    def test_wide_format(self, snapshots, tmp_path):
        path = tmp_path / "snapshots.csv"
        snapshots_to_csv(snapshots, path)
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["time", "cpu", "shards"]
        assert rows[1] == ["60", "50.0", "2.0"]
        assert rows[2] == ["120", "55.0", "3.0"]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(MonitoringError):
            snapshots_to_csv([], tmp_path / "x.csv")

    def test_heterogeneous_labels_use_union_with_blanks(self, tmp_path):
        # A measure registered mid-run appears only in later snapshots;
        # the header must cover the union and early rows leave it blank.
        snapshots = [
            FlowSnapshot(time=60, values={"cpu": 50.0}),
            FlowSnapshot(time=120, values={"cpu": 55.0, "shards": 3.0}),
            FlowSnapshot(time=180, values={"shards": 4.0}),
        ]
        path = tmp_path / "snapshots.csv"
        snapshots_to_csv(snapshots, path)
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["time", "cpu", "shards"]
        assert rows[1] == ["60", "50.0", ""]
        assert rows[2] == ["120", "55.0", "3.0"]
        assert rows[3] == ["180", "", "4.0"]


class TestSnapshotsToJson:
    def test_roundtrip(self, snapshots, tmp_path):
        path = tmp_path / "snapshots.json"
        snapshots_to_json(snapshots, path)
        with open(path) as f:
            data = json.load(f)
        assert data[0] == {"time": 60, "values": {"cpu": 50.0, "shards": 2.0}}

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(MonitoringError):
            snapshots_to_json([], tmp_path / "x.json")

    def test_heterogeneous_labels_get_uniform_schema(self, tmp_path):
        snapshots = [
            FlowSnapshot(time=60, values={"cpu": 50.0}),
            FlowSnapshot(time=120, values={"cpu": 55.0, "shards": 3.0}),
        ]
        path = tmp_path / "snapshots.json"
        snapshots_to_json(snapshots, path)
        with open(path) as f:
            data = json.load(f)
        assert data[0]["values"] == {"cpu": 50.0, "shards": None}
        assert data[1]["values"] == {"cpu": 55.0, "shards": 3.0}


class TestTracesToCsv:
    def test_long_format(self, tmp_path):
        traces = [
            Trace("a", [(0, 1.0), (60, 2.0)]),
            Trace("b", [(0, 9.0)]),
        ]
        path = tmp_path / "traces.csv"
        traces_to_csv(traces, path)
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["trace", "time", "value"]
        assert ["a", "0", "1.0"] in rows
        assert ["b", "0", "9.0"] in rows

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(MonitoringError):
            traces_to_csv([], tmp_path / "x.csv")
